//! `sti-server` — serve a saved index over HTTP.
//!
//! ```text
//! sti-server --index index.stidx [--addr 127.0.0.1:7070]
//!            [--workers N] [--io-workers N] [--queue DEPTH]
//!            [--time-extent T] [--read-timeout-ms MS]
//!            [--test-delay-ms MS]
//! ```
//!
//! Endpoints:
//! - `GET /query?area=x0,y0,x1,y1&time=T[&until=T2]` — result ids, one
//!   per line (the same id lines `stidx query` prints), with per-query
//!   I/O stats in `X-Sti-*` headers.
//! - `GET /healthz` — liveness; stays responsive under query overload.
//! - `GET /metrics` — Prometheus text exposition of the server's
//!   counters, the request-latency histogram, and query I/O aggregates.
//!
//! Backpressure: at most `--queue` queries wait for the `--workers`
//! pool; one more is refused immediately with `503` + `Retry-After: 1`.
//!
//! `--test-delay-ms` inflates every query by a fixed sleep so tests can
//! saturate the admission bound deterministically; it has no production
//! use.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use sti_server::cli::parse_flags;
use sti_server::{Server, ServerConfig};

const USAGE: &str = "usage:
  sti-server --index FILE [--addr HOST:PORT] [--workers N]
             [--io-workers N] [--queue DEPTH] [--time-extent T]
             [--read-timeout-ms MS] [--test-delay-ms MS]
             [--shutdown-on-stdin-close] [--drain-ms MS]

  With --shutdown-on-stdin-close the server drains gracefully when its
  stdin reaches end-of-file (close the pipe to stop it): it stops
  accepting, finishes in-flight queries, answers anything still queued
  after --drain-ms (default 5000) with 503, and exits 0.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sti-server: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "index",
            "addr",
            "workers",
            "io-workers",
            "queue",
            "time-extent",
            "read-timeout-ms",
            "test-delay-ms",
            "drain-ms",
        ],
        &["shutdown-on-stdin-close"],
    )?;
    let index_path = std::path::PathBuf::from(flags.need("index")?);
    let time_extent: u32 = flags.parsed("time-extent")?.unwrap_or(1000);
    let mut config = ServerConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7070").to_string(),
        ..ServerConfig::default()
    };
    if let Some(n) = flags.parsed("workers")? {
        config.query_workers = n;
    }
    if let Some(n) = flags.parsed("io-workers")? {
        config.io_workers = n;
    }
    if let Some(n) = flags.parsed("queue")? {
        config.queue_depth = n;
    }
    if let Some(ms) = flags.parsed::<u64>("read-timeout-ms")? {
        config.read_timeout = Duration::from_millis(ms);
        config.write_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = flags.parsed::<u64>("test-delay-ms")? {
        config.test_delay = Duration::from_millis(ms);
    }

    let index = sti_core::SpatioTemporalIndex::open_file_with(&index_path, time_extent)
        .map_err(|e| format!("opening {}: {e}", index_path.display()))?;
    let server =
        Server::start(Arc::new(index), config).map_err(|e| format!("binding the listener: {e}"))?;
    println!(
        "sti-server: serving {} ({} backend, {} records, {} pages) on http://{}",
        index_path.display(),
        server.metrics().backend_name(),
        server.metrics().index_records(),
        server.metrics().index_pages(),
        server.addr()
    );
    if flags.has("shutdown-on-stdin-close") {
        let drain = Duration::from_millis(flags.parsed::<u64>("drain-ms")?.unwrap_or(5000));
        // Block on stdin until the other end closes it — the graceful
        // stop signal available without any OS signal machinery. An
        // operator (or CI script) holds a pipe open for the server's
        // lifetime and closes it to stop.
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut sink);
        println!("sti-server: stdin closed; draining (deadline {drain:?})");
        server.shutdown_within(drain);
        println!("sti-server: drained, exiting");
        return Ok(());
    }
    // Serve until the process is killed (CI and operators send SIGTERM).
    server.join();
    Ok(())
}
