//! The query server: admission control → worker pools → executor →
//! shared index snapshot.
//!
//! Two bounded stages keep overload from becoming collapse:
//!
//! ```text
//! acceptor ─► conn queue ─► io workers ─► query queue ─► query workers
//!                           (parse, route,  (bounded       (executor,
//!                            health, 4xx)    admission)     respond)
//! ```
//!
//! The io workers answer `/healthz`, `/metrics`, and every error
//! response inline, and *try* to enqueue `/query` work onto the bounded
//! query queue. When that queue is full the request is refused
//! immediately with `503` + `Retry-After` — so a saturated query pool
//! sheds load in O(1) while health checks and scrapes keep answering,
//! which is exactly the backpressure contract the load tests pin.
//!
//! Queries run against one shared [`SpatioTemporalIndex`] through the
//! existing [`QueryExecutor`]: reads are `&self` end to end, so the
//! worker pool shares a single `Arc` with no writer coordination.

use crate::http::{self, RecvError, Request, Response};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use sti_core::{QueryExecutor, QueryRequest, SpatioTemporalIndex};
use sti_geom::{Rect2, TimeInterval};
use sti_obs::{LatencyHistogram, MetricSet};

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Threads executing queries.
    pub query_workers: usize,
    /// Threads parsing requests and writing control responses.
    pub io_workers: usize,
    /// Bound on admitted-but-unstarted queries; one more in-flight
    /// request beyond this is refused with 503.
    pub queue_depth: usize,
    /// Socket read timeout while receiving a request head (→ 408).
    pub read_timeout: Duration,
    /// Socket write timeout while sending a response.
    pub write_timeout: Duration,
    /// Artificial per-query delay. Zero in production; load tests use
    /// it to saturate the admission bound deterministically.
    pub test_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            query_workers: 2,
            io_workers: 2,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            test_delay: Duration::ZERO,
        }
    }
}

/// Shared atomic counters behind `/metrics`. Everything is `&self` and
/// relaxed: counters are independent monotonic cells read at scrape
/// time, where a torn cross-counter view is acceptable by contract.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Requests routed, by endpoint.
    requests_query: AtomicU64,
    requests_healthz: AtomicU64,
    requests_metrics: AtomicU64,
    requests_other: AtomicU64,
    /// Responses written, by status code (fixed vocabulary).
    responses: Vec<(u16, AtomicU64)>,
    /// `/query` requests refused because the admission queue was full.
    admission_rejected: AtomicU64,
    /// Queued queries answered 503 because the drain deadline passed
    /// during shutdown.
    drain_rejected: AtomicU64,
    /// Connections that vanished before a response could be written.
    disconnects: AtomicU64,
    /// Admitted queries not yet answered.
    inflight: AtomicU64,
    /// End-to-end `/query` latency: admission to response written.
    latency: LatencyHistogram,
    /// Sums of per-query [`sti_obs::QueryStats`] fields.
    q_disk_reads: AtomicU64,
    q_buffer_hits: AtomicU64,
    q_nodes_visited: AtomicU64,
    q_entries_scanned: AtomicU64,
    q_results: AtomicU64,
    /// Index shape, captured at startup (the served snapshot is
    /// immutable for the server's lifetime).
    index_pages: u64,
    index_records: u64,
    backend: String,
}

/// The status codes this server can send, for the fixed counter table.
const STATUS_VOCABULARY: [u16; 9] = [200, 400, 404, 405, 408, 414, 431, 500, 503];

impl ServerMetrics {
    fn new(index: &SpatioTemporalIndex) -> Self {
        Self {
            requests_query: AtomicU64::new(0),
            requests_healthz: AtomicU64::new(0),
            requests_metrics: AtomicU64::new(0),
            requests_other: AtomicU64::new(0),
            responses: STATUS_VOCABULARY
                .iter()
                .map(|&code| (code, AtomicU64::new(0)))
                .collect(),
            admission_rejected: AtomicU64::new(0),
            drain_rejected: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            q_disk_reads: AtomicU64::new(0),
            q_buffer_hits: AtomicU64::new(0),
            q_nodes_visited: AtomicU64::new(0),
            q_entries_scanned: AtomicU64::new(0),
            q_results: AtomicU64::new(0),
            index_pages: index.num_pages() as u64,
            index_records: index.record_count() as u64,
            backend: index.backend().to_string(),
        }
    }

    /// Pages in the served index.
    pub fn index_pages(&self) -> u64 {
        self.index_pages
    }

    /// Records posted to the served index.
    pub fn index_records(&self) -> u64 {
        self.index_records
    }

    /// Human name of the served backend.
    pub fn backend_name(&self) -> &str {
        &self.backend
    }

    fn count_request(&self, path: &str) {
        let cell = match path {
            "/query" => &self.requests_query,
            "/healthz" => &self.requests_healthz,
            "/metrics" => &self.requests_metrics,
            _ => &self.requests_other,
        };
        // ordering: independent monotonic counter, scrape-tolerant.
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn count_response(&self, status: u16) {
        for (code, cell) in &self.responses {
            if *code == status {
                // ordering: independent monotonic counter.
                cell.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    fn count_disconnect(&self) {
        // ordering: independent monotonic counter.
        self.disconnects.fetch_add(1, Ordering::Relaxed);
    }

    fn absorb_query_stats(&self, stats: &sti_obs::QueryStats) {
        let pairs = [
            (&self.q_disk_reads, stats.disk_reads),
            (&self.q_buffer_hits, stats.buffer_hits),
            (&self.q_nodes_visited, stats.nodes_visited),
            (&self.q_entries_scanned, stats.entries_scanned),
            (&self.q_results, stats.results),
        ];
        for (cell, delta) in pairs {
            cell.fetch_add(delta, Ordering::Relaxed); // ordering: independent monotonic counter.
        }
    }

    /// `/query` requests answered so far (any status).
    pub fn queries_answered(&self) -> u64 {
        // ordering: scrape-time read.
        self.latency.count()
    }

    /// Admitted queries not yet answered.
    pub fn inflight(&self) -> u64 {
        // ordering: scrape-time read.
        self.inflight.load(Ordering::Relaxed)
    }

    /// `/query` requests refused at the admission bound.
    pub fn admission_rejected(&self) -> u64 {
        // ordering: scrape-time read.
        self.admission_rejected.load(Ordering::Relaxed)
    }

    /// Queued queries 503'd because shutdown's drain deadline passed.
    pub fn drain_rejected(&self) -> u64 {
        // ordering: scrape-time read.
        self.drain_rejected.load(Ordering::Relaxed)
    }

    /// Render everything as a fresh [`MetricSet`] (each `/metrics`
    /// scrape builds its own point-in-time copy).
    pub fn render(&self) -> MetricSet {
        let mut set = MetricSet::new();
        for (endpoint, cell) in [
            ("query", &self.requests_query),
            ("healthz", &self.requests_healthz),
            ("metrics", &self.requests_metrics),
            ("other", &self.requests_other),
        ] {
            set.push(sti_obs::Metric {
                name: "sti_http_requests_total".to_string(),
                help: "requests routed, by endpoint".to_string(),
                kind: sti_obs::MetricKind::Counter,
                labels: vec![("endpoint".to_string(), endpoint.to_string())],
                // ordering: scrape-time read.
                value: cell.load(Ordering::Relaxed) as f64,
                histogram: None,
            });
        }
        for (code, cell) in &self.responses {
            set.push(sti_obs::Metric {
                name: "sti_http_responses_total".to_string(),
                help: "responses written, by status code".to_string(),
                kind: sti_obs::MetricKind::Counter,
                labels: vec![("code".to_string(), code.to_string())],
                // ordering: scrape-time read.
                value: cell.load(Ordering::Relaxed) as f64,
                histogram: None,
            });
        }
        set.counter(
            "sti_admission_rejected_total",
            "queries refused with 503 at the admission bound",
            self.admission_rejected() as f64,
        );
        set.counter(
            "sti_drain_rejected_total",
            "queued queries 503'd past the shutdown drain deadline",
            self.drain_rejected() as f64,
        );
        set.counter(
            "sti_http_disconnects_total",
            "connections lost before a response could be written",
            // ordering: scrape-time read.
            self.disconnects.load(Ordering::Relaxed) as f64,
        );
        set.gauge(
            "sti_http_inflight_requests",
            "admitted queries not yet answered",
            self.inflight() as f64,
        );
        set.histogram(
            "sti_request_seconds",
            "end-to-end query latency: admission to response written",
            self.latency.snapshot(),
        );
        for (name, help, cell) in [
            (
                "sti_query_disk_reads_total",
                "pages fetched from disk by queries",
                &self.q_disk_reads,
            ),
            (
                "sti_query_buffer_hits_total",
                "page requests served by the buffer pool",
                &self.q_buffer_hits,
            ),
            (
                "sti_query_nodes_visited_total",
                "tree nodes visited by queries",
                &self.q_nodes_visited,
            ),
            (
                "sti_query_entries_scanned_total",
                "node entries tested by queries",
                &self.q_entries_scanned,
            ),
            (
                "sti_query_results_total",
                "result ids returned by queries",
                &self.q_results,
            ),
        ] {
            // ordering: scrape-time read.
            set.counter(name, help, cell.load(Ordering::Relaxed) as f64);
        }
        set.gauge(
            "sti_index_pages",
            "pages in the served index",
            self.index_pages as f64,
        );
        set.gauge(
            "sti_index_records",
            "records posted to the served index",
            self.index_records as f64,
        );
        set
    }
}

/// One admitted query: the connection to answer on, the parsed request,
/// and the admission instant the latency histogram measures from.
struct QueryJob {
    stream: TcpStream,
    request: QueryRequest,
    admitted: Instant,
}

/// A running server. Dropping it does *not* stop the threads; call
/// [`Server::shutdown`] for an orderly stop or [`Server::join`] to
/// serve until the process dies.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Set by [`Server::shutdown_within`]: once this instant passes,
    /// query workers answer still-queued jobs with 503 instead of
    /// executing them.
    drain_deadline: Arc<Mutex<Option<Instant>>>,
    metrics: Arc<ServerMetrics>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    io_workers: Vec<std::thread::JoinHandle<()>>,
    query_workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the pools, and start serving `index`.
    ///
    /// # Errors
    /// The bind error when the address is unavailable.
    pub fn start(index: Arc<SpatioTemporalIndex>, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let drain_deadline = Arc::new(Mutex::new(None));
        let metrics = Arc::new(ServerMetrics::new(&index));

        let io_workers_n = config.io_workers.max(1);
        let query_workers_n = config.query_workers.max(1);
        // The conn queue sits between the acceptor and the io workers;
        // it only needs to cover parse latency, the real admission
        // bound is the query queue below.
        let (conn_tx, conn_rx) =
            std::sync::mpsc::sync_channel::<TcpStream>((io_workers_n * 2).max(8));
        let (query_tx, query_rx) =
            std::sync::mpsc::sync_channel::<QueryJob>(config.queue_depth.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let query_rx = Arc::new(Mutex::new(query_rx));

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &conn_tx, &stop))
        };
        let io_workers = (0..io_workers_n)
            .map(|_| {
                let conn_rx = Arc::clone(&conn_rx);
                let query_tx = query_tx.clone();
                let metrics = Arc::clone(&metrics);
                let config = config.clone();
                std::thread::spawn(move || io_loop(&conn_rx, &query_tx, &metrics, &config))
            })
            .collect();
        // The io workers hold the only longer-lived clones; dropping
        // the original here lets the query channel close as soon as
        // they exit.
        drop(query_tx);
        let query_workers = (0..query_workers_n)
            .map(|_| {
                let query_rx = Arc::clone(&query_rx);
                let index = Arc::clone(&index);
                let metrics = Arc::clone(&metrics);
                let drain_deadline = Arc::clone(&drain_deadline);
                let test_delay = config.test_delay;
                std::thread::spawn(move || {
                    query_loop(&query_rx, &index, &metrics, &drain_deadline, test_delay)
                })
            })
            .collect();

        Ok(Self {
            addr,
            stop,
            drain_deadline,
            metrics,
            acceptor: Some(acceptor),
            io_workers,
            query_workers,
        })
    }

    /// The bound address (the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics handle.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stop accepting, drain the pipeline, and join every thread:
    /// closing the conn channel stops the io workers, whose exit closes
    /// the query channel and stops the query workers. In-flight
    /// requests finish; queued ones are answered before their worker
    /// sees the closed channel.
    pub fn shutdown(self) {
        self.stop_and_drain(None);
    }

    /// [`Server::shutdown`] with a drain deadline: queries already
    /// running (or dequeued before the deadline passes) finish and
    /// answer normally; jobs still queued after `grace` are answered
    /// `503` instead of executed, so a backlog of slow queries cannot
    /// hold the process open indefinitely. Every admitted request gets
    /// *some* response either way.
    pub fn shutdown_within(self, grace: Duration) {
        self.stop_and_drain(Some(grace));
    }

    fn stop_and_drain(mut self, grace: Option<Duration>) {
        if let Some(grace) = grace {
            *self
                .drain_deadline
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now() + grace);
        }
        // ordering: release pairs with the acceptor's acquire load, so
        // the acceptor observes the flag no later than the wake-up
        // connection below.
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.io_workers.drain(..) {
            let _ = handle.join();
        }
        for handle in self.query_workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Block this thread while the pools serve (until process death).
    pub fn join(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// Accept connections until the stop flag; forward each to the io pool.
/// A full conn queue blocks the acceptor — overload then backs up into
/// the kernel's accept backlog instead of growing server memory.
fn accept_loop(listener: &TcpListener, conn_tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        // ordering: acquire pairs with shutdown's release store.
        if stop.load(Ordering::Acquire) {
            break;
        }
        match stream {
            Ok(conn) => {
                if conn_tx.send(conn).is_err() {
                    break;
                }
            }
            // Transient accept errors (aborted handshakes, fd pressure)
            // must not kill the server.
            Err(_) => continue,
        }
    }
}

/// Parse one request per connection and route it: control endpoints and
/// every error answer inline; `/query` admission-checks into the
/// bounded query queue.
fn io_loop(
    conn_rx: &Arc<Mutex<Receiver<TcpStream>>>,
    query_tx: &SyncSender<QueryJob>,
    metrics: &ServerMetrics,
    config: &ServerConfig,
) {
    loop {
        let conn = {
            // Holding the lock across `recv` is the point: it makes the
            // receiver single-consumer-at-a-time, which is all mpsc
            // offers anyway.
            let guard = conn_rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(mut stream) = conn else {
            break; // channel closed: acceptor exited
        };
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        let _ = stream.set_nodelay(true);
        match http::read_request(&mut stream) {
            Ok(request) => handle_request(stream, request, query_tx, metrics),
            Err(RecvError::Disconnected) => metrics.count_disconnect(),
            Err(e) => {
                let status = match &e {
                    RecvError::TimedOut => 408,
                    RecvError::LineTooLong => 414,
                    RecvError::HeadTooLarge => 431,
                    _ => 400,
                };
                respond(stream, Response::text(status, format!("{e}\n")), metrics);
            }
        }
    }
}

/// Route a parsed request.
fn handle_request(
    stream: TcpStream,
    request: Request,
    query_tx: &SyncSender<QueryJob>,
    metrics: &ServerMetrics,
) {
    metrics.count_request(request.path());
    if request.method != "GET" {
        let resp = Response::text(405, format!("method {} not allowed\n", request.method))
            .header("Allow", "GET");
        respond(stream, resp, metrics);
        return;
    }
    match request.path() {
        "/healthz" => respond(stream, Response::text(200, "ok\n"), metrics),
        "/metrics" => {
            let body = metrics.render().to_prometheus();
            respond(stream, Response::text(200, body), metrics);
        }
        "/query" => admit_query(stream, &request, query_tx, metrics),
        other => respond(
            stream,
            Response::text(404, format!("no such path {other}\n")),
            metrics,
        ),
    }
}

/// Validate `/query` parameters and try to enqueue the job; a full
/// queue is an immediate 503 with `Retry-After`.
fn admit_query(
    stream: TcpStream,
    request: &Request,
    query_tx: &SyncSender<QueryJob>,
    metrics: &ServerMetrics,
) {
    let parsed = match parse_query_params(request) {
        Ok(p) => p,
        Err(why) => {
            respond(stream, Response::text(400, format!("{why}\n")), metrics);
            return;
        }
    };
    // ordering: relaxed gauge update; readers only need an eventually
    // consistent in-flight count.
    metrics.inflight.fetch_add(1, Ordering::Relaxed);
    let job = QueryJob {
        stream,
        request: parsed,
        admitted: Instant::now(),
    };
    match query_tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(job)) => {
            // ordering: relaxed gauge update, paired with the add above.
            metrics.inflight.fetch_sub(1, Ordering::Relaxed);
            // ordering: independent monotonic counter.
            metrics.admission_rejected.fetch_add(1, Ordering::Relaxed);
            let resp = Response::text(503, "admission queue full; retry shortly\n")
                .header("Retry-After", 1);
            respond(job.stream, resp, metrics);
        }
        Err(TrySendError::Disconnected(job)) => {
            // ordering: relaxed gauge update, paired with the add above.
            metrics.inflight.fetch_sub(1, Ordering::Relaxed);
            let resp = Response::text(503, "server is shutting down\n");
            respond(job.stream, resp, metrics);
        }
    }
}

/// `GET /query?area=x0,y0,x1,y1&time=T[&until=T2]` → a validated
/// [`QueryRequest`]. `until` defaults to `time + 1` (a snapshot).
fn parse_query_params(request: &Request) -> Result<QueryRequest, String> {
    let mut area: Option<&str> = None;
    let mut time: Option<&str> = None;
    let mut until: Option<&str> = None;
    for (key, value) in request.query_pairs() {
        match key {
            "area" if area.is_none() => area = Some(value),
            "time" if time.is_none() => time = Some(value),
            "until" if until.is_none() => until = Some(value),
            "area" | "time" | "until" => return Err(format!("duplicate parameter {key}")),
            other => {
                return Err(format!(
                    "unknown parameter {other} (valid: area, time, until)"
                ))
            }
        }
    }
    let area = parse_area(area.ok_or("missing parameter area=x0,y0,x1,y1")?)?;
    let time: u32 = time
        .ok_or("missing parameter time=T")?
        .parse()
        .map_err(|_| "time must be a non-negative integer".to_string())?;
    let until: u32 = match until {
        Some(raw) => raw
            .parse()
            .map_err(|_| "until must be a non-negative integer".to_string())?,
        None => time.saturating_add(1),
    };
    if until <= time {
        return Err("until must be after time".to_string());
    }
    Ok(QueryRequest {
        area,
        range: TimeInterval::new(time, until),
    })
}

/// `x0,y0,x1,y1` → a validated [`Rect2`].
fn parse_area(raw: &str) -> Result<Rect2, String> {
    let parts: Vec<f64> = raw
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad coordinate {p:?} in area"))
                .and_then(|v| {
                    if v.is_finite() {
                        Ok(v)
                    } else {
                        Err("area coordinates must be finite".to_string())
                    }
                })
        })
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        &[x0, y0, x1, y1] => {
            if x0 > x1 || y0 > y1 {
                return Err("area corners are reversed".to_string());
            }
            Ok(Rect2::from_bounds(x0, y0, x1, y1))
        }
        _ => Err("area takes exactly x0,y0,x1,y1".to_string()),
    }
}

/// Execute admitted queries and answer on their connections. Each
/// worker drives the shared index through a sequential
/// [`QueryExecutor`] — the pool itself is the parallelism, so outcomes
/// stay byte-identical to a one-at-a-time replay of the same requests.
fn query_loop(
    query_rx: &Arc<Mutex<Receiver<QueryJob>>>,
    index: &SpatioTemporalIndex,
    metrics: &ServerMetrics,
    drain_deadline: &Mutex<Option<Instant>>,
    test_delay: Duration,
) {
    let executor = QueryExecutor::sequential();
    loop {
        let job = {
            // Single-consumer-at-a-time receiver; see `io_loop`.
            let guard = query_rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(mut job) = job else {
            break; // channel closed: io workers exited
        };
        // Past the shutdown drain deadline, stragglers get a response
        // but not an execution — the backlog flushes in O(queue) writes
        // instead of O(queue) queries.
        let expired = drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some_and(|deadline| Instant::now() >= deadline);
        if expired {
            // ordering: independent monotonic counter.
            metrics.drain_rejected.fetch_add(1, Ordering::Relaxed);
            let resp = Response::text(503, "server is shutting down\n");
            respond_streamed(&mut job.stream, resp, metrics);
            metrics.latency.observe(job.admitted.elapsed());
            // ordering: relaxed gauge update, paired with the admission add.
            metrics.inflight.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        if test_delay > Duration::ZERO {
            std::thread::sleep(test_delay);
        }
        let response = match executor.run(index, &[job.request]).into_iter().next() {
            Some(Ok((ids, stats))) => {
                metrics.absorb_query_stats(&stats);
                let mut body = String::with_capacity(ids.len() * 8);
                for id in &ids {
                    body.push_str(&id.to_string());
                    body.push('\n');
                }
                Response::text(200, body)
                    .header("X-Sti-Results", ids.len())
                    .header("X-Sti-Disk-Reads", stats.disk_reads)
                    .header("X-Sti-Buffer-Hits", stats.buffer_hits)
                    .header("X-Sti-Nodes-Visited", stats.nodes_visited)
            }
            Some(Err(e)) => Response::text(500, format!("query failed: {e}\n")),
            None => Response::text(500, "executor returned no outcome\n"),
        };
        respond_streamed(&mut job.stream, response, metrics);
        metrics.latency.observe(job.admitted.elapsed());
        // ordering: relaxed gauge update, paired with the admission add.
        metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Write a response, counting its status or the disconnect.
fn respond(mut stream: TcpStream, response: Response, metrics: &ServerMetrics) {
    respond_streamed(&mut stream, response, metrics);
}

fn respond_streamed(stream: &mut TcpStream, response: Response, metrics: &ServerMetrics) {
    match response.write_to(stream) {
        Ok(()) => metrics.count_response(response.status),
        Err(_) => metrics.count_disconnect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(target: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
        }
    }

    #[test]
    fn query_params_parse_snapshot_and_interval() {
        let p = parse_query_params(&req("/query?area=0.1,0.2,0.3,0.4&time=5")).unwrap();
        assert_eq!(p.range, TimeInterval::new(5, 6));
        let p = parse_query_params(&req("/query?area=0,0,1,1&time=5&until=9")).unwrap();
        assert_eq!(p.range, TimeInterval::new(5, 9));
    }

    #[test]
    fn query_param_errors_are_specific() {
        for (target, needle) in [
            ("/query", "missing parameter area"),
            ("/query?area=0,0,1,1", "missing parameter time"),
            ("/query?area=0,0,1&time=1", "exactly x0,y0,x1,y1"),
            ("/query?area=1,1,0,0&time=1", "reversed"),
            ("/query?area=a,b,c,d&time=1", "bad coordinate"),
            ("/query?area=0,0,1,1&time=x", "time must be"),
            ("/query?area=0,0,1,1&time=5&until=5", "until must be after"),
            (
                "/query?area=0,0,1,1&time=5&bogus=1",
                "unknown parameter bogus",
            ),
            (
                "/query?area=0,0,1,1&area=0,0,1,1&time=1",
                "duplicate parameter area",
            ),
            ("/query?area=inf,0,1,1&time=1", "finite"),
        ] {
            let err = parse_query_params(&req(target)).unwrap_err();
            assert!(err.contains(needle), "{target}: {err}");
        }
    }

    #[test]
    fn time_overflow_saturates_instead_of_wrapping() {
        let p = parse_query_params(&req("/query?area=0,0,1,1&time=4294967295"));
        // u32::MAX + 1 saturates; the range is then empty and refused.
        assert!(p.is_err());
    }
}
