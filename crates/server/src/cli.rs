//! A strict `--flag value` parser shared by every binary in the
//! workspace (`stidx`, `sti-server`, `sti-load`).
//!
//! The predecessor parser accepted any `--key value` pair, so a typo
//! like `--commit-evry 8` silently fell back to the default commit
//! cadence. Here every flag must come from the caller's declared set,
//! duplicates are refused, and an unknown flag's error names the
//! nearest valid one.

/// Parsed flags: `--key value` pairs plus bare `--switch`es.
#[derive(Debug, Default, Clone)]
pub struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    /// The value of `--key`, when given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a required `--key`.
    ///
    /// # Errors
    /// Names the missing flag.
    pub fn need(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// True when the bare switch `--key` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Parse `--key`'s value, with a flag-naming error message.
    ///
    /// # Errors
    /// Names the flag and the expected shape on a parse failure.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse {raw:?}")),
        }
    }
}

/// Parse `args` against a declared flag vocabulary: `value_keys` take a
/// value (`--key value` or `--key=value`), `switch_keys` stand alone.
///
/// # Errors
/// - a non-`--` argument,
/// - an unknown flag (the message suggests the nearest valid one),
/// - a duplicated flag,
/// - a value flag without a value, or a switch given one via `=`.
pub fn parse_flags(
    args: &[String],
    value_keys: &[&str],
    switch_keys: &[&str],
) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(body) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {arg}"));
        };
        let (name, inline_value) = match body.split_once('=') {
            Some((n, v)) => (n, Some(v)),
            None => (body, None),
        };
        if flags.get(name).is_some() || flags.has(name) {
            return Err(format!("duplicate flag --{name}"));
        }
        if value_keys.contains(&name) {
            let value = match inline_value {
                Some(v) => v.to_string(),
                None => it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?
                    .clone(),
            };
            flags.values.push((name.to_string(), value));
        } else if switch_keys.contains(&name) {
            if inline_value.is_some() {
                return Err(format!("--{name} is a bare switch and takes no value"));
            }
            flags.switches.push(name.to_string());
        } else {
            return Err(unknown_flag_message(name, value_keys, switch_keys));
        }
    }
    Ok(flags)
}

/// "unknown flag --x", plus either the closest valid flag (when the
/// typo is close enough for the suggestion to be meaningful) or the
/// full valid set.
fn unknown_flag_message(name: &str, value_keys: &[&str], switch_keys: &[&str]) -> String {
    let all: Vec<&str> = value_keys.iter().chain(switch_keys).copied().collect();
    let nearest = all
        .iter()
        .map(|k| (edit_distance(name, k), *k))
        .min_by_key(|(d, _)| *d);
    match nearest {
        // A suggestion only helps when the distance is small relative
        // to the flag — "did you mean --out?" for `--frobnicate` would
        // be noise.
        Some((d, k)) if d <= (k.chars().count() / 3).max(2) => {
            format!("unknown flag --{name} (did you mean --{k}?)")
        }
        _ if all.is_empty() => format!("unknown flag --{name} (this command takes no flags)"),
        _ => {
            let listed: Vec<String> = all.iter().map(|k| format!("--{k}")).collect();
            format!("unknown flag --{name} (valid: {})", listed.join(", "))
        }
    }
}

/// Levenshtein distance, two-row dynamic program.
fn edit_distance(a: &str, b: &str) -> usize {
    let b_chars: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b_chars.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut cur = Vec::with_capacity(prev.len());
        cur.push(i + 1);
        for (j, &cb) in b_chars.iter().enumerate() {
            let delete = prev
                .get(j + 1)
                .copied()
                .unwrap_or(usize::MAX)
                .saturating_add(1);
            let insert = cur.last().copied().unwrap_or(usize::MAX).saturating_add(1);
            let substitute = prev
                .get(j)
                .copied()
                .unwrap_or(usize::MAX)
                .saturating_add(usize::from(ca != cb));
            cur.push(delete.min(insert).min(substitute));
        }
        prev = cur;
    }
    prev.last().copied().unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_switches_and_equals_form() {
        let f = parse_flags(
            &args(&["--out", "x.idx", "--seed=7", "--verbose"]),
            &["out", "seed"],
            &["verbose"],
        )
        .unwrap();
        assert_eq!(f.get("out"), Some("x.idx"));
        assert_eq!(f.get("seed"), Some("7"));
        assert!(f.has("verbose"));
        assert!(!f.has("out"));
        assert_eq!(f.parsed::<u64>("seed").unwrap(), Some(7));
    }

    #[test]
    fn unknown_flag_names_the_nearest_valid_one() {
        let err = parse_flags(
            &args(&["--commit-evry", "8"]),
            &["commit-every", "out"],
            &[],
        )
        .unwrap_err();
        assert_eq!(
            err,
            "unknown flag --commit-evry (did you mean --commit-every?)"
        );
    }

    #[test]
    fn unknown_flag_far_from_everything_lists_the_valid_set() {
        let err = parse_flags(&args(&["--frobnicate", "8"]), &["out", "seed"], &[]).unwrap_err();
        assert_eq!(err, "unknown flag --frobnicate (valid: --out, --seed)");
    }

    #[test]
    fn duplicate_flags_are_refused() {
        let err = parse_flags(&args(&["--out", "a", "--out", "b"]), &["out"], &[]).unwrap_err();
        assert_eq!(err, "duplicate flag --out");
        let err = parse_flags(&args(&["--out", "a", "--out=b"]), &["out"], &[]).unwrap_err();
        assert_eq!(err, "duplicate flag --out");
    }

    #[test]
    fn missing_value_and_bare_arguments_are_refused() {
        assert_eq!(
            parse_flags(&args(&["--out"]), &["out"], &[]).unwrap_err(),
            "--out needs a value"
        );
        assert_eq!(
            parse_flags(&args(&["out.idx"]), &["out"], &[]).unwrap_err(),
            "expected a --flag, got out.idx"
        );
        assert_eq!(
            parse_flags(&args(&["--verbose=yes"]), &[], &["verbose"]).unwrap_err(),
            "--verbose is a bare switch and takes no value"
        );
    }

    #[test]
    fn parsed_reports_the_flag_and_raw_value() {
        let f = parse_flags(&args(&["--seed", "seven"]), &["seed"], &[]).unwrap();
        assert_eq!(
            f.parsed::<u64>("seed").unwrap_err(),
            "--seed: cannot parse \"seven\""
        );
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("commit-evry", "commit-every"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
