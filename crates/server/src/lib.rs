//! `sti-server`: a dependency-free HTTP/1.1 layer over the
//! spatiotemporal index.
//!
//! The paper's evaluation stops at page I/Os per query; the north star
//! is a system *serving* those queries, where the metric of record
//! becomes end-to-end latency under concurrency. This crate carries the
//! index across the socket boundary:
//!
//! - [`server::Server`] — loads one shared [`sti_core::SpatioTemporalIndex`]
//!   snapshot and serves `GET /query`, `/healthz`, and `/metrics` on a
//!   fixed worker pool behind a *bounded* admission queue: overload is
//!   shed with `503` + `Retry-After` in O(1), never absorbed into
//!   unbounded memory. Built by the `sti-server` binary.
//! - [`http`] — the bounded request reader / response writer
//!   (hand-rolled over [`std::net`]; the workspace takes no external
//!   dependencies).
//! - [`cli`] — the strict flag parser shared by `stidx`, `sti-server`,
//!   and `sti-load`, which rejects unknown and duplicated flags instead
//!   of silently ignoring typos.
//!
//! The paired `sti-load` binary drives a server open-loop (fixed
//! arrival rate, latency measured from each request's *scheduled* start
//! so coordinated omission cannot flatter the tail) and reports
//! p50/p95/p99 through the `sti-bench/1` JSON shape, extending the
//! repo's perf-gate pattern from I/O counts to serving latency.

pub mod cli;
pub mod http;
pub mod server;

pub use server::{Server, ServerConfig, ServerMetrics};
