//! Just enough HTTP/1.1 to serve queries: a bounded request-head
//! reader, a request-line parser, and a response writer.
//!
//! The workspace is dependency-free by policy, so this is hand-rolled
//! over [`std::net::TcpStream`] — but *bounded* hand-rolled: the
//! request line and header block both have hard byte ceilings, so a
//! client dribbling an endless line cannot grow server memory, and
//! every malformed shape maps to a typed [`RecvError`] the server turns
//! into a 4xx instead of a panic.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Longest accepted request line (method + target + version). Beyond
/// this the request is refused with `414 URI Too Long`.
pub const MAX_REQUEST_LINE: usize = 4096;
/// Longest accepted request head (request line + all headers). Beyond
/// this the request is refused with `431 Request Header Fields Too
/// Large`.
pub const MAX_HEAD_BYTES: usize = 16384;

/// A parsed request line. Headers are read (and bounded) but not
/// retained: every endpoint this server has is driven by the target
/// alone, and the response always closes the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, verbatim (`/query?area=...`).
    pub target: String,
}

impl Request {
    /// The target's path, without the query string.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// The raw query string (empty when absent).
    pub fn query(&self) -> &str {
        match self.target.split_once('?') {
            Some((_, q)) => q,
            None => "",
        }
    }

    /// `key=value` pairs of the query string, in order, undecoded (the
    /// query grammar here is floats, integers, and commas — nothing
    /// that needs percent-encoding).
    pub fn query_pairs(&self) -> Vec<(&str, &str)> {
        self.query()
            .split('&')
            .filter(|p| !p.is_empty())
            .map(|p| match p.split_once('=') {
                Some((k, v)) => (k, v),
                None => (p, ""),
            })
            .collect()
    }
}

/// Why a request head could not be read. Each variant maps to one
/// response the server sends (or, for disconnects, to none).
#[derive(Debug)]
pub enum RecvError {
    /// Clean EOF or reset before a full head arrived.
    Disconnected,
    /// The socket read timed out mid-head (→ 408).
    TimedOut,
    /// The request line exceeded [`MAX_REQUEST_LINE`] (→ 414).
    LineTooLong,
    /// The head exceeded [`MAX_HEAD_BYTES`] (→ 431).
    HeadTooLarge,
    /// The request line did not parse (→ 400).
    BadRequest(String),
    /// Any other transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected => write!(f, "client disconnected before a full request"),
            RecvError::TimedOut => write!(f, "timed out reading the request"),
            RecvError::LineTooLong => write!(f, "request line over {MAX_REQUEST_LINE} bytes"),
            RecvError::HeadTooLarge => write!(f, "request head over {MAX_HEAD_BYTES} bytes"),
            RecvError::BadRequest(why) => write!(f, "bad request: {why}"),
            RecvError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Read one request head (everything through the blank line) off the
/// stream and parse its request line. Split and partial reads are fine:
/// the reader accumulates until the head terminator, a limit, a
/// timeout, or EOF.
///
/// # Errors
/// A typed [`RecvError`]; see each variant for the response it maps to.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RecvError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    loop {
        if find_head_end(&head).is_some() {
            break;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(RecvError::HeadTooLarge);
        }
        // An over-long *first* line is diagnosed before the head cap so
        // the client hears 414, not 431.
        if !head.contains(&b'\n') && head.len() >= MAX_REQUEST_LINE {
            return Err(RecvError::LineTooLong);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(RecvError::Disconnected),
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(RecvError::TimedOut)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::ConnectionAborted
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                return Err(RecvError::Disconnected)
            }
            Err(e) => return Err(RecvError::Io(e)),
        };
        head.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    let line_end = head
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(RecvError::Disconnected)?;
    let line = String::from_utf8_lossy(head.get(..line_end).unwrap_or_default());
    let line = line.trim_end_matches('\r');
    if line.len() > MAX_REQUEST_LINE {
        return Err(RecvError::LineTooLong);
    }
    parse_request_line(line)
}

/// Position just past the `\r\n\r\n` (or lenient `\n\n`) head
/// terminator, when present.
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|at| at + 4)
        .or_else(|| head.windows(2).position(|w| w == b"\n\n").map(|at| at + 2))
}

/// Parse `METHOD SP target SP HTTP/1.x` into a [`Request`].
fn parse_request_line(line: &str) -> Result<Request, RecvError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(RecvError::BadRequest(format!(
                "request line is not `METHOD target HTTP/1.x`: {line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !target.starts_with('/') {
        return Err(RecvError::BadRequest(format!(
            "request target must start with '/': {target:?}"
        )));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
    })
}

/// A response ready to serialize: status, extra headers, body.
/// `Connection: close`, `Content-Length`, and a plain-text content type
/// are always written; one request per connection keeps the server's
/// state machine trivial and the measured latency honest.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-written set.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Add a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize head + body to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::with_capacity(128 + self.headers.len() * 32);
        out.push_str("HTTP/1.1 ");
        out.push_str(&self.status.to_string());
        out.push(' ');
        out.push_str(status_reason(self.status));
        out.push_str("\r\nConnection: close\r\nContent-Type: text/plain; charset=utf-8\r\n");
        out.push_str("Content-Length: ");
        out.push_str(&self.body.len().to_string());
        out.push_str("\r\n");
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    /// Write the response to the stream.
    ///
    /// # Errors
    /// The transport error; the caller decides whether a failed write
    /// is a disconnect to count or a fault to surface.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// The reason phrase for every status this server sends.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_splits_target() {
        let r = parse_request_line("GET /query?area=0,0,1,1&time=5 HTTP/1.1").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path(), "/query");
        assert_eq!(r.query_pairs(), vec![("area", "0,0,1,1"), ("time", "5")]);
        let r = parse_request_line("GET /healthz HTTP/1.0").unwrap();
        assert_eq!(r.path(), "/healthz");
        assert_eq!(r.query(), "");
        assert!(r.query_pairs().is_empty());
    }

    #[test]
    fn bad_request_lines_are_typed() {
        for line in [
            "",
            "GET",
            "GET /x",
            "GET /x HTTP/1.1 extra",
            "GET /x FTP/1.0",
            "GET x HTTP/1.1",
        ] {
            assert!(
                matches!(parse_request_line(line), Err(RecvError::BadRequest(_))),
                "{line:?}"
            );
        }
    }

    #[test]
    fn head_end_accepts_crlf_and_lenient_lf() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let bytes = Response::text(503, "full\n")
            .header("Retry-After", 1)
            .to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nfull\n"), "{text}");
    }
}
