//! Socket-level hostile-client suite: split and partial writes,
//! oversized request lines and header blocks, unknown methods and
//! paths, bad query grammar, slowloris timeouts, and clients that
//! vanish before (or while) the server answers.
//!
//! Every case must map to a *typed* 4xx/5xx (or a counted disconnect),
//! never a panic, and the worker pools must come out the other side
//! intact: `inflight` drains back to zero and the same server keeps
//! answering queries and health checks afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sti_core::{IndexBackend, IndexConfig, SpatioTemporalIndex};
use sti_geom::{Point2, Rect2};
use sti_server::{Server, ServerConfig};
use sti_trajectory::RasterizedObject;

/// A small deterministic index (same shape as the executor tests).
fn build_index() -> Arc<SpatioTemporalIndex> {
    let objects: Vec<RasterizedObject> = (0..40u64)
        .map(|id| {
            let start = ((id * 17) % 600) as u32;
            let rects = (0..30)
                .map(|i| {
                    let x = 0.05 + 0.85 * ((id as f64 / 40.0) + 0.01 * f64::from(i)).fract();
                    Rect2::centered(Point2::new(x, 0.5), 0.03, 0.03)
                })
                .collect();
            RasterizedObject::new(id, start, rects)
        })
        .collect();
    let records = sti_core::unsplit_records(&objects);
    Arc::new(
        SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::PprTree)).unwrap(),
    )
}

fn start_server(config: ServerConfig) -> Server {
    Server::start(build_index(), config).unwrap()
}

fn small_config() -> ServerConfig {
    ServerConfig {
        query_workers: 2,
        io_workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    }
}

/// Write raw bytes, then read the whole response as text. The write is
/// best-effort: a server refusing mid-request closes the connection,
/// and the refusal (not a clean write) is what the test is after.
fn send_raw(server: &Server, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    read_response(&mut stream)
}

/// Drain the stream to EOF, treating a post-response reset as EOF.
fn read_response(stream: &mut TcpStream) -> String {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

fn send_line(server: &Server, request_line: &str) -> String {
    send_raw(
        server,
        format!("{request_line}\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Block until `inflight` drains to zero (bounded wait).
fn wait_for_drain(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().inflight() > 0 {
        assert!(Instant::now() < deadline, "inflight never drained to zero");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The pool must still answer health checks and real queries — the
/// "no worker leaked" check every hostile case ends with.
fn assert_pool_alive(server: &Server) {
    wait_for_drain(server);
    let health = send_line(server, "GET /healthz HTTP/1.1");
    assert_eq!(status_of(&health), 200, "{health:?}");
    // More queries than workers, so a single dead worker would show up
    // as a hang or a missing response.
    for _ in 0..6 {
        let resp = send_line(server, "GET /query?area=0,0,1,1&time=100 HTTP/1.1");
        assert_eq!(status_of(&resp), 200, "{resp:?}");
    }
    wait_for_drain(server);
}

#[test]
fn split_writes_parse_like_one_write() {
    let server = start_server(small_config());
    let whole = send_line(&server, "GET /query?area=0,0,1,1&time=100 HTTP/1.1");

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    for fragment in [
        "GET /query?area=0,0",
        ",1,1&time=100 HT",
        "TP/1.1\r\nHost: t\r\n",
        "Connection: close\r\n\r\n",
    ] {
        stream.write_all(fragment.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let mut split = String::new();
    stream.read_to_string(&mut split).unwrap();

    assert_eq!(status_of(&split), 200, "{split:?}");
    assert_eq!(body_of(&split), body_of(&whole));
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_request_line_is_414() {
    let server = start_server(small_config());
    // Never finish the line: the server must diagnose the overrun from
    // the partial head, and the client must hear 414 rather than a
    // reset (no bytes are written after the server closes).
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let partial = format!("GET /query?area={}", "9,".repeat(3000));
    stream.write_all(partial.as_bytes()).unwrap();
    stream.flush().unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(status_of(&resp), 414, "{resp:?}");
    assert!(body_of(&resp).contains("request line over"), "{resp:?}");
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_header_block_is_431() {
    let server = start_server(small_config());
    // Push the head past the cap without ever sending the terminating
    // blank line, so no client write races the server's close.
    let mut req = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..300 {
        req.push_str(&format!("X-Padding-{i}: {}\r\n", "y".repeat(64)));
    }
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(req.as_bytes()).unwrap();
    stream.flush().unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(status_of(&resp), 431, "{resp:?}");
    assert!(body_of(&resp).contains("request head over"), "{resp:?}");
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn non_get_methods_are_405_with_allow() {
    let server = start_server(small_config());
    for method in ["POST", "PUT", "DELETE", "BREW"] {
        let resp = send_line(&server, &format!("{method} /query HTTP/1.1"));
        assert_eq!(status_of(&resp), 405, "{method}: {resp:?}");
        assert!(resp.contains("Allow: GET\r\n"), "{method}: {resp:?}");
    }
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_paths_are_404() {
    let server = start_server(small_config());
    for target in ["/", "/queryy", "/metrics/extra", "/favicon.ico"] {
        let resp = send_line(&server, &format!("GET {target} HTTP/1.1"));
        assert_eq!(status_of(&resp), 404, "{target}: {resp:?}");
    }
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn malformed_request_lines_are_400() {
    let server = start_server(small_config());
    for line in [
        "GET /healthz",               // missing version
        "GET /healthz HTTP/1.1 junk", // trailing token
        "GET /healthz FTP/1.0",       // wrong protocol
        "GET healthz HTTP/1.1",       // target without leading slash
        "one-single-token",
    ] {
        let resp = send_line(&server, line);
        assert_eq!(status_of(&resp), 400, "{line}: {resp:?}");
        assert!(body_of(&resp).contains("bad request"), "{line}: {resp:?}");
    }
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn bad_query_grammar_is_400() {
    let server = start_server(small_config());
    for (target, needle) in [
        ("/query", "missing parameter area"),
        ("/query?area=0,0,1,1", "missing parameter time"),
        ("/query?area=0,0,1,1&time=5&until=5", "until must be after"),
        ("/query?area=nope&time=5", "bad coordinate"),
        ("/query?area=0,0,1,1&time=5&extra=1", "unknown parameter"),
        (
            "/query?area=0,0,1,1&area=0,0,1,1&time=5",
            "duplicate parameter",
        ),
    ] {
        let resp = send_line(&server, &format!("GET {target} HTTP/1.1"));
        assert_eq!(status_of(&resp), 400, "{target}: {resp:?}");
        assert!(body_of(&resp).contains(needle), "{target}: {resp:?}");
    }
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn half_request_then_disconnect_is_counted_not_fatal() {
    let server = start_server(small_config());
    let before = disconnects(&server);
    for _ in 0..4 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /query?area=0,0").unwrap();
        drop(stream); // vanish mid-request-line
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while disconnects(&server) < before + 4 {
        assert!(
            Instant::now() < deadline,
            "disconnects stuck at {} (wanted {})",
            disconnects(&server),
            before + 4
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn empty_connection_is_a_quiet_disconnect() {
    let server = start_server(small_config());
    let before = disconnects(&server);
    drop(TcpStream::connect(server.addr()).unwrap()); // connect, say nothing, leave
    let deadline = Instant::now() + Duration::from_secs(5);
    while disconnects(&server) < before + 1 {
        assert!(Instant::now() < deadline, "empty connection never counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn slowloris_mid_head_times_out_as_408() {
    let server = start_server(ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..small_config()
    });
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"GET /healthz HTT").unwrap(); // ...and stall
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert_eq!(status_of(&resp), 408, "{resp:?}");
    assert_pool_alive(&server);
    server.shutdown();
}

#[test]
fn client_gone_before_response_does_not_leak_a_worker() {
    // Delay each query so the client is guaranteed to be gone before
    // the worker tries to answer.
    let server = start_server(ServerConfig {
        test_delay: Duration::from_millis(80),
        ..small_config()
    });
    for _ in 0..4 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /query?area=0,0,1,1&time=100 HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        drop(stream); // gone while the query is still queued/running
    }
    // The workers must absorb the failed writes (counted as either a
    // late success or a disconnect — the race is the client's), drain
    // inflight back to zero, and keep serving.
    assert_pool_alive(&server);
    assert_eq!(server.metrics().inflight(), 0);
    server.shutdown();
}

#[test]
fn shutdown_joins_cleanly_after_hostile_traffic() {
    let server = start_server(small_config());
    let _ = send_line(&server, "GET /query?area=0,0,1,1&time=100 HTTP/1.1");
    let _ = send_line(&server, "BREW / HTTP/1.1");
    let mut half = TcpStream::connect(server.addr()).unwrap();
    half.write_all(b"GET /he").unwrap();
    drop(half);
    wait_for_drain(&server);
    server.shutdown(); // joins acceptor, io pool, and query pool
}

fn disconnects(server: &Server) -> u64 {
    let text = server.metrics().render().to_prometheus();
    text.lines()
        .find_map(|l| l.strip_prefix("sti_http_disconnects_total "))
        .and_then(|v| v.split_whitespace().next())
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

/// Graceful shutdown under load: with a slow query pool saturated by
/// concurrent clients, `shutdown_within` must (1) stop accepting,
/// (2) finish what is in flight, (3) answer — not execute — stragglers
/// queued past the drain deadline with 503, and (4) join every thread,
/// leaving no admitted request unanswered and inflight at zero.
#[test]
fn shutdown_under_load_drains_with_deadline_and_503s_stragglers() {
    let server = start_server(ServerConfig {
        query_workers: 1,
        io_workers: 2,
        queue_depth: 16,
        test_delay: Duration::from_millis(40),
        ..small_config()
    });
    let metrics = server.metrics();
    let addr = server.addr();

    // Saturate: one worker at 40ms/query, 12 concurrent clients.
    let clients: Vec<_> = (0..12)
        .map(|_| {
            std::thread::spawn(move || {
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    return String::new();
                };
                let _ = stream
                    .write_all(b"GET /query?area=0,0,1,1&time=100 HTTP/1.1\r\nHost: t\r\n\r\n");
                let _ = stream.flush();
                read_response(&mut stream)
            })
        })
        .collect();

    // Let the first queries land (some finish, the rest queue up), then
    // shut down with a deadline shorter than the remaining backlog.
    std::thread::sleep(Duration::from_millis(100));
    let begun = Instant::now();
    server.shutdown_within(Duration::from_millis(20));
    let drained_in = begun.elapsed();

    let responses: Vec<String> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let oks = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 200"))
        .count();
    let refused = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 503"))
        .count();
    let malformed = responses
        .iter()
        .filter(|r| {
            !r.is_empty() && !r.starts_with("HTTP/1.1 200") && !r.starts_with("HTTP/1.1 503")
        })
        .count();
    assert_eq!(malformed, 0, "only 200 or 503 may come back: {responses:?}");
    assert!(oks > 0, "queries before the deadline must succeed");
    assert!(
        refused > 0,
        "the saturated backlog must be shed with 503s (got {oks} oks)"
    );
    // The deadline turned the backlog into O(queue) response writes: a
    // full execution drain would need ~11 * 40ms of single-worker time.
    assert!(
        drained_in < Duration::from_millis(400),
        "drain took {drained_in:?}, deadline was ignored"
    );
    assert_eq!(metrics.inflight(), 0, "every admitted request answered");

    // The listener is gone: new clients are refused outright (or get an
    // immediate EOF if the OS raced the close), never silently queued.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            assert_eq!(
                read_response(&mut stream),
                "",
                "server answered after shutdown"
            );
        }
    }
}
