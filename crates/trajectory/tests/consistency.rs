//! Property tests tying the continuous motion model to its discrete
//! rasterization: `Trajectory::rect_at` and `rasterize()` must agree at
//! every instant, for arbitrary piecewise polynomial motion.

use proptest::prelude::*;
use sti_geom::TimeInterval;
use sti_trajectory::{MotionSegment, Polynomial, Trajectory};

/// Arbitrary motion segment over a given absolute interval.
fn arb_segment(start: u32, dur: u32) -> impl Strategy<Value = MotionSegment> {
    (
        -0.5..0.5f64,
        -0.01..0.01f64,
        -0.001..0.001f64,
        -0.5..0.5f64,
        -0.01..0.01f64,
        0.0..0.05f64,
        0.0..0.05f64,
    )
        .prop_map(move |(x0, vx, ax, y0, vy, w, h)| MotionSegment {
            interval: TimeInterval::new(start, start + dur),
            x: Polynomial::quadratic(x0, vx, ax),
            y: Polynomial::linear(y0, vy),
            w: Polynomial::constant(w),
            h: Polynomial::constant(h),
        })
}

/// Arbitrary multi-segment trajectory; segments are glued consecutively
/// (positions may jump between segments — the raster must simply record
/// whatever the model says).
fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    (1u32..200, prop::collection::vec(2u32..12, 1..5)).prop_flat_map(|(start, durs)| {
        let mut t = start;
        let mut strategies = Vec::new();
        for d in durs {
            strategies.push(arb_segment(t, d));
            t += d;
        }
        strategies.prop_map(|segments| Trajectory::new(7, segments))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn raster_agrees_with_rect_at_everywhere(tr in arb_trajectory()) {
        let ras = tr.rasterize();
        let life = tr.lifetime();
        prop_assert_eq!(ras.lifetime(), life);
        for t in life.start..life.end {
            let from_model = tr.rect_at(t).expect("inside lifetime");
            let from_raster = ras.rect((t - life.start) as usize);
            prop_assert_eq!(from_model, from_raster, "t = {}", t);
        }
        // Outside the lifetime the model returns nothing.
        prop_assert!(tr.rect_at(life.end).is_none());
        if life.start > 0 {
            prop_assert!(tr.rect_at(life.start - 1).is_none());
        }
    }

    #[test]
    fn boundaries_are_exactly_the_change_points(tr in arb_trajectory()) {
        let ras = tr.rasterize();
        let life = tr.lifetime();
        let expected: Vec<usize> = tr
            .change_points()
            .into_iter()
            .map(|t| (t - life.start) as usize)
            .collect();
        prop_assert_eq!(ras.boundaries(), &expected[..]);
    }

    #[test]
    fn mbr_range_contains_every_instant(tr in arb_trajectory()) {
        let ras = tr.rasterize();
        let n = ras.len();
        let whole = ras.mbr_range(0, n);
        for i in 0..n {
            prop_assert!(whole.contains_rect(&ras.rect(i)), "instant {}", i);
        }
        // And sub-ranges nest: [0, n) covers any [j, i).
        if n >= 3 {
            let sub = ras.mbr_range(1, n - 1);
            prop_assert!(whole.contains_rect(&sub));
        }
    }
}
