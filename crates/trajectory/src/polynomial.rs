//! Dense univariate polynomials.

/// A polynomial `c0 + c1·t + c2·t² + …` stored densely by ascending degree.
///
/// The paper restricts movement functions to polynomials "up to a maximal
/// value" of the degree; the experiments use degree 1 or 2. Nothing here
/// restricts the degree, but coefficients are evaluated with Horner's rule
/// so low degrees stay cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Build from coefficients by ascending degree. Trailing zero
    /// coefficients are trimmed so `degree` is meaningful; the zero
    /// polynomial keeps a single `0.0` coefficient.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self { coeffs: vec![c] }
    }

    /// The linear polynomial `a + b·t`.
    pub fn linear(a: f64, b: f64) -> Self {
        Self::new(vec![a, b])
    }

    /// The quadratic polynomial `a + b·t + c·t²`.
    pub fn quadratic(a: f64, b: f64, c: f64) -> Self {
        Self::new(vec![a, b, c])
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients by ascending degree.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluate at `t` using Horner's rule.
    #[inline]
    pub fn eval(&self, t: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * t + c;
        }
        acc
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::constant(0.0);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| c * i as f64)
                .collect(),
        )
    }

    /// Minimum and maximum over the *integer* grid `{0, 1, …, n}`.
    ///
    /// Discrete time makes this exact for our purposes: an object only
    /// occupies positions at integer instants, so extremes between grid
    /// points are irrelevant to MBR computation.
    pub fn min_max_on_grid(&self, n: u32) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in 0..=n {
            let v = self.eval(f64::from(t));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, c) in self.coeffs.iter().enumerate() {
            if i == 0 {
                write!(f, "{c}")?;
            } else {
                write!(f, " {} {}t^{i}", if *c < 0.0 { "-" } else { "+" }, c.abs())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_constant_linear_quadratic() {
        assert_eq!(Polynomial::constant(3.5).eval(100.0), 3.5);
        assert_eq!(Polynomial::linear(1.0, 2.0).eval(3.0), 7.0);
        assert_eq!(Polynomial::quadratic(1.0, 0.0, 2.0).eval(3.0), 19.0);
    }

    #[test]
    fn zero_polynomial() {
        let z = Polynomial::new(vec![]);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(42.0), 0.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn derivative_rules() {
        // d/dt (1 + 2t + 3t²) = 2 + 6t
        let p = Polynomial::quadratic(1.0, 2.0, 3.0);
        assert_eq!(p.derivative(), Polynomial::linear(2.0, 6.0));
        assert_eq!(
            Polynomial::constant(5.0).derivative(),
            Polynomial::constant(0.0)
        );
    }

    #[test]
    fn min_max_on_grid_parabola() {
        // (t - 2)² has min at t = 2 (on-grid) and max at t = 0 or 4.
        let p = Polynomial::quadratic(4.0, -4.0, 1.0);
        let (lo, hi) = p.min_max_on_grid(4);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 4.0);
    }

    #[test]
    fn display() {
        assert_eq!(Polynomial::linear(1.0, -2.0).to_string(), "1 - 2t^1");
    }

    proptest! {
        #[test]
        fn horner_matches_naive(coeffs in prop::collection::vec(-10.0..10.0f64, 1..6), t in -5.0..5.0f64) {
            let p = Polynomial::new(coeffs.clone());
            let naive: f64 = coeffs.iter().enumerate().map(|(i, c)| c * t.powi(i as i32)).sum();
            prop_assert!((p.eval(t) - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }

        #[test]
        fn grid_minmax_bounds_every_grid_value(coeffs in prop::collection::vec(-3.0..3.0f64, 1..4), n in 0u32..20) {
            let p = Polynomial::new(coeffs);
            let (lo, hi) = p.min_max_on_grid(n);
            for t in 0..=n {
                let v = p.eval(f64::from(t));
                prop_assert!(lo <= v && v <= hi);
            }
        }
    }
}
