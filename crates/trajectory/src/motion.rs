//! Piecewise polynomial motion: segments and full trajectories.

use crate::{Polynomial, RasterizedObject};
use sti_geom::{Point2, Rect2, Time, TimeInterval};

/// One tuple of the paper's object representation: over the half-open
/// interval `interval`, the object's *center* moves along
/// `(x(τ), y(τ))` and its extents are `(w(τ), h(τ))`, where `τ = t −
/// interval.start` is segment-local time (keeping the polynomial
/// coefficients well-conditioned for long evolutions).
///
/// Moving *points* simply use zero extent polynomials; shape change over
/// time (fig. 6 of the paper) uses non-constant `w`/`h`.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionSegment {
    /// Absolute lifetime of this segment, `[start, end)`.
    pub interval: TimeInterval,
    /// Center x as a function of local time.
    pub x: Polynomial,
    /// Center y as a function of local time.
    pub y: Polynomial,
    /// Full extent along x as a function of local time (≥ 0 expected).
    pub w: Polynomial,
    /// Full extent along y as a function of local time (≥ 0 expected).
    pub h: Polynomial,
}

impl MotionSegment {
    /// A segment with constant extents — the common "moving rectangle".
    pub fn with_constant_extent(
        interval: TimeInterval,
        x: Polynomial,
        y: Polynomial,
        w: f64,
        h: f64,
    ) -> Self {
        Self {
            interval,
            x,
            y,
            w: Polynomial::constant(w),
            h: Polynomial::constant(h),
        }
    }

    /// A segment describing a moving point (zero extent).
    pub fn moving_point(interval: TimeInterval, x: Polynomial, y: Polynomial) -> Self {
        Self::with_constant_extent(interval, x, y, 0.0, 0.0)
    }

    /// Straight-line segment from `a` to `b` over `interval`, constant
    /// extent `(w, h)`. Used heavily by the railway generator.
    pub fn linear_between(interval: TimeInterval, a: Point2, b: Point2, w: f64, h: f64) -> Self {
        let dur = interval.len() as f64;
        let (vx, vy) = if dur > 0.0 {
            ((b.x - a.x) / dur, (b.y - a.y) / dur)
        } else {
            (0.0, 0.0)
        };
        Self::with_constant_extent(
            interval,
            Polynomial::linear(a.x, vx),
            Polynomial::linear(a.y, vy),
            w,
            h,
        )
    }

    /// Object MBR at absolute instant `t`, or `None` outside the segment.
    ///
    /// Negative extents (a generator bug) are clamped to zero rather than
    /// producing reversed rectangles.
    pub fn rect_at(&self, t: Time) -> Option<Rect2> {
        if !self.interval.contains(t) {
            return None;
        }
        let tau = f64::from(t - self.interval.start);
        let cx = self.x.eval(tau);
        let cy = self.y.eval(tau);
        let w = self.w.eval(tau).max(0.0);
        let h = self.h.eval(tau).max(0.0);
        Some(Rect2::centered(Point2::new(cx, cy), w, h))
    }
}

/// A complete spatiotemporal object: consecutive motion segments covering
/// its lifetime without gaps.
///
/// Invariants checked by [`Trajectory::new`]:
/// * at least one non-empty segment,
/// * segments are consecutive: `segments[i].interval.end ==
///   segments[i+1].interval.start`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Stable object identifier; survives splitting so query results can be
    /// de-duplicated back to objects.
    pub id: u64,
    segments: Vec<MotionSegment>,
}

impl Trajectory {
    /// Build a trajectory, validating the segment chain.
    ///
    /// # Panics
    /// On empty input, an empty segment, or non-consecutive segments.
    pub fn new(id: u64, segments: Vec<MotionSegment>) -> Self {
        assert!(!segments.is_empty(), "trajectory {id} has no segments");
        for (i, s) in segments.iter().enumerate() {
            assert!(
                !s.interval.is_empty(),
                "trajectory {id}: segment {i} is empty"
            );
            if i > 0 {
                assert_eq!(
                    segments[i - 1].interval.end,
                    s.interval.start,
                    "trajectory {id}: gap/overlap between segments {} and {i}",
                    i - 1
                );
            }
        }
        Self { id, segments }
    }

    /// The motion segments, in time order.
    pub fn segments(&self) -> &[MotionSegment] {
        &self.segments
    }

    /// Lifetime `[t_s, t_e)` of the whole object.
    pub fn lifetime(&self) -> TimeInterval {
        // stilint::allow(no_panic, "the constructor rejects trajectories with no segments")
        let first = self.segments.first().expect("nonempty");
        // stilint::allow(no_panic, "the constructor rejects trajectories with no segments")
        let last = self.segments.last().expect("nonempty");
        TimeInterval::new(first.interval.start, last.interval.end)
    }

    /// Number of instants the object is alive.
    pub fn duration(&self) -> u64 {
        self.lifetime().len()
    }

    /// Object MBR at absolute instant `t`, or `None` outside the lifetime.
    pub fn rect_at(&self, t: Time) -> Option<Rect2> {
        // Binary search for the segment whose interval contains t.
        let idx = self.segments.partition_point(|s| s.interval.end <= t);
        self.segments.get(idx).and_then(|s| s.rect_at(t))
    }

    /// Absolute instants where the movement "changes characteristics" —
    /// interior segment boundaries. The piecewise splitting baseline cuts
    /// exactly here.
    pub fn change_points(&self) -> Vec<Time> {
        self.segments
            .iter()
            .skip(1)
            .map(|s| s.interval.start)
            .collect()
    }

    /// Sample one rectangle per alive instant — the discrete-time view the
    /// splitting algorithms operate on.
    pub fn rasterize(&self) -> RasterizedObject {
        let life = self.lifetime();
        let mut rects = Vec::with_capacity(life.len() as usize);
        for s in &self.segments {
            for t in s.interval.start..s.interval.end {
                // stilint::allow(no_panic, "the loop ranges over exactly the instants rect_at accepts for this segment")
                rects.push(s.rect_at(t).expect("t inside segment"));
            }
        }
        let boundaries = self
            .change_points()
            .into_iter()
            .map(|t| (t - life.start) as usize)
            .collect();
        RasterizedObject::with_boundaries(self.id, life.start, rects, boundaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: Time, t1: Time, x0: f64, vx: f64) -> MotionSegment {
        MotionSegment::with_constant_extent(
            TimeInterval::new(t0, t1),
            Polynomial::linear(x0, vx),
            Polynomial::constant(0.5),
            0.1,
            0.2,
        )
    }

    #[test]
    fn segment_rect_uses_local_time() {
        let s = seg(10, 20, 0.0, 0.1);
        let r = s.rect_at(15).unwrap();
        // center x = 0.0 + 0.1 * (15 - 10) = 0.5
        assert!((r.center().x - 0.5).abs() < 1e-12);
        assert!((r.width() - 0.1).abs() < 1e-12);
        assert!((r.height() - 0.2).abs() < 1e-12);
        assert!(s.rect_at(9).is_none());
        assert!(s.rect_at(20).is_none());
    }

    #[test]
    fn negative_extent_clamped() {
        let s = MotionSegment {
            interval: TimeInterval::new(0, 5),
            x: Polynomial::constant(0.5),
            y: Polynomial::constant(0.5),
            w: Polynomial::linear(0.1, -0.1), // negative from τ=2
            h: Polynomial::constant(0.1),
        };
        let r = s.rect_at(4).unwrap();
        assert_eq!(r.width(), 0.0);
    }

    #[test]
    fn linear_between_hits_endpoints() {
        let s = MotionSegment::linear_between(
            TimeInterval::new(0, 10),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.5),
            0.0,
            0.0,
        );
        let start = s.rect_at(0).unwrap().center();
        assert!((start.x).abs() < 1e-12 && (start.y).abs() < 1e-12);
        // t=10 is outside [0,10); check t=9 is 9/10 of the way.
        let near_end = s.rect_at(9).unwrap().center();
        assert!((near_end.x - 0.9).abs() < 1e-12);
        assert!((near_end.y - 0.45).abs() < 1e-12);
    }

    #[test]
    fn trajectory_lifetime_and_lookup() {
        let tr = Trajectory::new(7, vec![seg(10, 20, 0.0, 0.1), seg(20, 25, 1.0, 0.0)]);
        assert_eq!(tr.lifetime(), TimeInterval::new(10, 25));
        assert_eq!(tr.duration(), 15);
        assert_eq!(tr.change_points(), vec![20]);
        // lookup falls in second segment
        let r = tr.rect_at(22).unwrap();
        assert!((r.center().x - 1.0).abs() < 1e-12);
        assert!(tr.rect_at(25).is_none());
        assert!(tr.rect_at(9).is_none());
    }

    #[test]
    #[should_panic(expected = "gap/overlap")]
    fn trajectory_rejects_gaps() {
        let _ = Trajectory::new(1, vec![seg(0, 5, 0.0, 0.0), seg(6, 8, 0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "no segments")]
    fn trajectory_rejects_empty() {
        let _ = Trajectory::new(1, vec![]);
    }

    #[test]
    fn rasterize_counts_and_boundaries() {
        let tr = Trajectory::new(3, vec![seg(10, 20, 0.0, 0.1), seg(20, 25, 1.0, 0.0)]);
        let ras = tr.rasterize();
        assert_eq!(ras.len(), 15);
        assert_eq!(ras.start(), 10);
        assert_eq!(ras.boundaries(), &[10]); // instant 20 is index 10
                                             // rect at index 5 equals trajectory rect at t=15
        assert_eq!(ras.rect(5), tr.rect_at(15).unwrap());
    }
}
