//! Spatiotemporal object model.
//!
//! The paper (§II-A) represents an object `O` as a set of tuples
//! `([t_a, t_b), F_x(t), F_y(t))` where the `F`s are *polynomial* functions
//! describing the movement (and, optionally, the extent change) over each
//! sub-interval of the object's lifetime. This crate implements:
//!
//! * [`Polynomial`] — dense univariate polynomials with Horner evaluation,
//! * [`MotionSegment`] — one tuple: a time interval plus polynomials for
//!   the center position `(x(t), y(t))` and the extents `(w(t), h(t))`,
//! * [`Trajectory`] — a full object: consecutive motion segments covering
//!   its lifetime,
//! * [`RasterizedObject`] — the discrete-time view the splitting
//!   algorithms consume: one spatial rectangle per time instant
//!   ("a sequence of *n* spatial objects, one at each time instant", §III-A).
//!
//! Time is discrete, so the MBR of a movement over any interval is the
//! union of the per-instant rectangles — no root finding is needed.

pub mod motion;
pub mod polynomial;
pub mod raster;

pub use motion::{MotionSegment, Trajectory};
pub use polynomial::Polynomial;
pub use raster::RasterizedObject;
