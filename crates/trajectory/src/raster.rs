//! Discrete-time view of a spatiotemporal object.

use sti_geom::{Rect2, StBox, Time, TimeInterval};

/// A spatiotemporal object sampled at every instant of its lifetime: the
/// input format of all splitting algorithms ("a sequence of n spatial
/// objects, one at each time instant", §III-A, fig. 8).
///
/// Index `i` corresponds to absolute instant `start + i`. A *cut* at index
/// `c` (0 < c < n) splits the object between instants `c−1` and `c`; `k`
/// cuts produce `k+1` consecutive pieces, each approximated by the spatial
/// MBR of its instants and a lifetime covering them.
#[derive(Debug, Clone, PartialEq)]
pub struct RasterizedObject {
    id: u64,
    start: Time,
    rects: Vec<Rect2>,
    /// Indices where the underlying movement changes characteristics
    /// (interior segment boundaries); strictly increasing, in `1..n`.
    boundaries: Vec<usize>,
}

impl RasterizedObject {
    /// Build from per-instant rectangles with no recorded change points.
    ///
    /// # Panics
    /// If `rects` is empty — an object is alive for at least one instant.
    pub fn new(id: u64, start: Time, rects: Vec<Rect2>) -> Self {
        Self::with_boundaries(id, start, rects, Vec::new())
    }

    /// Build from per-instant rectangles plus movement change points.
    ///
    /// # Panics
    /// If `rects` is empty or any boundary is out of `1..rects.len()` or
    /// boundaries are not strictly increasing.
    pub fn with_boundaries(
        id: u64,
        start: Time,
        rects: Vec<Rect2>,
        boundaries: Vec<usize>,
    ) -> Self {
        assert!(!rects.is_empty(), "object {id} has no instants");
        for (k, &b) in boundaries.iter().enumerate() {
            assert!(
                b >= 1 && b < rects.len(),
                "object {id}: boundary {b} out of range"
            );
            if k > 0 {
                assert!(
                    boundaries[k - 1] < b,
                    "object {id}: boundaries not increasing"
                );
            }
        }
        Self {
            id,
            start,
            rects,
            boundaries,
        }
    }

    /// Stable object identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// First alive instant.
    pub fn start(&self) -> Time {
        self.start
    }

    /// Number of alive instants (`n`).
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Always false — construction rejects empty objects. Provided for
    /// clippy-idiomatic pairing with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lifetime `[start, start + n)`.
    pub fn lifetime(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.start + self.rects.len() as Time)
    }

    /// Spatial rectangle at raster index `i` (instant `start + i`).
    pub fn rect(&self, i: usize) -> Rect2 {
        self.rects[i]
    }

    /// All per-instant rectangles.
    pub fn rects(&self) -> &[Rect2] {
        &self.rects
    }

    /// Movement change points as raster indices (for the piecewise
    /// baseline splitter).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Spatial MBR over raster indices `[j, i)`.
    ///
    /// O(i − j); the dynamic programs maintain running unions instead of
    /// calling this in inner loops.
    pub fn mbr_range(&self, j: usize, i: usize) -> Rect2 {
        assert!(j < i && i <= self.rects.len(), "bad range [{j}, {i})");
        let mut mbr = self.rects[j];
        for r in &self.rects[j + 1..i] {
            mbr.expand(r);
        }
        mbr
    }

    /// Volume of the single box covering indices `[j, i)`:
    /// spatial area × number of instants.
    pub fn volume_range(&self, j: usize, i: usize) -> f64 {
        self.mbr_range(j, i).area() * (i - j) as f64
    }

    /// Volume of the whole object approximated by one MBR (no splits).
    pub fn unsplit_volume(&self) -> f64 {
        self.volume_range(0, self.rects.len())
    }

    /// Materialize the space-time boxes for a sorted list of interior cut
    /// indices; `k` cuts yield `k + 1` boxes with consecutive lifetimes.
    ///
    /// # Panics
    /// If cuts are not strictly increasing inside `1..n`.
    pub fn boxes_for_cuts(&self, cuts: &[usize]) -> Vec<StBox> {
        let n = self.rects.len();
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut prev = 0usize;
        for &c in cuts {
            assert!(c > prev && c < n, "cut {c} invalid after {prev} (n = {n})");
            out.push(self.piece(prev, c));
            prev = c;
        }
        out.push(self.piece(prev, n));
        out
    }

    /// Total volume of the boxes produced by `boxes_for_cuts`.
    pub fn volume_for_cuts(&self, cuts: &[usize]) -> f64 {
        let mut total = 0.0;
        let n = self.rects.len();
        let mut prev = 0usize;
        for &c in cuts {
            assert!(c > prev && c < n, "cut {c} invalid after {prev} (n = {n})");
            total += self.volume_range(prev, c);
            prev = c;
        }
        total + self.volume_range(prev, n)
    }

    fn piece(&self, j: usize, i: usize) -> StBox {
        StBox::new(
            self.mbr_range(j, i),
            TimeInterval::new(self.start + j as Time, self.start + i as Time),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sti_geom::Point2;

    /// Object moving diagonally one 0.1-step per instant, size 0.1 × 0.1.
    fn diagonal(n: usize) -> RasterizedObject {
        let rects = (0..n)
            .map(|i| {
                let c = Point2::new(0.05 + 0.1 * i as f64, 0.05 + 0.1 * i as f64);
                Rect2::centered(c, 0.1, 0.1)
            })
            .collect();
        RasterizedObject::new(9, 100, rects)
    }

    #[test]
    fn lifetime_and_len() {
        let o = diagonal(5);
        assert_eq!(o.len(), 5);
        assert_eq!(o.lifetime(), TimeInterval::new(100, 105));
    }

    #[test]
    #[should_panic(expected = "no instants")]
    fn rejects_empty() {
        let _ = RasterizedObject::new(1, 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_boundary() {
        let _ = RasterizedObject::with_boundaries(1, 0, vec![Rect2::UNIT, Rect2::UNIT], vec![2]);
    }

    #[test]
    fn mbr_range_is_union() {
        let o = diagonal(3);
        let m = o.mbr_range(0, 3);
        // covers [0, 0.3] on both axes
        assert!((m.lo.x - 0.0).abs() < 1e-12);
        assert!((m.hi.x - 0.3).abs() < 1e-12);
        let single = o.mbr_range(1, 2);
        assert_eq!(single, o.rect(1));
    }

    #[test]
    fn splitting_reduces_volume_for_movers() {
        let o = diagonal(10);
        let whole = o.unsplit_volume();
        let halves = o.volume_for_cuts(&[5]);
        assert!(halves < whole, "splitting a mover must shrink volume");
        // and boxes_for_cuts agrees with volume_for_cuts
        let sum: f64 = o.boxes_for_cuts(&[5]).iter().map(StBox::volume).sum();
        assert!((sum - halves).abs() < 1e-12);
    }

    #[test]
    fn stationary_object_gains_nothing() {
        let rects = vec![Rect2::from_bounds(0.1, 0.1, 0.2, 0.2); 8];
        let o = RasterizedObject::new(2, 0, rects);
        assert!((o.unsplit_volume() - o.volume_for_cuts(&[4])).abs() < 1e-12);
    }

    #[test]
    fn boxes_lifetimes_are_consecutive() {
        let o = diagonal(10);
        let boxes = o.boxes_for_cuts(&[3, 7]);
        assert_eq!(boxes.len(), 3);
        assert_eq!(boxes[0].lifetime, TimeInterval::new(100, 103));
        assert_eq!(boxes[1].lifetime, TimeInterval::new(103, 107));
        assert_eq!(boxes[2].lifetime, TimeInterval::new(107, 110));
    }

    #[test]
    #[should_panic(expected = "invalid after")]
    fn rejects_unsorted_cuts() {
        let o = diagonal(10);
        let _ = o.boxes_for_cuts(&[7, 3]);
    }

    fn arb_object() -> impl Strategy<Value = RasterizedObject> {
        prop::collection::vec((0.0..0.9f64, 0.0..0.9f64), 1..30).prop_map(|pts| {
            let rects = pts
                .into_iter()
                .map(|(x, y)| Rect2::from_bounds(x, y, x + 0.1, y + 0.1))
                .collect();
            RasterizedObject::new(1, 0, rects)
        })
    }

    proptest! {
        #[test]
        fn any_cut_never_increases_volume(o in arb_object(), cut_frac in 0.01..0.99f64) {
            // A single box always covers at least as much as two sub-boxes:
            // union is monotone, so splitting can only remove volume.
            let n = o.len();
            if n >= 2 {
                let c = ((n as f64 * cut_frac) as usize).clamp(1, n - 1);
                prop_assert!(o.volume_for_cuts(&[c]) <= o.unsplit_volume() + 1e-9);
            }
        }

        #[test]
        fn boxes_cover_every_instant(o in arb_object()) {
            let n = o.len();
            let cuts: Vec<usize> = (1..n).step_by(3).collect();
            let boxes = o.boxes_for_cuts(&cuts);
            for i in 0..n {
                let t = o.start() + i as Time;
                let covered = boxes.iter().any(|b| {
                    b.lifetime.contains(t) && b.rect.contains_rect(&o.rect(i))
                });
                prop_assert!(covered, "instant {i} not covered");
            }
        }
    }
}
