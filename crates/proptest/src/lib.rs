//! Offline stand-in for the `proptest` crate.
//!
//! The real crate cannot be fetched on a clean registry (and CI
//! registries have proven unreliable), so this path crate implements the
//! subset of the API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * range, tuple, `Vec`, and function-built strategies,
//! * [`collection::vec`], [`sample::select`], [`array::uniform3`],
//!   [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate, deliberate for an offline CI: cases
//! are generated from a **fixed seed** derived from the test name (runs
//! are reproducible by construction, no persisted failure files), and
//! there is **no shrinking** — a failing case reports its case number,
//! which is stable across runs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: rand::SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: rand::SampleUniform + PartialOrd + Copy,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

/// Every element drawn from the inner strategy, in index order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
}

/// `any::<T>()` — the whole domain of `T` (full bit patterns for floats,
/// including NaN and infinities, as the real crate's edge cases would
/// exercise).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}
arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.random())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.random())
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Sizes accepted by [`vec()`]: a fixed `usize` or a `usize` range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.start..self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// A uniformly selected element of `options` (which must be
    /// nonempty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// Array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_array {
        ($($name:ident $ty:ident $n:literal),*) => {$(
            /// An array whose elements are drawn independently from one
            /// strategy, in index order.
            pub fn $name<S: Strategy>(element: S) -> $ty<S> {
                $ty(element)
            }

            #[doc = "See the constructor of the same (lowercased) name."]
            pub struct $ty<S>(S);

            impl<S: Strategy> Strategy for $ty<S> {
                type Value = [S::Value; $n];
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    // Explicit order: index 0 first.
                    let mut out = Vec::with_capacity($n);
                    for _ in 0..$n {
                        out.push(self.0.generate(rng));
                    }
                    out.try_into().ok().expect("exact length")
                }
            }
        )*};
    }
    uniform_array!(uniform2 Uniform2 2, uniform3 Uniform3 3, uniform4 Uniform4 4);
}

/// The `prop::` namespace the prelude exposes.
pub mod prop {
    pub use crate::{array, collection, sample};
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Seed for a test: a stable hash of its name, so every test draws an
/// independent, reproducible stream.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    SeedableRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Run `body` for every case, reporting the (reproducible) case number
/// on failure.
#[doc(hidden)]
pub fn run_cases(name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..config.cases {
        let mut rng = seed_for(name, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest {name}: failed at case {case}/{} (deterministic; rerun reproduces it)",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The macro the property tests are written in. Supports an optional
/// leading `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ($($strat,)*);
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    let ($($arg,)*) = $crate::Strategy::generate(&__strategies, __rng);
                    $body
                });
            }
        )*
    };
}

/// Property-test assertion; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion; identical to `assert_ne!` here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0.0..1.0f64, 3..10);
        let a = Strategy::generate(&strat, &mut crate::seed_for("x", 0));
        let b = Strategy::generate(&strat, &mut crate::seed_for("x", 0));
        assert_eq!(a, b);
        let c = Strategy::generate(&strat, &mut crate::seed_for("x", 1));
        assert_ne!(a, c, "cases draw distinct streams");
    }

    #[test]
    fn vec_of_strategies_generates_in_order() {
        let strats = vec![0..1usize, 5..6, 9..10];
        let v = Strategy::generate(&strats, &mut crate::seed_for("y", 0));
        assert_eq!(v, vec![0, 5, 9]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -1.0..1.0f64) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn maps_and_flat_maps_compose(
            v in prop::collection::vec(1usize..5, 1..4).prop_flat_map(|lens| {
                lens.into_iter().map(|n| 0..n).collect::<Vec<_>>()
            }),
            picked in prop::sample::select(vec![2, 4, 6]),
            arr in prop::array::uniform3(0.0..1.0f64),
        ) {
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(picked % 2 == 0);
            prop_assert!(arr.iter().all(|&a| (0.0..1.0).contains(&a)));
        }

        #[test]
        fn tuples_and_any(t in (any::<u8>(), 0usize..3), flag in any::<bool>()) {
            let (_, small) = t;
            prop_assert!(small < 3, "flag was {}", flag);
        }
    }
}
