//! Record-set statistics feeding the analytical models.

use sti_geom::StBox;

/// Aggregate statistics of a set of space-time boxes (the records a split
/// plan produces), normalized to the unit space and the evolution length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Number of boxes.
    pub count: usize,
    /// Mean spatial extents (fractions of the unit square).
    pub avg_extent: (f64, f64),
    /// Mean temporal extent as a fraction of the evolution.
    pub avg_duration: f64,
    /// Mean number of boxes alive at a random instant
    /// (Σ durations / evolution length).
    pub alive_per_instant: f64,
    /// Total volume in the paper's measure (area × instants).
    pub total_volume: f64,
}

impl BoxStats {
    /// Compute over a record set. `time_extent` is the evolution length
    /// in instants.
    pub fn compute<'a>(boxes: impl IntoIterator<Item = &'a StBox>, time_extent: u32) -> Self {
        let mut count = 0usize;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut st = 0.0;
        let mut vol = 0.0;
        for b in boxes {
            count += 1;
            sx += b.rect.width();
            sy += b.rect.height();
            st += b.lifetime.len() as f64;
            vol += b.volume();
        }
        assert!(count > 0, "no boxes");
        let n = count as f64;
        Self {
            count,
            avg_extent: (sx / n, sy / n),
            avg_duration: (st / n) / f64::from(time_extent),
            alive_per_instant: st / f64::from(time_extent),
            total_volume: vol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_geom::{Rect2, TimeInterval};

    fn boxes() -> Vec<StBox> {
        vec![
            StBox::new(
                Rect2::from_bounds(0.0, 0.0, 0.1, 0.2),
                TimeInterval::new(0, 100),
            ),
            StBox::new(
                Rect2::from_bounds(0.5, 0.5, 0.8, 0.6),
                TimeInterval::new(100, 200),
            ),
        ]
    }

    #[test]
    fn aggregates_are_correct() {
        let s = BoxStats::compute(&boxes(), 1000);
        assert_eq!(s.count, 2);
        assert!((s.avg_extent.0 - 0.2).abs() < 1e-12); // (0.1 + 0.3) / 2
        assert!((s.avg_extent.1 - 0.15).abs() < 1e-12); // (0.2 + 0.1) / 2
        assert!((s.avg_duration - 0.1).abs() < 1e-12);
        assert!((s.alive_per_instant - 0.2).abs() < 1e-12);
        assert!((s.total_volume - (0.02 * 100.0 + 0.03 * 100.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no boxes")]
    fn rejects_empty() {
        let _ = BoxStats::compute(&[], 1000);
    }
}
