//! Analytical query-cost models (paper §IV).
//!
//! The split-distribution algorithms minimize total volume, but "the real
//! objective … is not to minimize the total volume itself, but to reduce
//! the cost of answering a query" (§IV). This crate provides the two
//! model families the paper proposes for picking the number of splits
//! without building every candidate index:
//!
//! * [`pagel`] — the Pagel et al. cost formula: for uniformly placed
//!   window queries, the expected number of boxes touched is
//!   `Σ_boxes Π_d (s_d + q_d)` — query performance depends on total
//!   volume, total surface, and box count.
//! * [`rtree_model`] — a Theodoridis–Sellis style R-Tree performance
//!   model: estimates node extents per level from data density and
//!   fanout, then applies the Pagel sum per level.
//! * [`BoxStats`] — compact per-record-set statistics feeding the models.

pub mod multiversion;
pub mod pagel;
pub mod rtree_model;
pub mod stats;

pub use multiversion::MultiVersionCostModel;
pub use pagel::{pagel_cost_2d, pagel_cost_3d};
pub use rtree_model::RTreeCostModel;
pub use stats::BoxStats;
