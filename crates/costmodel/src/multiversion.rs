//! Cost models for the partially persistent structures (after Tao &
//! Papadias, ICDE 2002 — reference \[26\] of the paper: "Cost models for
//! overlapping and multi-version structures").
//!
//! The PPR-Tree behaves like an ephemeral 2D R-Tree per time instant, so
//! its query cost is the 2D [`RTreeCostModel`] over the records *alive*
//! at the query instant; interval queries add the records that turn over
//! during the window. Storage is linear in the number of updates for the
//! multi-version approach and `height × updates` for the overlapping
//! approach — the asymmetry §II cites.

use crate::RTreeCostModel;

/// Analytical model for multi-version (PPR) and overlapping (HR)
/// partial-persistence structures.
#[derive(Debug, Clone, Copy)]
pub struct MultiVersionCostModel {
    /// The underlying R-Tree model (fanout assumption).
    pub rtree: RTreeCostModel,
    /// Page capacity in entries (the paper's B = 50).
    pub page_capacity: usize,
    /// Expansion factor of the multi-version store over a plain R-Tree on
    /// the same records: version copies roughly double the space (the
    /// paper's fig. 16 measures ≈ 2×).
    pub version_overhead: f64,
}

impl Default for MultiVersionCostModel {
    fn default() -> Self {
        Self {
            rtree: RTreeCostModel::default(),
            page_capacity: 50,
            version_overhead: 2.0,
        }
    }
}

impl MultiVersionCostModel {
    /// Expected node accesses for a snapshot query: the ephemeral 2D
    /// R-Tree over the `alive` records with mean extents `s`, probed by a
    /// window with extents `q`.
    pub fn snapshot_cost(&self, alive: usize, s: (f64, f64), q: (f64, f64)) -> f64 {
        self.rtree.estimate(alive, &[s.0, s.1], &[q.0, q.1])
    }

    /// Expected node accesses for an interval query of `duration`
    /// instants: the snapshot cost scaled by the record turnover across
    /// the window (`avg_record_duration` = mean record lifetime in
    /// instants).
    pub fn interval_cost(
        &self,
        alive: usize,
        s: (f64, f64),
        q: (f64, f64),
        duration: u32,
        avg_record_duration: f64,
    ) -> f64 {
        assert!(duration >= 1);
        let turnover = 1.0 + f64::from(duration - 1) / avg_record_duration.max(1.0);
        self.rtree.estimate(
            ((alive as f64 * turnover).ceil() as usize).max(1),
            &[s.0, s.1],
            &[q.0, q.1],
        )
    }

    /// Predicted disk pages for the multi-version store after `updates`
    /// record insertions+deletions: linear in the changes.
    ///
    /// Each logical record (insert + delete = 2 updates) occupies one
    /// leaf slot, plus version copies (the overhead factor), plus ~1/B
    /// directory weight per leaf entry.
    pub fn ppr_pages(&self, updates: usize) -> f64 {
        let records = updates as f64 / 2.0;
        let leaf_slots = records * self.version_overhead;
        let b = self.page_capacity as f64;
        // The classic ~69% average page utilization.
        (leaf_slots / (0.69 * b)) * (1.0 + 1.0 / b)
    }

    /// Predicted disk pages for the *overlapping* store: every update
    /// copies a root-to-leaf path of the ephemeral tree over `alive_avg`
    /// records.
    pub fn hr_pages(&self, updates: usize, alive_avg: f64) -> f64 {
        let b = self.page_capacity as f64;
        let height = 1.0 + (alive_avg.max(b) / b).log(b.max(2.0)).max(0.0).ceil();
        updates as f64 * height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_cost_grows_with_duration() {
        let m = MultiVersionCostModel::default();
        let s = (0.01, 0.01);
        let q = (0.005, 0.005);
        let snap = m.snapshot_cost(2000, s, q);
        let one = m.interval_cost(2000, s, q, 1, 50.0);
        let long = m.interval_cost(2000, s, q, 50, 50.0);
        assert!((snap - one).abs() < 1e-9, "duration 1 equals a snapshot");
        assert!(long > one, "longer windows touch more records");
    }

    #[test]
    fn overlapping_storage_dwarfs_multiversion() {
        // The §II claim, in model form: for any realistic update count
        // the HR prediction is at least an order of magnitude larger.
        let m = MultiVersionCostModel::default();
        let updates = 50_000;
        let ppr = m.ppr_pages(updates);
        let hr = m.hr_pages(updates, 2500.0);
        assert!(hr > ppr * 10.0, "hr {hr} vs ppr {ppr}");
    }

    #[test]
    fn ppr_storage_is_linear() {
        let m = MultiVersionCostModel::default();
        let a = m.ppr_pages(10_000);
        let b = m.ppr_pages(20_000);
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}
