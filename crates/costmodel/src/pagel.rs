//! The Pagel et al. window-query cost formula.
//!
//! For a query window with extents `q` whose position is uniform in the
//! unit space, the probability that it intersects a box with extents `s`
//! is `Π_d (s_d + q_d)` (ignoring boundary effects). Summing over all
//! boxes of a structure gives the expected number of boxes touched — the
//! formula the paper cites to argue why splitting helps: it trades total
//! volume (the `Π s_d` part) against box count (the number of summands).

/// Expected number of 2D boxes (average extents `s`, `count` many)
/// intersected by a uniform query with extents `q`.
pub fn pagel_cost_2d(count: usize, s: (f64, f64), q: (f64, f64)) -> f64 {
    count as f64 * (s.0 + q.0) * (s.1 + q.1)
}

/// Expected number of 3D boxes intersected by a uniform query with
/// extents `q` (third dimension = normalized time).
pub fn pagel_cost_3d(count: usize, s: (f64, f64, f64), q: (f64, f64, f64)) -> f64 {
    count as f64 * (s.0 + q.0) * (s.1 + q.1) * (s.2 + q.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_query_cost_is_total_volume() {
        // q = 0: the expected touches equal the summed box volumes —
        // exactly the quantity the split algorithms minimize.
        assert!((pagel_cost_3d(10, (0.1, 0.1, 0.5), (0.0, 0.0, 0.0)) - 10.0 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn cost_grows_with_query_and_box_size() {
        let small = pagel_cost_2d(100, (0.01, 0.01), (0.01, 0.01));
        let bigger_q = pagel_cost_2d(100, (0.01, 0.01), (0.05, 0.05));
        let bigger_s = pagel_cost_2d(100, (0.05, 0.05), (0.01, 0.01));
        assert!(bigger_q > small);
        assert!(bigger_s > small);
        assert!(
            (bigger_q - bigger_s).abs() < 1e-12,
            "formula is symmetric in s and q"
        );
    }

    #[test]
    fn splitting_tradeoff_is_visible() {
        // One long box (t-extent 1.0) vs two half-length boxes with
        // smaller spatial extents: for small queries the split wins even
        // though the count doubled.
        let unsplit = pagel_cost_3d(1, (0.5, 0.5, 1.0), (0.01, 0.01, 0.001));
        let split = pagel_cost_3d(2, (0.25, 0.25, 0.5), (0.01, 0.01, 0.001));
        assert!(split < unsplit);
    }
}
