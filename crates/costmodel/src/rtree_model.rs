//! A Theodoridis–Sellis style R-Tree performance model.
//!
//! Predicts the expected number of node accesses for a uniform window
//! query from dataset statistics only (no index needs to be built):
//! node extents per level are derived from the *data density* via the
//! published recursion, and the Pagel sum is applied level by level.

/// Analytical R-Tree cost model, parameterized by the average fanout.
#[derive(Debug, Clone, Copy)]
pub struct RTreeCostModel {
    /// Average entries per node. With a capacity of 50 and ~70% fill,
    /// ≈ 35.
    pub fanout: f64,
}

impl Default for RTreeCostModel {
    fn default() -> Self {
        // 50-entry pages at the classic ~69% average utilization.
        Self { fanout: 34.5 }
    }
}

impl RTreeCostModel {
    /// Expected node accesses for a window query.
    ///
    /// * `n` — number of data boxes,
    /// * `avg_extents` — per-dimension average box extents (unit space);
    ///   the dimension count is taken from its length,
    /// * `query` — per-dimension query extents (same length).
    ///
    /// Levels: `j = 1` are the leaves (`n / f^j` nodes each); the
    /// recursion `D_{j+1} = (1 + (D_j^{1/d} − 1) / f^{1/d})^d` tracks how
    /// density (expected boxes covering a point) evolves up the tree, and
    /// node extents at level `j` follow as `(D_j · f^j / n)^{1/d}`
    /// (isotropic approximation). The root always costs one access.
    pub fn estimate(&self, n: usize, avg_extents: &[f64], query: &[f64]) -> f64 {
        assert_eq!(avg_extents.len(), query.len(), "dimension mismatch");
        let d = avg_extents.len() as f64;
        assert!(d >= 1.0);
        let f = self.fanout;
        assert!(f > 1.0, "fanout must exceed 1");
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;

        // Data density: expected number of boxes covering a random point.
        let mut density: f64 = nf * avg_extents.iter().product::<f64>();
        density = density.max(1e-12);

        let mut cost = 1.0; // the root
        let mut level = 1u32;
        loop {
            let nodes = nf / f.powi(level as i32);
            if nodes <= 1.0 {
                break;
            }
            // Density of level-`level` node regions.
            density = (1.0 + (density.powf(1.0 / d) - 1.0).max(0.0) / f.powf(1.0 / d)).powf(d);
            let side = (density * f.powi(level as i32) / nf).powf(1.0 / d).min(1.0);
            let mut touch = 1.0;
            for &q in query {
                touch *= (side + q).min(1.0);
            }
            cost += nodes * touch;
            level += 1;
            if level > 64 {
                break;
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: [f64; 3] = [0.01, 0.01, 0.001];

    #[test]
    fn empty_dataset_costs_nothing() {
        let m = RTreeCostModel::default();
        assert_eq!(m.estimate(0, &[0.01; 3], &Q), 0.0);
    }

    #[test]
    fn tiny_dataset_costs_one_root_access() {
        let m = RTreeCostModel::default();
        let c = m.estimate(10, &[0.01; 3], &Q);
        assert!((c - 1.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn cost_grows_with_cardinality() {
        let m = RTreeCostModel::default();
        let c1 = m.estimate(10_000, &[0.005; 3], &Q);
        let c2 = m.estimate(100_000, &[0.005; 3], &Q);
        assert!(c2 > c1, "{c2} ≤ {c1}");
        assert!(c1 >= 1.0);
    }

    #[test]
    fn cost_grows_with_box_extents() {
        // Bigger data boxes (more empty space) → more node overlap →
        // higher cost. This is the lever splitting pulls.
        let m = RTreeCostModel::default();
        let tight = m.estimate(50_000, &[0.004, 0.004, 0.01], &Q);
        let loose = m.estimate(50_000, &[0.05, 0.05, 0.1], &Q);
        assert!(loose > tight * 1.5, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn models_the_split_tradeoff() {
        // Splitting halves temporal extents (and shrinks spatial ones)
        // but increases the count; for small queries the model must show
        // a net win, mirroring fig. 15's PPR curve.
        let m = RTreeCostModel::default();
        let unsplit = m.estimate(50_000, &[0.03, 0.03, 0.05], &Q);
        let split = m.estimate(100_000, &[0.012, 0.012, 0.025], &Q);
        assert!(split < unsplit, "split {split} vs unsplit {unsplit}");
    }

    #[test]
    fn two_dimensional_mode_works() {
        // The PPR-Tree cost is modeled as an ephemeral 2D R-Tree over the
        // alive records.
        let m = RTreeCostModel::default();
        let c = m.estimate(2500, &[0.006, 0.006], &[0.01, 0.01]);
        assert!((1.0..2500.0).contains(&c));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_dimension_mismatch() {
        RTreeCostModel::default().estimate(10, &[0.1; 3], &[0.1; 2]);
    }
}
