//! Half-open discrete time intervals.

use crate::Time;

/// A half-open interval `[start, end)` over discrete time.
///
/// Every spatiotemporal record carries a *lifetime* interval created by the
/// time instants when the record was inserted and (artificially or really)
/// deleted. `end == Time::MAX` conventionally means "still alive" inside
/// the partially persistent structures; finished datasets always use finite
/// ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeInterval {
    /// Inclusive start instant.
    pub start: Time,
    /// Exclusive end instant. Must satisfy `end >= start`.
    pub end: Time,
}

impl TimeInterval {
    /// Sentinel end meaning "not yet deleted".
    pub const OPEN_END: Time = Time::MAX;

    /// Create `[start, end)`. Panics if `end < start`.
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        Self { start, end }
    }

    /// An interval that starts at `start` and has no recorded end.
    #[inline]
    pub fn open(start: Time) -> Self {
        Self {
            start,
            end: Self::OPEN_END,
        }
    }

    /// A degenerate single-instant interval `[t, t+1)`.
    #[inline]
    pub fn instant(t: Time) -> Self {
        Self {
            start: t,
            end: t + 1,
        }
    }

    /// Number of time instants covered. An empty interval has length 0.
    #[inline]
    pub fn len(&self) -> u64 {
        u64::from(self.end) - u64::from(self.start)
    }

    /// True if the interval covers no instants.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if the interval has no recorded end (record still alive).
    #[inline]
    pub fn is_open(&self) -> bool {
        self.end == Self::OPEN_END
    }

    /// True if instant `t` lies in `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// True if the two half-open intervals share at least one instant.
    /// An empty interval overlaps nothing.
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Intersection of the two intervals, or `None` when disjoint.
    #[inline]
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(TimeInterval { start, end })
    }

    /// Smallest interval covering both operands (the gap between them is
    /// included).
    #[inline]
    pub fn cover(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl std::fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_open() {
            write!(f, "[{}, *)", self.start)
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_empty() {
        assert_eq!(TimeInterval::new(3, 3).len(), 0);
        assert!(TimeInterval::new(3, 3).is_empty());
        assert_eq!(TimeInterval::new(3, 7).len(), 4);
        assert_eq!(TimeInterval::instant(5).len(), 1);
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn new_rejects_reversed() {
        let _ = TimeInterval::new(5, 4);
    }

    #[test]
    fn contains_is_half_open() {
        let iv = TimeInterval::new(2, 5);
        assert!(!iv.contains(1));
        assert!(iv.contains(2));
        assert!(iv.contains(4));
        assert!(!iv.contains(5));
    }

    #[test]
    fn open_interval_contains_far_future() {
        let iv = TimeInterval::open(10);
        assert!(iv.is_open());
        assert!(iv.contains(10));
        assert!(iv.contains(1_000_000));
        assert!(!iv.contains(9));
    }

    #[test]
    fn overlap_cases() {
        let a = TimeInterval::new(0, 5);
        assert!(a.overlaps(&TimeInterval::new(4, 9)));
        assert!(!a.overlaps(&TimeInterval::new(5, 9))); // touching, half-open
        assert!(a.overlaps(&TimeInterval::new(0, 1)));
        assert!(!a.overlaps(&TimeInterval::new(7, 9)));
        // empty interval overlaps nothing
        assert!(!a.overlaps(&TimeInterval::new(2, 2)));
    }

    #[test]
    fn intersect_and_cover() {
        let a = TimeInterval::new(0, 5);
        let b = TimeInterval::new(3, 9);
        assert_eq!(a.intersect(&b), Some(TimeInterval::new(3, 5)));
        assert_eq!(a.intersect(&TimeInterval::new(5, 9)), None);
        assert_eq!(a.cover(&b), TimeInterval::new(0, 9));
        assert_eq!(a.cover(&TimeInterval::new(7, 9)), TimeInterval::new(0, 9));
    }

    #[test]
    fn display() {
        assert_eq!(TimeInterval::new(1, 4).to_string(), "[1, 4)");
        assert_eq!(TimeInterval::open(2).to_string(), "[2, *)");
    }
}
