//! Axis-aligned 2D rectangles (spatial MBRs).

use crate::Point2;

/// An axis-aligned rectangle in 2D space: the spatial minimum bounding
/// region (MBR) of an object at one time instant, or of a set of objects.
///
/// Invariant: `lo.x <= hi.x && lo.y <= hi.y`. Degenerate (zero-extent)
/// rectangles are legal — a moving *point* has a degenerate MBR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect2 {
    pub lo: Point2,
    pub hi: Point2,
}

impl Rect2 {
    /// Create a rectangle from corner points. Panics when reversed.
    #[inline]
    pub fn new(lo: Point2, hi: Point2) -> Self {
        assert!(
            lo.x <= hi.x && lo.y <= hi.y,
            "reversed rectangle: {lo:?}..{hi:?}"
        );
        Self { lo, hi }
    }

    /// Create from raw bounds `(x_lo, y_lo, x_hi, y_hi)`.
    #[inline]
    pub fn from_bounds(x_lo: f64, y_lo: f64, x_hi: f64, y_hi: f64) -> Self {
        Self::new(Point2::new(x_lo, y_lo), Point2::new(x_hi, y_hi))
    }

    /// Rectangle from two arbitrary corner points (ordering them).
    #[inline]
    pub fn from_corners(a: Point2, b: Point2) -> Self {
        Self {
            lo: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Degenerate rectangle containing exactly one point.
    #[inline]
    pub fn point(p: Point2) -> Self {
        Self { lo: p, hi: p }
    }

    /// Rectangle centered at `c` with full extents `(w, h)`.
    #[inline]
    pub fn centered(c: Point2, w: f64, h: f64) -> Self {
        Self::new(
            Point2::new(c.x - w / 2.0, c.y - h / 2.0),
            Point2::new(c.x + w / 2.0, c.y + h / 2.0),
        )
    }

    /// The unit square `[0,1]²`.
    pub const UNIT: Rect2 = Rect2 {
        lo: Point2::ORIGIN,
        hi: Point2::new(1.0, 1.0),
    };

    /// An "empty" rectangle that acts as the identity of [`Rect2::union`]:
    /// `EMPTY.union(r) == r`. Its `area` is 0 and it intersects nothing.
    pub const EMPTY: Rect2 = Rect2 {
        lo: Point2::new(f64::INFINITY, f64::INFINITY),
        hi: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// True for the union-identity rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Extent along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Extent along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area. Zero for degenerate and empty rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter (the "margin" criterion used by the R\*-Tree split).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new((self.lo.x + self.hi.x) / 2.0, (self.lo.y + self.hi.y) / 2.0)
    }

    /// True if `p` lies inside (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point2) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// True if `other` lies fully inside `self` (boundary inclusive).
    #[inline]
    pub fn contains_rect(&self, other: &Rect2) -> bool {
        if other.is_empty() {
            return true;
        }
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && other.hi.x <= self.hi.x
            && other.hi.y <= self.hi.y
    }

    /// True if the rectangles share at least a boundary point.
    ///
    /// Topological *intersect* as used by the paper's queries ("find all
    /// objects that appear in area S"): closed-rectangle intersection.
    #[inline]
    pub fn intersects(&self, other: &Rect2) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect2) -> Rect2 {
        Rect2 {
            lo: Point2::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point2::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Grow `self` in place to cover `other`. Equivalent to
    /// `*self = self.union(other)` but avoids the copy in hot loops.
    #[inline]
    pub fn expand(&mut self, other: &Rect2) {
        self.lo.x = self.lo.x.min(other.lo.x);
        self.lo.y = self.lo.y.min(other.lo.y);
        self.hi.x = self.hi.x.max(other.hi.x);
        self.hi.y = self.hi.y.max(other.hi.y);
    }

    /// Intersection, or `None` when the rectangles are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect2) -> Option<Rect2> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect2 {
            lo: Point2::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point2::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        })
    }

    /// Area of the overlap region (0 when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect2) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Increase in area caused by growing `self` to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect2) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared Euclidean distance from `p` to the closest point of the
    /// rectangle (0 when `p` is inside). The MINDIST bound of
    /// best-first nearest-neighbor search.
    #[inline]
    pub fn min_dist2(&self, p: &Point2) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect2 {
        Rect2::from_bounds(x0, y0, x1, y1)
    }

    #[test]
    fn area_margin_center() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert!(approx_eq(a.area(), 6.0));
        assert!(approx_eq(a.margin(), 5.0));
        assert_eq!(a.center(), Point2::new(1.0, 1.5));
    }

    #[test]
    fn degenerate_rect_is_legal() {
        let p = Rect2::point(Point2::new(0.5, 0.5));
        assert_eq!(p.area(), 0.0);
        assert!(!p.is_empty());
        assert!(p.intersects(&p));
    }

    #[test]
    #[should_panic(expected = "reversed rectangle")]
    fn new_rejects_reversed() {
        let _ = r(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn empty_is_union_identity() {
        let a = r(0.1, 0.2, 0.3, 0.4);
        assert_eq!(Rect2::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect2::EMPTY), a);
        assert_eq!(Rect2::EMPTY.area(), 0.0);
        assert!(!Rect2::EMPTY.intersects(&a));
        assert!(!a.intersects(&Rect2::EMPTY));
    }

    #[test]
    fn intersects_boundary_touch() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0); // shares an edge
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
        let c = r(1.1, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 1.0, 1.0);
        assert!(outer.contains_rect(&r(0.2, 0.2, 0.8, 0.8)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&r(0.5, 0.5, 1.5, 0.9)));
        assert!(outer.contains_rect(&Rect2::EMPTY));
        assert!(outer.contains_point(&Point2::new(1.0, 1.0)));
        assert!(!outer.contains_point(&Point2::new(1.0001, 1.0)));
    }

    #[test]
    fn intersection_and_enlargement() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert!(approx_eq(a.overlap_area(&b), 1.0));
        assert!(approx_eq(a.enlargement(&b), 9.0 - 4.0));
        assert!(approx_eq(a.enlargement(&r(0.5, 0.5, 1.0, 1.0)), 0.0));
    }

    #[test]
    fn expand_matches_union() {
        let mut a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(0.5, -1.0, 2.0, 0.5);
        let u = a.union(&b);
        a.expand(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn min_dist2_cases() {
        let r = Rect2::from_bounds(0.2, 0.2, 0.4, 0.4);
        // inside → 0
        assert_eq!(r.min_dist2(&Point2::new(0.3, 0.3)), 0.0);
        // boundary → 0
        assert_eq!(r.min_dist2(&Point2::new(0.2, 0.3)), 0.0);
        // straight left: distance 0.1
        assert!(approx_eq(r.min_dist2(&Point2::new(0.1, 0.3)), 0.01));
        // diagonal corner: (0.1, 0.1) from corner (0.2, 0.2)
        assert!(approx_eq(r.min_dist2(&Point2::new(0.1, 0.1)), 0.02));
        // empty rect is infinitely far
        assert_eq!(
            Rect2::EMPTY.min_dist2(&Point2::new(0.5, 0.5)),
            f64::INFINITY
        );
    }

    fn arb_rect() -> impl Strategy<Value = Rect2> {
        (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64)
            .prop_map(|(a, b, c, d)| Rect2::from_corners(Point2::new(a, b), Point2::new(c, d)))
    }

    proptest! {
        #[test]
        fn union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn union_is_commutative_and_idempotent(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.union(&a), a);
        }

        #[test]
        fn union_area_superadditive_when_disjoint(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.area() + 1e-12 >= a.area().max(b.area()));
        }

        #[test]
        fn intersection_symmetric_and_contained(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
            }
        }

        #[test]
        fn overlap_area_bounded(a in arb_rect(), b in arb_rect()) {
            let o = a.overlap_area(&b);
            prop_assert!(o >= 0.0);
            prop_assert!(o <= a.area() + 1e-12);
            prop_assert!(o <= b.area() + 1e-12);
        }

        #[test]
        fn min_dist2_lower_bounds_member_distances(a in arb_rect(), px in 0.0..1.0f64, py in 0.0..1.0f64) {
            // The bound must never exceed the distance to the center (a
            // point inside the rectangle).
            let p = Point2::new(px, py);
            let c = a.center();
            let d2 = (c.x - px).powi(2) + (c.y - py).powi(2);
            prop_assert!(a.min_dist2(&p) <= d2 + 1e-12);
        }

        #[test]
        fn intersects_iff_intersection_some_or_touching(a in arb_rect(), b in arb_rect()) {
            // intersects() is closed; intersection() returns Some for closed
            // intersection too, so the two must agree exactly.
            prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
        }
    }
}
