//! 2D points.

/// A point in the 2-dimensional space.
///
/// Coordinates are usually normalized to the unit square, but nothing in
/// this type enforces that; the dataset generators are responsible for
/// normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    /// Create a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Linear interpolation between `self` (at `f = 0`) and `other`
    /// (at `f = 1`). `f` outside `[0, 1]` extrapolates.
    #[inline]
    pub fn lerp(&self, other: &Point2, f: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * f,
            self.y + (other.y - self.y) * f,
        )
    }

    /// Clamp both coordinates to the unit square.
    #[inline]
    pub fn clamp_unit(&self) -> Point2 {
        Point2::new(self.x.clamp(0.0, 1.0), self.y.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!(approx_eq(a.distance(&b), 5.0));
        assert!(approx_eq(b.distance(&a), 5.0));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point2::new(0.25, 0.75);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 1.0);
        let b = Point2::new(1.0, 3.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!(approx_eq(mid.x, 0.5));
        assert!(approx_eq(mid.y, 2.0));
    }

    #[test]
    fn lerp_extrapolates() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 1.0);
        let out = a.lerp(&b, 2.0);
        assert!(approx_eq(out.x, 2.0));
        assert!(approx_eq(out.y, 2.0));
    }

    #[test]
    fn clamp_unit_clamps_both_axes() {
        let p = Point2::new(-0.5, 1.5).clamp_unit();
        assert_eq!(p, Point2::new(0.0, 1.0));
        let q = Point2::new(0.3, 0.7).clamp_unit();
        assert_eq!(q, Point2::new(0.3, 0.7));
    }
}
