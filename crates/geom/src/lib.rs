//! Geometry primitives for spatiotemporal indexing.
//!
//! This crate provides the small set of geometric types the rest of the
//! workspace is built on:
//!
//! * [`Point2`] — a point in the 2-dimensional unit space,
//! * [`Rect2`] — an axis-aligned 2D rectangle (spatial MBR),
//! * [`Rect3`] — an axis-aligned box in (x, y, t) space, used by the 3D
//!   R\*-Tree baseline,
//! * [`TimeInterval`] — a half-open discrete time interval `[start, end)`,
//!   the "lifetime" attached to every spatiotemporal record,
//! * [`StBox`] — a spatial rectangle paired with a lifetime, the space-time
//!   box produced by the splitting algorithms and stored in the
//!   partially persistent R-Tree.
//!
//! All coordinates are `f64` and are normally normalized to the unit square
//! `[0, 1]²`; time is a discrete `u32` tick counter (the paper assumes
//! "time is discrete, described by a succession of increasing integers").
//!
//! Volume conventions follow the paper: the *volume* of a space-time box is
//! its spatial area multiplied by the number of time instants it spans, so
//! splitting a moving object into tighter boxes strictly reduces total
//! volume ("empty space").

pub mod hilbert;
pub mod interval;
pub mod point;
pub mod rect2;
pub mod rect3;
pub mod stbox;

pub use hilbert::{hilbert2, hilbert3};
pub use interval::TimeInterval;
pub use point::Point2;
pub use rect2::Rect2;
pub use rect3::Rect3;
pub use stbox::StBox;

/// Discrete time instant. The spatiotemporal evolution runs over
/// `0..=Time::MAX` ticks; the paper's experiments use `0..1000`.
pub type Time = u32;

/// Compare two `f64` values for approximate equality with an absolute
/// tolerance suitable for unit-square coordinates.
///
/// Used by tests and by geometric degeneracy checks; never use exact
/// equality on computed areas/volumes.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(!approx_eq(0.1, 0.2));
        assert!(approx_eq(1e12 + 0.5, 1e12));
    }
}
