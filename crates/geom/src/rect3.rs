//! Axis-aligned boxes in (x, y, t) space.

use crate::{Rect2, StBox};

/// An axis-aligned box in 3-dimensional (x, y, t) space.
///
/// This is the record format of the 3D R\*-Tree baseline: the time axis is
/// treated as just another spatial dimension. Following the paper (§V), the
/// time extent of a dataset is scaled down to the unit range before
/// insertion so that time does not dominate the split criteria; the
/// conversion from [`StBox`] is performed by [`Rect3::from_stbox_scaled`].
///
/// Invariant: `lo[d] <= hi[d]` on every axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect3 {
    /// Lower corner `(x, y, t)`.
    pub lo: [f64; 3],
    /// Upper corner `(x, y, t)`.
    pub hi: [f64; 3],
}

impl Rect3 {
    /// Create a box from corners. Panics when reversed on any axis.
    #[inline]
    pub fn new(lo: [f64; 3], hi: [f64; 3]) -> Self {
        assert!(
            lo[0] <= hi[0] && lo[1] <= hi[1] && lo[2] <= hi[2],
            "reversed box: {lo:?}..{hi:?}"
        );
        Self { lo, hi }
    }

    /// Identity of [`Rect3::union`]; volume 0, intersects nothing.
    pub const EMPTY: Rect3 = Rect3 {
        lo: [f64::INFINITY; 3],
        hi: [f64::NEG_INFINITY; 3],
    };

    /// True for the union-identity box.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo[0] > self.hi[0] || self.lo[1] > self.hi[1] || self.lo[2] > self.hi[2]
    }

    /// The 3D query box for a topological query: spatial window plus the
    /// *closed* time slab `[start, end − 1] / time_scale`. Records stored
    /// via the matching record conversion intersect this box exactly when
    /// their half-open lifetime overlaps `range` (instants are integers).
    ///
    /// # Panics
    /// On an empty query range.
    #[inline]
    pub fn from_query(area: &Rect2, range: &crate::TimeInterval, time_scale: f64) -> Self {
        assert!(!range.is_empty(), "empty query range");
        Rect3::new(
            [area.lo.x, area.lo.y, f64::from(range.start) / time_scale],
            [area.hi.x, area.hi.y, f64::from(range.end - 1) / time_scale],
        )
    }

    /// Convert a space-time box into a 3D box, scaling its time interval by
    /// `1.0 / time_scale` (pass the dataset's total time extent so time
    /// lands in the unit range, as the paper does for the R\*-Tree).
    #[inline]
    pub fn from_stbox_scaled(b: &StBox, time_scale: f64) -> Self {
        debug_assert!(time_scale > 0.0);
        Rect3::new(
            [
                b.rect.lo.x,
                b.rect.lo.y,
                f64::from(b.lifetime.start) / time_scale,
            ],
            [
                b.rect.hi.x,
                b.rect.hi.y,
                f64::from(b.lifetime.end) / time_scale,
            ],
        )
    }

    /// Extent along axis `d` (0 = x, 1 = y, 2 = t).
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi[d] - self.lo[d]
    }

    /// Volume (product of the three extents); 0 when empty.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.extent(0) * self.extent(1) * self.extent(2)
        }
    }

    /// Surface-derived "margin": sum of the three extents. The R\*-Tree
    /// split uses this as its perimeter criterion generalized to 3D.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.extent(0) + self.extent(1) + self.extent(2)
        }
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> [f64; 3] {
        [
            (self.lo[0] + self.hi[0]) / 2.0,
            (self.lo[1] + self.hi[1]) / 2.0,
            (self.lo[2] + self.hi[2]) / 2.0,
        ]
    }

    /// Closed-box intersection test.
    #[inline]
    pub fn intersects(&self, other: &Rect3) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        for d in 0..3 {
            if self.lo[d] > other.hi[d] || other.lo[d] > self.hi[d] {
                return false;
            }
        }
        true
    }

    /// True if `other` lies fully inside `self`.
    #[inline]
    pub fn contains(&self, other: &Rect3) -> bool {
        if other.is_empty() {
            return true;
        }
        for d in 0..3 {
            if self.lo[d] > other.lo[d] || self.hi[d] < other.hi[d] {
                return false;
            }
        }
        true
    }

    /// Smallest box covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect3) -> Rect3 {
        Rect3 {
            lo: [
                self.lo[0].min(other.lo[0]),
                self.lo[1].min(other.lo[1]),
                self.lo[2].min(other.lo[2]),
            ],
            hi: [
                self.hi[0].max(other.hi[0]),
                self.hi[1].max(other.hi[1]),
                self.hi[2].max(other.hi[2]),
            ],
        }
    }

    /// Grow `self` in place to cover `other`.
    #[inline]
    pub fn expand(&mut self, other: &Rect3) {
        for d in 0..3 {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Volume of the overlap region (0 when disjoint).
    #[inline]
    pub fn overlap_volume(&self, other: &Rect3) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mut v = 1.0;
        for d in 0..3 {
            let lo = self.lo[d].max(other.lo[d]);
            let hi = self.hi[d].min(other.hi[d]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Increase in volume caused by growing `self` to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect3) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Squared Euclidean distance from `p` to the closest point of the
    /// box (0 when `p` is inside). The MINDIST bound of best-first
    /// nearest-neighbor search.
    #[inline]
    pub fn min_dist2(&self, p: &[f64; 3]) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let mut d2 = 0.0;
        for (d, &pd) in p.iter().enumerate() {
            let delta = (self.lo[d] - pd).max(0.0).max(pd - self.hi[d]);
            d2 += delta * delta;
        }
        d2
    }

    /// The spatial (x, y) footprint.
    #[inline]
    pub fn footprint(&self) -> Rect2 {
        Rect2::from_bounds(self.lo[0], self.lo[1], self.hi[0], self.hi[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, Rect2, StBox, TimeInterval};
    use proptest::prelude::*;

    fn b(lo: [f64; 3], hi: [f64; 3]) -> Rect3 {
        Rect3::new(lo, hi)
    }

    #[test]
    fn volume_margin() {
        let a = b([0.0, 0.0, 0.0], [2.0, 3.0, 4.0]);
        assert!(approx_eq(a.volume(), 24.0));
        assert!(approx_eq(a.margin(), 9.0));
        assert_eq!(a.center(), [1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "reversed box")]
    fn new_rejects_reversed() {
        let _ = b([0.0, 0.0, 1.0], [1.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_behaves_as_identity() {
        let a = b([0.0; 3], [1.0; 3]);
        assert_eq!(Rect3::EMPTY.union(&a), a);
        assert_eq!(Rect3::EMPTY.volume(), 0.0);
        assert!(!Rect3::EMPTY.intersects(&a));
        assert!(a.contains(&Rect3::EMPTY));
    }

    #[test]
    fn from_stbox_scales_time() {
        let sb = StBox::new(
            Rect2::from_bounds(0.1, 0.2, 0.3, 0.4),
            TimeInterval::new(100, 300),
        );
        let r3 = Rect3::from_stbox_scaled(&sb, 1000.0);
        assert!(approx_eq(r3.lo[2], 0.1));
        assert!(approx_eq(r3.hi[2], 0.3));
        assert!(approx_eq(r3.lo[0], 0.1));
        assert!(approx_eq(r3.volume(), 0.2 * 0.2 * 0.2));
    }

    #[test]
    fn overlap_volume_cases() {
        let a = b([0.0; 3], [2.0; 3]);
        let c = b([1.0; 3], [3.0; 3]);
        assert!(approx_eq(a.overlap_volume(&c), 1.0));
        assert_eq!(a.overlap_volume(&b([2.0; 3], [3.0; 3])), 0.0); // touching
        assert!(a.intersects(&b([2.0; 3], [3.0; 3]))); // but closed-intersecting
    }

    #[test]
    fn min_dist2_cases() {
        let r = b([0.2, 0.2, 0.2], [0.4, 0.4, 0.4]);
        assert_eq!(r.min_dist2(&[0.3, 0.3, 0.3]), 0.0);
        assert!(approx_eq(r.min_dist2(&[0.1, 0.3, 0.3]), 0.01));
        assert!(approx_eq(r.min_dist2(&[0.1, 0.1, 0.1]), 0.03));
        assert_eq!(Rect3::EMPTY.min_dist2(&[0.5; 3]), f64::INFINITY);
    }

    fn arb_box() -> impl Strategy<Value = Rect3> {
        prop::array::uniform3(0.0..1.0f64).prop_flat_map(|lo| {
            prop::array::uniform3(0.0..1.0f64)
                .prop_map(move |d| Rect3::new(lo, [lo[0] + d[0], lo[1] + d[1], lo[2] + d[2]]))
        })
    }

    proptest! {
        #[test]
        fn union_contains_both(a in arb_box(), c in arb_box()) {
            let u = a.union(&c);
            prop_assert!(u.contains(&a));
            prop_assert!(u.contains(&c));
        }

        #[test]
        fn enlargement_nonnegative(a in arb_box(), c in arb_box()) {
            prop_assert!(a.enlargement(&c) >= -1e-12);
        }

        #[test]
        fn overlap_symmetric_and_bounded(a in arb_box(), c in arb_box()) {
            let o = a.overlap_volume(&c);
            prop_assert!(approx_eq(o, c.overlap_volume(&a)));
            prop_assert!(o <= a.volume() + 1e-12);
            prop_assert!(o <= c.volume() + 1e-12);
        }

        #[test]
        fn expand_matches_union(a in arb_box(), c in arb_box()) {
            let mut m = a;
            m.expand(&c);
            prop_assert_eq!(m, a.union(&c));
        }
    }
}
