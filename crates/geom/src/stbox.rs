//! Space-time boxes: a spatial MBR paired with a lifetime interval.

use crate::{Rect2, TimeInterval};

/// A space-time box: the unit of data every index in this workspace stores.
///
/// A spatiotemporal object with lifetime `[t_s, t_e)` is represented by one
/// or more space-time boxes produced by the splitting algorithms; each box
/// covers a consecutive sub-interval of the lifetime with the spatial MBR
/// of the object over that sub-interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StBox {
    /// Spatial MBR over the box's lifetime.
    pub rect: Rect2,
    /// Half-open lifetime `[start, end)`.
    pub lifetime: TimeInterval,
}

impl StBox {
    /// Pair a spatial rectangle with a lifetime.
    #[inline]
    pub fn new(rect: Rect2, lifetime: TimeInterval) -> Self {
        Self { rect, lifetime }
    }

    /// The paper's volume measure: spatial area × number of instants
    /// covered. Minimizing the summed volume of all boxes is exactly the
    /// objective of the splitting algorithms.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.rect.area() * self.lifetime.len() as f64
    }

    /// True if this box is part of the answer to the topological query
    /// "objects intersecting `area` during `range`".
    #[inline]
    pub fn matches(&self, area: &Rect2, range: &TimeInterval) -> bool {
        self.lifetime.overlaps(range) && self.rect.intersects(area)
    }

    /// Smallest space-time box covering both operands.
    #[inline]
    pub fn cover(&self, other: &StBox) -> StBox {
        StBox {
            rect: self.rect.union(&other.rect),
            lifetime: self.lifetime.cover(&other.lifetime),
        }
    }
}

impl std::fmt::Display for StBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.4},{:.4}]x[{:.4},{:.4}]@{}",
            self.rect.lo.x, self.rect.hi.x, self.rect.lo.y, self.rect.hi.y, self.lifetime
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, Point2};

    fn sb(x0: f64, y0: f64, x1: f64, y1: f64, t0: u32, t1: u32) -> StBox {
        StBox::new(
            Rect2::from_bounds(x0, y0, x1, y1),
            TimeInterval::new(t0, t1),
        )
    }

    #[test]
    fn volume_is_area_times_duration() {
        let b = sb(0.0, 0.0, 0.5, 0.2, 10, 20);
        assert!(approx_eq(b.volume(), 0.5 * 0.2 * 10.0));
        // a single-instant box still has nonzero volume weight 1
        assert!(approx_eq(sb(0.0, 0.0, 1.0, 1.0, 5, 6).volume(), 1.0));
        // an empty lifetime yields zero volume
        assert_eq!(sb(0.0, 0.0, 1.0, 1.0, 5, 5).volume(), 0.0);
    }

    #[test]
    fn matches_needs_both_time_and_space() {
        let b = sb(0.0, 0.0, 0.5, 0.5, 10, 20);
        let q = Rect2::from_bounds(0.4, 0.4, 0.6, 0.6);
        assert!(b.matches(&q, &TimeInterval::instant(15)));
        assert!(!b.matches(&q, &TimeInterval::instant(20))); // after lifetime
        assert!(!b.matches(
            &Rect2::from_bounds(0.6, 0.6, 0.7, 0.7),
            &TimeInterval::instant(15)
        ));
    }

    #[test]
    fn cover_covers_both() {
        let a = sb(0.0, 0.0, 0.2, 0.2, 0, 5);
        let b = sb(0.5, 0.5, 0.9, 0.9, 10, 12);
        let c = a.cover(&b);
        assert_eq!(c.lifetime, TimeInterval::new(0, 12));
        assert!(c.rect.contains_rect(&a.rect));
        assert!(c.rect.contains_rect(&b.rect));
        assert!(c.rect.contains_point(&Point2::new(0.9, 0.9)));
    }

    #[test]
    fn display_is_compact() {
        let b = sb(0.0, 0.0, 0.5, 0.25, 1, 4);
        assert_eq!(b.to_string(), "[0.0000,0.5000]x[0.0000,0.2500]@[1, 4)");
    }
}
