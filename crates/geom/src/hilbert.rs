//! Hilbert space-filling curves in 2 and 3 dimensions.
//!
//! Used by the Hilbert-packed R-Tree variant (Kamel & Faloutsos, VLDB
//! 1994 — reference \[9\] of the paper): sorting rectangle centers by their
//! Hilbert value clusters spatially close records into the same leaf.
//!
//! The implementation is the classic Butz/Lawder iterative bit
//! manipulation (transpose form), exact for coordinates quantized to
//! `ORDER` bits per dimension.

/// Bits of precision per dimension.
pub const ORDER: u32 = 16;

/// Quantize a unit-space coordinate to the Hilbert grid.
#[inline]
fn quantize(v: f64) -> u32 {
    let max = (1u32 << ORDER) - 1;
    ((v.clamp(0.0, 1.0) * f64::from(max)).round()) as u32
}

/// Hilbert index of a point in the unit square. Higher `ORDER` bits per
/// axis; the result occupies `2 · ORDER` bits.
///
/// ```
/// use sti_geom::hilbert::hilbert2;
/// let near = (hilbert2(0.5, 0.5) as i64 - hilbert2(0.5005, 0.5) as i64).abs();
/// let far = (hilbert2(0.5, 0.5) as i64 - hilbert2(0.95, 0.1) as i64).abs();
/// assert!(near < far, "nearby points sit close on the curve");
/// ```
pub fn hilbert2(x: f64, y: f64) -> u64 {
    hilbert_transpose(&mut [quantize(x), quantize(y)])
}

/// Hilbert index of a point in the unit cube (`3 · ORDER` bits).
pub fn hilbert3(x: f64, y: f64, t: f64) -> u64 {
    hilbert_transpose(&mut [quantize(x), quantize(y), quantize(t)])
}

/// Convert axis coordinates to a Hilbert index (in place: `coords`
/// becomes the transpose form first). Generic over dimension count.
fn hilbert_transpose<const D: usize>(coords: &mut [u32; D]) -> u64 {
    // Inverse undo excess work (Skilling's algorithm, AIP 2004).
    let m = 1u32 << (ORDER - 1);

    // Gray encode.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if coords[i] & q != 0 {
                coords[0] ^= p; // invert
            } else {
                let t = (coords[0] ^ coords[i]) & p;
                coords[0] ^= t;
                coords[i] ^= t;
            }
        }
        q >>= 1;
    }
    for i in 1..D {
        coords[i] ^= coords[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if coords[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for c in coords.iter_mut() {
        *c ^= t;
    }

    // Interleave the transpose form into a single index, most significant
    // bit of axis 0 first.
    let mut index: u64 = 0;
    for bit in (0..ORDER).rev() {
        for c in coords.iter() {
            index = (index << 1) | u64::from((c >> bit) & 1);
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_distinct_and_deterministic() {
        let a = hilbert2(0.0, 0.0);
        let b = hilbert2(1.0, 0.0);
        let c = hilbert2(0.0, 1.0);
        let d = hilbert2(1.0, 1.0);
        let mut all = [a, b, c, d];
        all.sort_unstable();
        assert!(
            all.windows(2).all(|w| w[0] < w[1]),
            "corner collision: {all:?}"
        );
        assert_eq!(hilbert2(0.5, 0.5), hilbert2(0.5, 0.5));
    }

    #[test]
    fn origin_is_zero() {
        assert_eq!(hilbert2(0.0, 0.0), 0);
        assert_eq!(hilbert3(0.0, 0.0, 0.0), 0);
    }

    #[test]
    fn locality_nearby_points_have_nearby_indexes() {
        // The defining property (statistically): small moves in space
        // should usually cause small moves on the curve. Check that the
        // average index jump for eps-steps is far below that of random
        // pairs.
        let eps = 1.0 / 1024.0;
        let mut near_sum: f64 = 0.0;
        let mut far_sum: f64 = 0.0;
        let mut count = 0;
        for i in 0..32 {
            for j in 0..32 {
                let x = i as f64 / 32.0;
                let y = j as f64 / 32.0;
                let h = hilbert2(x, y) as f64;
                near_sum += (hilbert2(x + eps, y) as f64 - h).abs();
                let (rx, ry) = ((i as f64 * 7.7).fract(), (j as f64 * 3.3).fract());
                far_sum += (hilbert2(rx, ry) as f64 - h).abs();
                count += 1;
            }
        }
        let near = near_sum / f64::from(count);
        let far = far_sum / f64::from(count);
        assert!(near * 50.0 < far, "no locality: near {near} vs far {far}");
    }

    #[test]
    fn curve_is_injective_on_a_grid() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            for j in 0..64 {
                let h = hilbert2(i as f64 / 63.0, j as f64 / 63.0);
                assert!(seen.insert(h), "collision at ({i}, {j})");
            }
        }
    }

    #[test]
    fn three_dimensional_basics() {
        let a = hilbert3(0.1, 0.2, 0.3);
        let b = hilbert3(0.1, 0.2, 0.30001);
        let c = hilbert3(0.9, 0.9, 0.9);
        assert_ne!(a, c);
        // tiny perturbation: indexes usually close; just require distinct
        // handling didn't blow up and ordering is stable
        assert_eq!(b, hilbert3(0.1, 0.2, 0.30001));
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        assert_eq!(hilbert2(-5.0, -5.0), hilbert2(0.0, 0.0));
        assert_eq!(hilbert2(7.0, 7.0), hilbert2(1.0, 1.0));
    }
}
