//! Offline stand-in for the `rand` crate.
//!
//! The workspace pinned `rand = "0.10"`, a version that does not resolve
//! on a clean registry — and CI registries have proven unreliable — so
//! this path crate implements exactly the API surface the workspace
//! uses, with no dependencies:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion,
//! * [`RngExt`] — `random`, `random_range`, `random_bool`.
//!
//! The stream is fixed forever: datasets generated from a seed are
//! byte-identical across runs, platforms, and future toolchains (the
//! real `rand` explicitly does not promise value stability across minor
//! versions, which this workspace's reproducibility tests rely on).

/// A source of random 64-bit words. The trait every generator
/// implements; [`RngExt`] builds typed sampling on top of it.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Construct from a `u64`, expanded to a full seed with SplitMix64
    /// (the expansion recommended by the xoshiro authors).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Typed sampling helpers, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` (for floats: uniform in `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`, which must be nonempty.
    ///
    /// # Panics
    /// On an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Types with a canonical "standard" distribution (`RngExt::random`).
pub trait StandardUniform {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) on the f64 grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. `lo < hi` checked by the caller.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. `lo <= hi` checked by the caller.
    fn sample_closed<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
            fn sample_closed<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64 + 1) as $t)
            }
        }
    )*};
}
uniform_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
             i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as StandardUniform>::sample(rng);
                // May round up to `hi` for extreme spans; clamp below the
                // bound so the half-open contract holds.
                let v = lo + u * (hi - lo);
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
            fn sample_closed<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as StandardUniform>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(rng, lo, hi)
    }
}

/// Uniform draw from `[0, span)` (`span == 0` means the full 2^64
/// domain), bias-free via Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Widening multiply maps next_u64 into [0, span); reject the small
    // biased region so every value is exactly equally likely.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded via
    /// SplitMix64. Fast, 256-bit state, passes BigCrush; value-stable
    /// forever by construction.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of the generator;
            // nudge it (cannot happen via seed_from_u64's SplitMix64).
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed a value");
        for _ in 0..500 {
            let v = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.random_range(5..5);
    }
}
