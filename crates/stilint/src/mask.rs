//! Lexical masking: blank out comments, string/char literals, and
//! lifetimes so the rule matchers only ever see executable tokens.
//!
//! The scanner is deliberately *not* a Rust parser — the workspace is
//! offline, so `syn` is unavailable — but a small character-level state
//! machine is enough to never report a token that only occurs inside a
//! comment, a doc example, or a string literal.

/// A line comment captured during masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text, `//` prefix included.
    pub text: String,
    /// True when executable code precedes the comment on its line
    /// (a *trailing* comment).
    pub trailing: bool,
}

/// Result of masking one source file.
#[derive(Debug)]
pub struct Masked {
    /// The source with every comment/string/char character replaced by a
    /// space (newlines preserved), so offsets in `lines()` line up with
    /// the original file's lines.
    pub text: String,
    /// Every `//` comment, for `stilint::allow` directive parsing.
    pub comments: Vec<Comment>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Detect a raw-string opener (`r"`, `r#"`, `br##"`, …) at position `i`.
/// Returns the number of `#`s and the index of the opening quote.
fn raw_string_open(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j))
    } else {
        None
    }
}

/// True when the `'` at `i` starts a char literal rather than a lifetime.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Mask `src`, blanking everything that is not executable code.
pub fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut state = State::Code;
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut current: Option<Comment> = None;

    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                if let Some(cm) = current.take() {
                    comments.push(cm);
                }
                state = State::Code;
            }
            out.push('\n');
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    current = Some(Comment {
                        line,
                        text: String::new(),
                        trailing: line_has_code,
                    });
                    // fall through: the comment chars are consumed by the
                    // LineComment arm below on the next iterations; mask
                    // the two slashes here.
                    if let Some(cm) = current.as_mut() {
                        cm.text.push_str("//");
                    }
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    out.push(' ');
                    line_has_code = true;
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && (i == 0 || !is_ident(chars[i - 1]))
                    && raw_string_open(&chars, i).is_some()
                {
                    if let Some((hashes, quote)) = raw_string_open(&chars, i) {
                        for _ in i..=quote {
                            out.push(' ');
                        }
                        line_has_code = true;
                        state = State::RawStr(hashes);
                        i = quote + 1;
                    }
                } else if c == 'b'
                    && chars.get(i + 1) == Some(&'"')
                    && (i == 0 || !is_ident(chars[i - 1]))
                {
                    out.push(' ');
                    out.push(' ');
                    line_has_code = true;
                    state = State::Str;
                    i += 2;
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        state = State::CharLit;
                        out.push(' ');
                        line_has_code = true;
                        i += 1;
                    } else {
                        // Lifetime: keep the tick and let the identifier
                        // pass through as code.
                        out.push('\'');
                        line_has_code = true;
                        i += 1;
                    }
                } else {
                    if !c.is_whitespace() {
                        line_has_code = true;
                    }
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                if let Some(cm) = current.as_mut() {
                    cm.text.push(c);
                }
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Code
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    out.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        if let Some(cm) = current.take() {
            comments.push(cm);
        }
    }
    Masked {
        text: out,
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let m = mask("let x = 1; // call .unwrap() here\n/// docs .expect(\nlet y = 2;\n");
        assert!(!m.text.contains("unwrap"));
        assert!(!m.text.contains("expect"));
        assert!(m.text.contains("let x = 1;"));
        assert!(m.text.contains("let y = 2;"));
        assert_eq!(m.comments.len(), 2);
        assert!(m.comments[0].trailing);
        assert!(!m.comments[1].trailing);
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask("a /* outer /* inner panic!() */ still */ b\n");
        assert!(!m.text.contains("panic"));
        assert!(m.text.contains('a'));
        assert!(m.text.contains('b'));
    }

    #[test]
    fn masks_strings_with_escapes() {
        let m = mask(r#"let s = "quote \" panic!() end"; done()"#);
        assert!(!m.text.contains("panic"));
        assert!(m.text.contains("done()"));
    }

    #[test]
    fn masks_raw_strings() {
        let m = mask("let s = r#\"panic!() \"# ; after()\n");
        assert!(!m.text.contains("panic"));
        assert!(m.text.contains("after()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let m = mask("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; g(x) }\n");
        assert!(m.text.contains("<'a>"));
        assert!(m.text.contains("g(x)"));
        // literal contents are blanked
        assert!(!m.text.contains("'x'"));
        // the masked quote must not open a string state that swallows code
        assert!(m.text.contains("let d ="));
    }

    #[test]
    fn newlines_keep_line_numbers_aligned() {
        let src = "a\n/* two\nlines */\nb\n";
        let m = mask(src);
        assert_eq!(m.text.matches('\n').count(), src.matches('\n').count());
        let lines: Vec<&str> = m.text.lines().collect();
        assert_eq!(lines[0].trim(), "a");
        assert_eq!(lines[3].trim(), "b");
    }

    #[test]
    fn comment_text_is_captured_for_directives() {
        let m = mask("x(); // stilint::allow(no_panic, \"why\")\n");
        assert_eq!(m.comments.len(), 1);
        assert!(m.comments[0].text.contains("stilint::allow(no_panic"));
    }
}
