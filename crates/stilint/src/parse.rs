//! Phase 1 of the workspace analysis: parse one masked source file into
//! a lightweight item model.
//!
//! The input is the output of [`crate::mask::mask`] (comments, strings,
//! and char literals blanked), so every brace is structural and every
//! token is executable code. A hand-rolled line/character scanner — not
//! a Rust parser; the workspace is offline and `syn` is unavailable —
//! extracts the facts the interprocedural rules need:
//!
//! * `fn` items with name, `impl` owner, visibility, receiver, body
//!   span, and whether a guard type is returned,
//! * call sites (free, `Path::`-qualified, and method calls with their
//!   receiver chain),
//! * guard-producing expressions (`.lock()`, `.read()`/`.write()` on a
//!   known lock field) with their lexical scope,
//! * `loop` headers and whether they carry a `// bounded:` marker,
//! * atomic operations with their `Ordering` arguments and whether a
//!   `// ordering:` justification comment is attached,
//! * direct backend-I/O marker lines,
//! * panic sources (`panic!` family, `unwrap`/`expect`, slice/array
//!   indexing).
//!
//! Everything here is an approximation with a deliberate bias: prefer
//! missing an edge (under-approximate the call graph) over inventing
//! one, so interprocedural findings stay actionable.

use crate::mask::Comment;

/// How a guard was produced, which decides which discipline clauses
/// apply to its scope (see the `lock_discipline` rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// A `Mutex` guard (`.lock()` or a fn returning `MutexGuard`).
    Mutex,
    /// An `RwLock` read guard.
    RwRead,
    /// An `RwLock` write guard.
    RwWrite,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`foo` in `foo(..)`, `bar` in `x.bar(..)`).
    pub name: String,
    /// `Q` in `Q::name(..)`, when path-qualified.
    pub qualifier: Option<String>,
    /// The dotted receiver chain of a method call (`self.store` in
    /// `self.store.read(..)`), empty when it could not be recovered.
    pub receiver: String,
    /// 1-based line of the call.
    pub line: usize,
    /// True for `.name(` method syntax.
    pub is_method: bool,
    /// `Some(var)` when the call's result is `let`-bound on this line.
    pub let_binding: Option<String>,
}

/// A panic source inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: usize,
    /// `panic!`, `.unwrap()`, `.expect`, or `indexing`.
    pub token: String,
    /// A short snippet naming the offending expression (for messages
    /// and stable baseline keys).
    pub what: String,
}

/// A guard-producing expression.
#[derive(Debug, Clone)]
pub struct GuardSite {
    pub line: usize,
    pub kind: GuardKind,
    /// The `let` binding holding the guard, if any. An unbound guard is
    /// a temporary: it lives only for its own statement (approximated
    /// as its line).
    pub binding: Option<String>,
}

/// A `loop {` header.
#[derive(Debug, Clone)]
pub struct LoopSite {
    pub line: usize,
    /// True when the header (or the line above) carries a
    /// `// bounded: <why this terminates>` marker.
    pub bounded: bool,
}

/// One atomic operation (`load`/`store`/`swap`/`compare_exchange`/
/// `fetch_*`) with everything R8 needs.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    pub line: usize,
    /// Last line of the call's argument list (calls may span lines).
    pub end_line: usize,
    pub method: String,
    /// Trailing identifier of the receiver chain (`writes` in
    /// `self.writes.load(..)`).
    pub receiver: String,
    /// The call names an explicit `Ordering::` argument.
    pub has_ordering: bool,
    /// `Ordering::Relaxed` appears among the named orderings.
    pub relaxed: bool,
    /// A `// ordering:` justification comment covers this site.
    pub justified: bool,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// The `impl` type the fn lives in, when known.
    pub owner: Option<String>,
    /// Unrestricted `pub` (`pub(crate)`/`pub(super)` count as internal).
    pub is_pub: bool,
    pub has_receiver: bool,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Line of the closing brace.
    pub end_line: usize,
    /// Header sits in a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// The declared return type produces a guard.
    pub returns_guard: Option<GuardKind>,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub guards: Vec<GuardSite>,
    pub loops: Vec<LoopSite>,
    pub atomics: Vec<AtomicSite>,
    /// Lines performing backend I/O directly (`backend.read(` etc.).
    pub io_lines: Vec<usize>,
    /// `drop(var)` statements, which end a guard's scope early.
    pub drops: Vec<(usize, String)>,
}

/// The parsed model of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub fns: Vec<FnItem>,
    /// Identifiers declared with a `Mutex<`/`RwLock<` type in this file.
    pub lock_names: Vec<String>,
    /// Identifiers declared with an `Atomic*` type in this file.
    pub atomic_names: Vec<String>,
    /// `field name -> head type` pairs recovered from field declarations
    /// (`store: PageStore`, `buffer: Arc<ShardedBuffer>`).
    pub field_types: Vec<(String, String)>,
    /// Brace depth at the start of each 1-based line.
    depth_before: Vec<usize>,
}

impl FileModel {
    /// Last line of the block enclosing `line` (clamped to `fn_end`):
    /// the first line at or after `line` whose following line starts at
    /// a shallower depth.
    pub fn scope_end(&self, line: usize, fn_end: usize) -> usize {
        let d = self.depth_at(line);
        let mut m = line;
        while m < fn_end {
            if self.depth_at(m + 1) < d {
                return m;
            }
            m += 1;
        }
        fn_end
    }

    fn depth_at(&self, line: usize) -> usize {
        self.depth_before.get(line).copied().unwrap_or(0)
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Rust keywords that look like call names to a token scanner.
const KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "mut", "ref", "impl", "where", "use", "mod", "unsafe", "async", "dyn", "break",
];

/// Atomic methods R8 polices.
pub const ATOMIC_METHODS: [&str; 12] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
];

/// Tokens marking a line as direct backend I/O (the `PageBackend`
/// surface plus raw filesystem access).
const IO_CALL_MARKERS: [&str; 8] = [
    "backend.read(",
    "backend.write(",
    "backend.allocate(",
    "backend.sync(",
    "backend.quiesce(",
    "std::fs::",
    "File::open(",
    "File::create(",
];

/// The identifier ending at byte `end` (exclusive) of `line`, if any.
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let head = line.get(..end)?;
    let start = head
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(i, _)| i)?;
    let ident = head.get(start..)?;
    let first = ident.chars().next()?;
    if first.is_ascii_digit() {
        return None;
    }
    Some(ident)
}

/// The dotted receiver chain ending at byte `end` (exclusive): walks
/// back over identifier and `.` characters. Stops (returning what it
/// has) at anything else, so `foo(x).bar` yields an empty chain.
fn receiver_chain(line: &str, end: usize) -> String {
    let Some(head) = line.get(..end) else {
        return String::new();
    };
    let bytes = head.as_bytes();
    let mut i = head.len();
    while i > 0 {
        let c = bytes[i - 1] as char;
        if is_ident(c) || c == '.' {
            i -= 1;
        } else {
            break;
        }
    }
    head.get(i..).unwrap_or("").trim_matches('.').to_string()
}

/// The last identifier of a dotted chain (`lru` in `shard.lru`).
pub fn chain_tail(chain: &str) -> &str {
    chain.rsplit('.').next().unwrap_or(chain)
}

/// Whether a `let <ident> =` statement opens immediately before byte
/// `at` on `line` (no `;` in between); returns the bound identifier.
fn let_binding_before(line: &str, at: usize) -> Option<String> {
    let head = line.get(..at)?;
    let let_at = head.rfind("let ")?;
    // `let` must be a token, and no statement boundary may intervene.
    if let_at > 0 {
        let prev = head.get(..let_at)?.chars().next_back();
        if prev.is_some_and(is_ident) {
            return None;
        }
    }
    let between = head.get(let_at + 4..)?;
    if between.contains(';') {
        return None;
    }
    let mut toks = between.split_whitespace();
    let mut first = toks.next()?;
    if first == "mut" {
        first = toks.next()?;
    }
    let name: String = first.chars().take_while(|c| is_ident(*c)).collect();
    // Destructuring patterns (`let Some(x)`, `let Self { .. }`) don't
    // bind the guard under one name we can track.
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None;
    }
    Some(name)
}

/// Positions of `needle` in `hay` preceded by a non-identifier char
/// (needles starting with `.` carry their own left boundary).
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    let boundary = needle.chars().next().is_some_and(is_ident);
    while let Some(rel) = hay.get(from..).and_then(|h| h.find(needle)) {
        let at = from + rel;
        let ok = !boundary
            || at == 0
            || hay
                .get(..at)
                .and_then(|h| h.chars().next_back())
                .is_none_or(|c| !is_ident(c));
        if ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Does `hay[at..]` hold the standalone keyword `kw` (both sides
/// bounded by non-identifier characters)?
fn keyword_at(hay: &str, at: usize, kw: &str) -> bool {
    let Some(rest) = hay.get(at..) else {
        return false;
    };
    if !rest.starts_with(kw) {
        return false;
    }
    if at > 0
        && hay
            .get(..at)
            .and_then(|h| h.chars().next_back())
            .is_some_and(is_ident)
    {
        return false;
    }
    rest.get(kw.len()..)
        .and_then(|r| r.chars().next())
        .is_none_or(|c| !is_ident(c))
}

/// Extract the implemented type from an `impl` header (the ident after
/// `for` when present, else the first type ident after the generics).
fn impl_type(header: &str) -> Option<String> {
    let body = header.trim_start();
    let rest = body.strip_prefix("impl")?;
    let rest = rest.trim_start();
    // Skip a balanced generic parameter list.
    let rest = if rest.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest.get(cut..).unwrap_or("")
    } else {
        rest
    };
    let target = match rest.find(" for ") {
        Some(at) => rest.get(at + 5..).unwrap_or(""),
        None => rest,
    };
    let name: String = target
        .trim_start()
        .chars()
        .take_while(|c| is_ident(*c))
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Guard kind named by a return type, if any.
fn guard_return(sig_after_arrow: &str) -> Option<GuardKind> {
    if sig_after_arrow.contains("MutexGuard") {
        Some(GuardKind::Mutex)
    } else if sig_after_arrow.contains("RwLockReadGuard") {
        Some(GuardKind::RwRead)
    } else if sig_after_arrow.contains("RwLockWriteGuard") {
        Some(GuardKind::RwWrite)
    } else {
        None
    }
}

/// A fn signature being accumulated until its body `{` (or a bodyless
/// `;`) appears.
struct PendingFn {
    text: String,
    start_line: usize,
    is_pub: bool,
    owner: Option<String>,
    paren_depth: i32,
    bracket_depth: i32,
}

enum Ctx {
    Impl {
        ty: Option<String>,
        open_depth: usize,
    },
    Fn {
        idx: usize,
        open_depth: usize,
    },
}

/// Parse one masked file. `ascii` is the masked text (ASCII-blanked),
/// `comments` the captured `//` comments, `exempt` the 1-based
/// test-region map from `test_exempt_lines`.
pub fn parse(ascii: &str, comments: &[Comment], exempt: &[bool]) -> FileModel {
    let mut model = FileModel::default();
    collect_declarations(ascii, &mut model);

    let line_count = ascii.lines().count();
    model.depth_before = vec![0; line_count + 2];

    // Comment lookups for `// bounded:` / `// ordering:` markers.
    let bounded_on: Vec<usize> = comments
        .iter()
        .filter(|c| c.text.contains("bounded:"))
        .map(|c| c.line)
        .collect();
    let ordering_on: Vec<(usize, bool)> = comments
        .iter()
        .filter(|c| c.text.contains("ordering:"))
        .map(|c| (c.line, c.trailing))
        .collect();
    let comment_lines: Vec<usize> = comments
        .iter()
        .filter(|c| !c.trailing)
        .map(|c| c.line)
        .collect();

    let mut depth: usize = 0;
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending_fn: Option<PendingFn> = None;
    let mut pending_impl: Option<String> = None;

    let lines: Vec<&str> = ascii.lines().collect();
    for (idx, raw_line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        if let Some(slot) = model.depth_before.get_mut(line_no) {
            *slot = depth;
        }
        let line = *raw_line;
        let is_exempt = exempt.get(line_no).copied().unwrap_or(false);

        // --- signature accumulation ---------------------------------
        // Where (if anywhere) a body `{` opened on this line, i.e. the
        // column code scanning should start from.
        let mut body_from: Option<usize> = None;
        if pending_fn.is_some() {
            let mut sig_done = false;
            let mut sig_bodyless = false;
            if let Some(p) = pending_fn.as_mut() {
                for (col, c) in line.char_indices() {
                    match c {
                        '(' => p.paren_depth += 1,
                        ')' => p.paren_depth -= 1,
                        '[' => p.bracket_depth += 1,
                        ']' => p.bracket_depth -= 1,
                        '{' if p.paren_depth == 0 && p.bracket_depth == 0 => {
                            body_from = Some(col + 1);
                            sig_done = true;
                            break;
                        }
                        ';' if p.paren_depth == 0 && p.bracket_depth == 0 => {
                            sig_done = true;
                            sig_bodyless = true;
                            break;
                        }
                        _ => {}
                    }
                    p.text.push(c);
                }
                if !sig_done {
                    p.text.push(' ');
                }
            }
            if !sig_done {
                continue; // signature spills onto the next line
            }
            if sig_bodyless {
                pending_fn = None; // trait method without a body
            } else if let Some(p) = pending_fn.take() {
                let test = exempt.get(p.start_line).copied().unwrap_or(false);
                let fidx = finalize_fn(&p, test, &mut model);
                stack.push(Ctx::Fn {
                    idx: fidx,
                    open_depth: depth + 1,
                });
            }
        } else if pending_impl.is_some() {
            if let Some(col) = line.find('{') {
                let mut header = pending_impl.take().unwrap_or_default();
                header.push_str(line.get(..col).unwrap_or(""));
                stack.push(Ctx::Impl {
                    ty: impl_type(&header),
                    open_depth: depth + 1,
                });
                body_from = Some(col + 1);
            } else {
                if let Some(h) = pending_impl.as_mut() {
                    h.push_str(line);
                    h.push(' ');
                }
                continue;
            }
        }

        let scan_from = body_from.unwrap_or(0);
        let seg = line.get(scan_from..).unwrap_or("");

        // --- new item headers ---------------------------------------
        let mut scanned_header = false;
        if pending_fn.is_none() && pending_impl.is_none() {
            if let Some(fn_at) = find_fn_token(seg) {
                scanned_header = true;
                let abs = scan_from + fn_at;
                let prefix = line.get(..abs).unwrap_or("");
                let owner = stack.iter().rev().find_map(|c| match c {
                    Ctx::Impl { ty, .. } => Some(ty.clone()),
                    _ => None,
                });
                let mut p = PendingFn {
                    text: String::new(),
                    start_line: line_no,
                    is_pub: prefix_is_pub(prefix),
                    owner: owner.flatten(),
                    paren_depth: 0,
                    bracket_depth: 0,
                };
                // Consume the rest of the line as signature text.
                enum Term {
                    Body(usize),
                    Bodyless,
                    Open,
                }
                let mut term = Term::Open;
                for (col, c) in line.char_indices().filter(|(col, _)| *col >= abs) {
                    match c {
                        '(' => p.paren_depth += 1,
                        ')' => p.paren_depth -= 1,
                        '[' => p.bracket_depth += 1,
                        ']' => p.bracket_depth -= 1,
                        '{' if p.paren_depth == 0 && p.bracket_depth == 0 => {
                            term = Term::Body(col);
                            break;
                        }
                        ';' if p.paren_depth == 0 && p.bracket_depth == 0 => {
                            term = Term::Bodyless;
                            break;
                        }
                        _ => {}
                    }
                    p.text.push(c);
                }
                match term {
                    Term::Bodyless => {}
                    Term::Body(col) => {
                        let fidx = finalize_fn(&p, is_exempt, &mut model);
                        stack.push(Ctx::Fn {
                            idx: fidx,
                            open_depth: depth + 1,
                        });
                        scan_sites(
                            line,
                            col + 1,
                            line_no,
                            ascii,
                            &mut model,
                            Some(fidx),
                            is_exempt,
                            &bounded_on,
                            &ordering_on,
                            &comment_lines,
                        );
                    }
                    Term::Open => pending_fn = Some(p),
                }
            } else if let Some(impl_at) = find_impl_token(seg) {
                scanned_header = true;
                let abs = scan_from + impl_at;
                if let Some(col) = line.get(abs..).and_then(|r| r.find('{')) {
                    let header = line.get(abs..abs + col).unwrap_or("");
                    stack.push(Ctx::Impl {
                        ty: impl_type(header),
                        open_depth: depth + 1,
                    });
                } else {
                    pending_impl = Some(line.get(abs..).unwrap_or("").to_string());
                    continue;
                }
            }
        }
        if !scanned_header {
            if let Some(fidx) = stack_innermost_fn(&stack) {
                scan_sites(
                    line,
                    scan_from,
                    line_no,
                    ascii,
                    &mut model,
                    Some(fidx),
                    is_exempt,
                    &bounded_on,
                    &ordering_on,
                    &comment_lines,
                );
            }
        }

        // --- structural pass: braces, context pops ------------------
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(top) = stack.last() {
                        let open = match top {
                            Ctx::Impl { open_depth, .. } | Ctx::Fn { open_depth, .. } => {
                                *open_depth
                            }
                        };
                        if depth < open {
                            if let Some(Ctx::Fn { idx, .. }) = stack.pop() {
                                if let Some(f) = model.fns.get_mut(idx) {
                                    f.end_line = line_no;
                                }
                            }
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(slot) = model.depth_before.get_mut(line_count + 1) {
        *slot = depth;
    }
    // Close any fn left open by a truncated file.
    for ctx in stack {
        if let Ctx::Fn { idx, .. } = ctx {
            if let Some(f) = model.fns.get_mut(idx) {
                if f.end_line == 0 {
                    f.end_line = line_count;
                }
            }
        }
    }
    model
}

fn stack_innermost_fn(stack: &[Ctx]) -> Option<usize> {
    stack.iter().rev().find_map(|c| match c {
        Ctx::Fn { idx, .. } => Some(*idx),
        _ => None,
    })
}

fn finalize_fn(p: &PendingFn, is_test: bool, model: &mut FileModel) -> usize {
    let sig = p.text.as_str();
    let name: String = sig
        .trim_start()
        .strip_prefix("fn")
        .map(|r| {
            r.trim_start()
                .chars()
                .take_while(|c| is_ident(*c))
                .collect()
        })
        .unwrap_or_default();
    // Receiver: a `self` token inside the first parenthesized group.
    let params = sig
        .find('(')
        .and_then(|open| {
            let rest = sig.get(open + 1..)?;
            let close = rest.find(')')?;
            rest.get(..close)
        })
        .unwrap_or("");
    let has_receiver = token_positions(params, "self")
        .iter()
        .any(|&at| keyword_at(params, at, "self"));
    let returns_guard = sig
        .find("->")
        .and_then(|at| sig.get(at + 2..))
        .and_then(guard_return);
    model.fns.push(FnItem {
        name,
        owner: p.owner.clone(),
        is_pub: p.is_pub,
        has_receiver,
        line: p.start_line,
        end_line: 0,
        is_test,
        returns_guard,
        calls: Vec::new(),
        panics: Vec::new(),
        guards: Vec::new(),
        loops: Vec::new(),
        atomics: Vec::new(),
        io_lines: Vec::new(),
        drops: Vec::new(),
    });
    model.fns.len() - 1
}

/// Position of a standalone `fn` keyword in `seg`.
fn find_fn_token(seg: &str) -> Option<usize> {
    token_positions(seg, "fn")
        .into_iter()
        .find(|&at| keyword_at(seg, at, "fn"))
}

/// Position of a standalone `impl` keyword opening an impl block (not
/// `-> impl Trait` / `: impl Trait` type positions).
fn find_impl_token(seg: &str) -> Option<usize> {
    token_positions(seg, "impl").into_iter().find(|&at| {
        keyword_at(seg, at, "impl")
            && !seg
                .get(..at)
                .unwrap_or("")
                .trim_end()
                .ends_with(['>', ':', ',', '(', '&', '='])
    })
}

fn prefix_is_pub(prefix: &str) -> bool {
    for at in token_positions(prefix, "pub") {
        if !keyword_at(prefix, at, "pub") {
            continue;
        }
        let after = prefix.get(at + 3..).unwrap_or("").trim_start();
        if !after.starts_with('(') {
            return true;
        }
    }
    false
}

/// Scan one line's code (from byte `from`) for sites, attributing them
/// to fn `fn_idx`.
#[allow(clippy::too_many_arguments)]
fn scan_sites(
    line: &str,
    from: usize,
    line_no: usize,
    full_text: &str,
    model: &mut FileModel,
    fn_idx: Option<usize>,
    is_exempt: bool,
    bounded_on: &[usize],
    ordering_on: &[(usize, bool)],
    comment_lines: &[usize],
) {
    let Some(fn_idx) = fn_idx else {
        return;
    };
    if is_exempt {
        return;
    }
    let seg = line.get(from..).unwrap_or("");

    // Collect into locals; the mutable model borrow is taken at the end.
    let mut calls: Vec<CallSite> = Vec::new();
    let mut panics: Vec<PanicSite> = Vec::new();
    let mut guards: Vec<GuardSite> = Vec::new();
    let mut loops: Vec<LoopSite> = Vec::new();
    let mut atomics: Vec<AtomicSite> = Vec::new();
    let mut io_hit = false;
    let mut drops: Vec<(usize, String)> = Vec::new();

    // --- calls ------------------------------------------------------
    for (col, c) in seg.char_indices() {
        if c != '(' {
            continue;
        }
        let Some(name) = ident_ending_at(seg, col) else {
            continue;
        };
        if KEYWORDS.contains(&name) {
            continue;
        }
        let name_start = col - name.len();
        let before = seg.get(..name_start).unwrap_or("");
        // `fn name(` is a definition.
        if before.trim_end().ends_with("fn") {
            continue;
        }
        let (qualifier, receiver, is_method) = if before.ends_with("::") {
            let q = ident_ending_at(before, before.len() - 2).map(str::to_string);
            (q, String::new(), false)
        } else if before.ends_with('.') {
            (
                None,
                receiver_chain(seg, name_start.saturating_sub(1)),
                true,
            )
        } else {
            (None, String::new(), false)
        };
        let abs_at = from + name_start;
        if name == "drop" && !is_method {
            let arg: String = seg
                .get(col + 1..)
                .unwrap_or("")
                .chars()
                .take_while(|c| is_ident(*c))
                .collect();
            if !arg.is_empty() {
                drops.push((line_no, arg));
            }
            continue;
        }
        calls.push(CallSite {
            name: name.to_string(),
            qualifier,
            receiver,
            line: line_no,
            is_method,
            let_binding: let_binding_before(line, abs_at),
        });
    }

    // --- guard producers -------------------------------------------
    for at in token_positions(seg, ".lock()") {
        guards.push(GuardSite {
            line: line_no,
            kind: GuardKind::Mutex,
            binding: let_binding_before(line, from + at),
        });
    }
    for (needle, kind) in [
        (".read()", GuardKind::RwRead),
        (".write()", GuardKind::RwWrite),
    ] {
        for at in token_positions(seg, needle) {
            let recv = receiver_chain(seg, at);
            let tail = chain_tail(&recv);
            if model.lock_names.iter().any(|n| n == tail) {
                guards.push(GuardSite {
                    line: line_no,
                    kind,
                    binding: let_binding_before(line, from + at),
                });
            }
        }
    }

    // --- loops ------------------------------------------------------
    for at in token_positions(seg, "loop") {
        if !keyword_at(seg, at, "loop") {
            continue;
        }
        let bounded =
            bounded_on.contains(&line_no) || bounded_on.contains(&(line_no.saturating_sub(1)));
        loops.push(LoopSite {
            line: line_no,
            bounded,
        });
    }

    // --- panic sources ---------------------------------------------
    for needle in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        for _ in token_positions(seg, needle) {
            panics.push(PanicSite {
                line: line_no,
                token: needle.to_string(),
                what: needle.to_string(),
            });
        }
    }
    for needle in [".unwrap()", ".expect("] {
        for at in token_positions(seg, needle) {
            let recv = receiver_chain(seg, at);
            panics.push(PanicSite {
                line: line_no,
                token: needle.trim_end_matches('(').to_string(),
                what: format!("{}{}", chain_tail(&recv), needle.trim_end_matches('(')),
            });
        }
    }
    // Indexing: `[` directly after an identifier, `)`, or `]`.
    for (col, c) in seg.char_indices() {
        if c != '[' {
            continue;
        }
        let prev = seg.get(..col).and_then(|h| h.chars().next_back());
        if !prev.is_some_and(|p| is_ident(p) || p == ')' || p == ']') {
            continue;
        }
        let what = match ident_ending_at(seg, col) {
            Some(name) => format!("{name}[..]"),
            None => "[..]".to_string(),
        };
        panics.push(PanicSite {
            line: line_no,
            token: "indexing".to_string(),
            what,
        });
    }

    // --- atomics ----------------------------------------------------
    for method in ATOMIC_METHODS {
        let needle = format!(".{method}(");
        for at in token_positions(seg, &needle) {
            let recv = receiver_chain(seg, at);
            let tail = chain_tail(&recv).to_string();
            // Capture the argument text (may span lines) from the full
            // masked source.
            let abs = line_offset(full_text, line_no) + from + at + needle.len();
            let (args, end_line) = capture_args(full_text, abs, line_no);
            let has_ordering = args.contains("Ordering::");
            if !has_ordering && !model.atomic_names.contains(&tail) {
                continue; // not an atomic (e.g. `v.swap(i, j)`)
            }
            let relaxed = args.contains("Ordering::Relaxed");
            let justified =
                ordering_justified(line_no, end_line, ordering_on, comment_lines, model);
            atomics.push(AtomicSite {
                line: line_no,
                end_line,
                method: method.to_string(),
                receiver: tail,
                has_ordering,
                relaxed,
                justified,
            });
        }
    }

    // --- backend I/O markers ---------------------------------------
    if IO_CALL_MARKERS.iter().any(|m| seg.contains(m)) {
        io_hit = true;
    }

    let Some(f) = model.fns.get_mut(fn_idx) else {
        return;
    };
    f.calls.append(&mut calls);
    f.panics.append(&mut panics);
    f.guards.append(&mut guards);
    f.loops.append(&mut loops);
    f.atomics.append(&mut atomics);
    if io_hit {
        f.io_lines.push(line_no);
    }
    f.drops.append(&mut drops);
}

/// Byte offset of the start of 1-based `line` in `text`.
fn line_offset(text: &str, line: usize) -> usize {
    if line <= 1 {
        return 0;
    }
    let mut current = 1;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            current += 1;
            if current == line {
                return i + 1;
            }
        }
    }
    text.len()
}

/// Capture a call's argument text from the byte after its `(` to the
/// matching `)`, returning the text and the 1-based line it ends on.
fn capture_args(text: &str, from: usize, start_line: usize) -> (String, usize) {
    let mut depth = 1i32;
    let mut out = String::new();
    let mut line = start_line;
    for c in text.get(from..).unwrap_or("").chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return (out, line);
                }
            }
            '\n' => line += 1,
            _ => {}
        }
        out.push(c);
        if out.len() > 2048 {
            break; // unbalanced source; stop scanning
        }
    }
    (out, line)
}

/// Is an `// ordering:` comment attached to the statement spanning
/// `[line, end_line]`? Accepted positions: trailing on any line of the
/// span, or standalone above the span — walking up through comment-only
/// lines and lines that already hold atomic calls, so one comment can
/// cover a contiguous run of counter updates.
fn ordering_justified(
    line: usize,
    end_line: usize,
    ordering_on: &[(usize, bool)],
    comment_lines: &[usize],
    model: &FileModel,
) -> bool {
    for l in line..=end_line {
        if ordering_on.iter().any(|&(cl, _)| cl == l) {
            return true;
        }
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if ordering_on
            .iter()
            .any(|&(cl, trailing)| cl == l && !trailing)
        {
            return true;
        }
        if comment_lines.contains(&l) {
            continue;
        }
        if model
            .fns
            .iter()
            .any(|f| f.atomics.iter().any(|a| a.line <= l && l <= a.end_line))
        {
            continue;
        }
        // A non-comment, non-atomic line breaks the run.
        return false;
    }
    false
}

/// Collect lock/atomic/field declarations file-wide (they may precede
/// or follow the fns that use them).
fn collect_declarations(ascii: &str, model: &mut FileModel) {
    const ATOMIC_TYPES: [&str; 7] = [
        "AtomicU64",
        "AtomicUsize",
        "AtomicU32",
        "AtomicU8",
        "AtomicBool",
        "AtomicPtr",
        "AtomicI64",
    ];
    for line in ascii.lines() {
        if line.trim_start().starts_with("let ") {
            let has_lock = line.contains("Mutex<") || line.contains("RwLock<");
            let has_atomic = ATOMIC_TYPES.iter().any(|t| line.contains(t));
            if has_lock || has_atomic {
                if let Some(name) = declared_name(line) {
                    if has_lock && !model.lock_names.contains(&name) {
                        model.lock_names.push(name.clone());
                    }
                    if has_atomic && !model.atomic_names.contains(&name) {
                        model.atomic_names.push(name);
                    }
                }
            }
            continue;
        }
        for (name, ty) in field_segments(line) {
            if (ty.contains("Mutex<") || ty.contains("RwLock<"))
                && !model.lock_names.contains(&name)
            {
                model.lock_names.push(name.clone());
            }
            if ATOMIC_TYPES.iter().any(|t| ty.contains(t)) && !model.atomic_names.contains(&name) {
                model.atomic_names.push(name.clone());
            }
            collect_field_type(name, ty, model);
        }
    }
}

/// Every `name: Type` pair on this line; a field's type segment runs to
/// the next comma (or `}`) at angle/paren depth zero, so multi-field
/// struct lines yield each field separately.
fn field_segments(line: &str) -> Vec<(String, &str)> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        if (i > 0 && bytes[i - 1] == b':') || bytes.get(i + 1) == Some(&b':') {
            continue; // `::` path, not a declaration
        }
        let Some(name) = ident_ending_at(line, i) else {
            continue;
        };
        let rest = &line[i + 1..];
        let mut depth = 0i32;
        let mut end = rest.len();
        for (off, c) in rest.char_indices() {
            match c {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth -= 1,
                ',' | '}' if depth <= 0 => {
                    end = off;
                    break;
                }
                _ => {}
            }
        }
        out.push((name.to_string(), rest[..end].trim()));
    }
    out
}

/// The declared identifier of a `name: Type` field or `let name =`
/// binding on this line.
fn declared_name(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    if let Some(rest) = trimmed.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest.chars().take_while(|c| is_ident(*c)).collect();
        if name.is_empty() {
            return None;
        }
        return Some(name);
    }
    let colon = line.find(':')?;
    if line.get(colon + 1..colon + 2) == Some(":") {
        return None; // `::` path, not a declaration
    }
    ident_ending_at(line, colon).map(|s| s.to_string())
}

/// Record a `field: Type` pair where `Type` is a plain type ident,
/// possibly wrapped in `Arc<`/`Box<`/`Rc<`/`Vec<`/`Option<`.
fn collect_field_type(name: String, ty: &str, model: &mut FileModel) {
    let mut ty = ty.trim();
    loop {
        let before = ty;
        for wrapper in ["Arc<", "Box<", "Rc<", "Vec<", "Option<"] {
            while let Some(rest) = ty.strip_prefix(wrapper) {
                ty = rest;
            }
        }
        if ty == before {
            break;
        }
    }
    let head: String = ty.chars().take_while(|c| is_ident(*c)).collect();
    if head.is_empty() || head.chars().next().is_some_and(|c| !c.is_uppercase()) {
        return; // not a concrete type name
    }
    if !model
        .field_types
        .iter()
        .any(|(n, t)| *n == name && *t == head)
    {
        model.field_types.push((name, head));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask;

    fn parse_src(src: &str) -> FileModel {
        let m = mask::mask(src);
        let exempt = crate::test_exempt_lines(&m.text);
        parse(&m.text, &m.comments, &exempt)
    }

    #[test]
    fn extracts_fns_with_visibility_owner_and_receiver() {
        let src = "\
impl Widget {
    pub fn api(&self) -> usize { self.helper() }
    fn helper(&self) -> usize { 0 }
}
pub(crate) fn internal() {}
pub fn free() {}
";
        let m = parse_src(src);
        let names: Vec<(&str, bool, bool, Option<&str>)> = m
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.is_pub,
                    f.has_receiver,
                    f.owner.as_deref(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("api", true, true, Some("Widget")),
                ("helper", false, true, Some("Widget")),
                ("internal", false, false, None),
                ("free", true, false, None),
            ]
        );
        assert_eq!(m.fns[0].calls.len(), 1);
        assert_eq!(m.fns[0].calls[0].name, "helper");
        assert!(m.fns[0].calls[0].is_method);
        assert_eq!(m.fns[0].calls[0].receiver, "self");
    }

    #[test]
    fn multiline_signatures_and_impl_for_headers() {
        let src = "\
impl Clone for Pool {
    fn clone(
        &self,
    ) -> Self {
        self.rebuild()
    }
}
";
        let m = parse_src(src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "clone");
        assert_eq!(m.fns[0].owner.as_deref(), Some("Pool"));
        assert!(m.fns[0].has_receiver);
        assert_eq!(m.fns[0].calls[0].name, "rebuild");
        assert_eq!(m.fns[0].end_line, 6);
    }

    #[test]
    fn guard_sites_and_bindings() {
        let src = "\
struct S { inner: Mutex<u32>, core: RwLock<u32> }
impl S {
    fn f(&self) {
        let g = self.inner.lock();
        let r = self.core.read();
        self.core.write();
        other.flush();
    }
}
";
        let m = parse_src(src);
        assert_eq!(m.lock_names, vec!["inner".to_string(), "core".to_string()]);
        let f = &m.fns[0];
        let kinds: Vec<GuardKind> = f.guards.iter().map(|g| g.kind).collect();
        assert_eq!(
            kinds,
            vec![GuardKind::Mutex, GuardKind::RwRead, GuardKind::RwWrite]
        );
        assert_eq!(f.guards[0].binding.as_deref(), Some("g"));
        assert_eq!(f.guards[1].binding.as_deref(), Some("r"));
        assert_eq!(f.guards[2].binding, None);
    }

    #[test]
    fn atomics_with_and_without_justification() {
        let src = "\
struct S { hits: AtomicU64, level: AtomicU64 }
impl S {
    fn f(&self) {
        // ordering: Relaxed - independent stat counter
        self.hits.fetch_add(1, Ordering::Relaxed);
        let n = 1;
        self.level.store(0, Ordering::SeqCst);
    }
}
";
        let m = parse_src(src);
        let a = &m.fns[0].atomics;
        assert_eq!(a.len(), 2);
        assert!(a[0].justified && a[0].has_ordering && a[0].relaxed);
        // `let n = 1;` breaks the comment's run: the store is bare.
        assert!(a[1].has_ordering && !a[1].relaxed && !a[1].justified);
    }

    #[test]
    fn one_ordering_comment_covers_a_contiguous_run() {
        let src = "\
struct S { hits: AtomicU64, misses: AtomicU64 }
impl S {
    fn f(&self) {
        // ordering: both are independent stat counters
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}
";
        let m = parse_src(src);
        let a = &m.fns[0].atomics;
        assert_eq!(a.len(), 2);
        assert!(a[0].justified && a[1].justified);
    }

    #[test]
    fn slice_swap_is_not_an_atomic() {
        let src = "fn f(v: &mut Vec<u32>) { v.swap(0, 1); }\n";
        let m = parse_src(src);
        assert!(m.fns[0].atomics.is_empty());
    }

    #[test]
    fn indexing_and_panic_sites() {
        let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    let x = v[i];
    let y = v.get(i).unwrap();
    let a = [0u8; 4];
    x + y + u32::from(a[0])
}
";
        let m = parse_src(src);
        let f = &m.fns[0];
        let tokens: Vec<&str> = f.panics.iter().map(|p| p.token.as_str()).collect();
        assert!(tokens.contains(&"indexing"));
        assert!(tokens.contains(&".unwrap()"));
        assert_eq!(
            f.panics.iter().filter(|p| p.token == "indexing").count(),
            2,
            "{:?}",
            f.panics
        );
    }

    #[test]
    fn loops_and_bounded_markers() {
        let src = "\
fn f() {
    // bounded: attempts caps at policy.max_attempts
    loop {
        break;
    }
    loop {
        break;
    }
}
";
        let m = parse_src(src);
        let l = &m.fns[0].loops;
        assert_eq!(l.len(), 2);
        assert!(l[0].bounded);
        assert!(!l[1].bounded);
    }

    #[test]
    fn test_code_contributes_no_sites() {
        let src = "\
pub fn lib() {}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        let m = parse_src(src);
        let t = m.fns.iter().find(|f| f.name == "t");
        assert!(t.is_some_and(|f| f.is_test && f.panics.is_empty()));
    }

    #[test]
    fn scope_end_finds_enclosing_block_close() {
        let src = "\
fn f() {
    {
        let g = m.lock();
        g.touch();
    }
    after();
}
";
        let m = parse_src(src);
        assert_eq!(m.scope_end(3, m.fns[0].end_line), 5);
        assert_eq!(m.scope_end(6, m.fns[0].end_line), 7);
    }

    #[test]
    fn drop_statements_are_recorded() {
        let src = "fn f() { let g = m.lock(); drop(g); after(); }\n";
        let m = parse_src(src);
        assert_eq!(m.fns[0].drops, vec![(1, "g".to_string())]);
        assert!(m.fns[0].calls.iter().all(|c| c.name != "drop"));
    }

    #[test]
    fn qualified_calls_record_their_qualifier() {
        let src = "fn f() { let t = PprTree::open(p); Self::step(s); }\n";
        let m = parse_src(src);
        let c = &m.fns[0].calls;
        assert_eq!(c[0].qualifier.as_deref(), Some("PprTree"));
        assert_eq!(c[0].let_binding.as_deref(), Some("t"));
        assert_eq!(c[1].qualifier.as_deref(), Some("Self"));
    }

    #[test]
    fn guard_returning_signature_is_detected() {
        let src = "\
impl S {
    fn shard(&self, page: u64) -> MutexGuard<'_, Shard> {
        self.shards.lock()
    }
}
";
        let m = parse_src(src);
        assert_eq!(m.fns[0].returns_guard, Some(GuardKind::Mutex));
    }

    #[test]
    fn field_types_recover_wrapped_heads() {
        let src = "struct S { buffer: Arc<ShardedBuffer>, store: PageStore, n: usize }\n";
        let m = parse_src(src);
        assert!(m
            .field_types
            .iter()
            .any(|(n, t)| n == "buffer" && t == "ShardedBuffer"));
        assert!(m
            .field_types
            .iter()
            .any(|(n, t)| n == "store" && t == "PageStore"));
        assert!(!m.field_types.iter().any(|(n, _)| n == "n"));
    }

    #[test]
    fn multiline_atomic_arguments_are_captured() {
        let src = "\
struct S { epoch: AtomicU64 }
impl S {
    fn f(&self) {
        self.epoch.store(
            0,
            Ordering::SeqCst,
        ); // ordering: reset joins no release chain
    }
}
";
        let m = parse_src(src);
        let a = &m.fns[0].atomics;
        assert_eq!(a.len(), 1);
        assert!(a[0].has_ordering);
        assert_eq!(a[0].end_line, 7);
        assert!(a[0].justified, "trailing comment on the close line counts");
    }
}
