//! Phase 2 of the workspace analysis: link the per-file item models
//! into a workspace call graph and compute the interprocedural
//! summaries the graph rules consume.
//!
//! Call resolution is heuristic and deliberately under-approximate:
//!
//! 1. `Q::name(..)` resolves through the `(owner, name)` index; `Self::`
//!    uses the caller's impl owner.
//! 2. `recv.name(..)` resolves by the receiver's type: `self.name(..)`
//!    uses the caller's owner, `self.field.name(..)` looks the field up
//!    in the workspace field-type map (`Arc<`/`Box<` heads stripped).
//! 3. Anything else falls back to a name-based lookup, rejected when
//!    the name is a std-ubiquitous method (`clone`, `len`, `get`, ...)
//!    or when too many workspace fns share it (`AMBIGUITY_CAP`) — a
//!    wrong edge is worse than a missing one.

use crate::parse::{chain_tail, FileModel};
use std::collections::HashMap;

/// Upper bound on name-only candidates before a call is left
/// unresolved.
const AMBIGUITY_CAP: usize = 3;

/// Methods so common in std (or on lock/atomic primitives) that a
/// name-only match would almost always be a false edge.
const UBIQUITOUS_METHODS: [&str; 31] = [
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "drop",
    "next",
    "len",
    "is_empty",
    "iter",
    "get",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "new",
    "from",
    "into",
    "read",
    "write",
    "lock",
    "sync",
    "load",
    "store",
    "swap",
    "flush",
    "clear",
];

/// Per-file inputs to graph construction.
pub struct FileInput {
    /// Workspace-relative path.
    pub path: String,
    pub model: FileModel,
    /// Rule toggles from the file's [`crate::FileClass`].
    pub panic_path: bool,
    pub lock_discipline: bool,
    pub atomic_order: bool,
    pub strict_atomic: bool,
    /// 1-based lines whose panic sites carry a justifying allow
    /// (`no_panic`, `no_io_unwrap`, or `panic_path`) and are therefore
    /// not panic sources for R6.
    pub justified_panic_lines: Vec<usize>,
}

/// Global id of a fn: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// How a fn acquires a property: directly at a line, or through a call
/// at a line to another fn. Evidence chains reconstruct diagnostics'
/// call paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evidence {
    Direct { line: usize },
    Via { line: usize, callee: FnId },
}

impl Evidence {
    pub fn line(&self) -> usize {
        match self {
            Evidence::Direct { line } | Evidence::Via { line, .. } => *line,
        }
    }
}

/// A fn's interprocedural summary, computed to fixpoint.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Acquires a lock (holds a guard at some point) itself or
    /// transitively.
    pub acquires_lock: Option<Evidence>,
    /// Performs backend I/O itself or transitively.
    pub does_io: Option<Evidence>,
    /// Contains an unbounded `loop` itself or transitively.
    pub unbounded_loop: Option<Evidence>,
}

pub struct Graph {
    pub files: Vec<FileInput>,
    /// All fns in deterministic (file, index) order.
    pub fn_ids: Vec<FnId>,
    /// Resolved callees per fn, parallel to each fn's `calls` vec:
    /// `calls_of[fn][call_site] -> resolved targets`.
    calls: HashMap<FnId, Vec<Vec<FnId>>>,
    /// `summaries[fn]`, computed to fixpoint over the call graph.
    pub summaries: HashMap<FnId, Summary>,
}

impl Graph {
    pub fn build(files: Vec<FileInput>) -> Graph {
        let mut fn_ids: Vec<FnId> = Vec::new();
        let mut name_index: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut owner_index: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        // Workspace field-type map; a field name mapping to more than
        // one distinct type becomes unusable (None).
        let mut field_types: HashMap<&str, Option<&str>> = HashMap::new();

        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.model.fns.iter().enumerate() {
                let id = (fi, ni);
                fn_ids.push(id);
                name_index.entry(f.name.as_str()).or_default().push(id);
                if let Some(owner) = f.owner.as_deref() {
                    owner_index
                        .entry((owner, f.name.as_str()))
                        .or_default()
                        .push(id);
                }
            }
            for (name, ty) in &file.model.field_types {
                field_types
                    .entry(name.as_str())
                    .and_modify(|t| {
                        if *t != Some(ty.as_str()) {
                            *t = None;
                        }
                    })
                    .or_insert(Some(ty.as_str()));
            }
        }

        let mut calls: HashMap<FnId, Vec<Vec<FnId>>> = HashMap::new();
        for &(fi, ni) in &fn_ids {
            let file = &files[fi];
            let caller = &file.model.fns[ni];
            let mut per_site = Vec::with_capacity(caller.calls.len());
            for call in &caller.calls {
                let mut targets: Vec<FnId> = Vec::new();
                if let Some(q) = call.qualifier.as_deref() {
                    let owner = if q == "Self" {
                        caller.owner.as_deref()
                    } else {
                        Some(q)
                    };
                    if let Some(owner) = owner {
                        if let Some(hits) = owner_index.get(&(owner, call.name.as_str())) {
                            targets.extend(hits.iter().copied());
                        }
                    }
                } else if call.is_method {
                    let tail = chain_tail(&call.receiver);
                    let recv_ty = if call.receiver == "self" {
                        caller.owner.as_deref()
                    } else if !tail.is_empty() && tail != "self" {
                        field_types.get(tail).copied().flatten()
                    } else {
                        None
                    };
                    if let Some(ty) = recv_ty {
                        if let Some(hits) = owner_index.get(&(ty, call.name.as_str())) {
                            targets.extend(hits.iter().copied());
                        }
                    }
                    if targets.is_empty() {
                        targets = name_fallback(&name_index, &files, call.name.as_str(), true);
                    }
                } else {
                    // Free-fn call: same-file fns first, then the
                    // workspace fallback.
                    if let Some(hits) = name_index.get(call.name.as_str()) {
                        let local: Vec<FnId> = hits
                            .iter()
                            .copied()
                            .filter(|&(f, n)| f == fi && !files[f].model.fns[n].has_receiver)
                            .collect();
                        if !local.is_empty() {
                            targets = local;
                        }
                    }
                    if targets.is_empty() {
                        targets = name_fallback(&name_index, &files, call.name.as_str(), false);
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                per_site.push(targets);
            }
            calls.insert((fi, ni), per_site);
        }

        let mut g = Graph {
            files,
            fn_ids,
            calls,
            summaries: HashMap::new(),
        };
        g.compute_summaries();
        g
    }

    /// Resolved callees for each call site of `id` (parallel to the
    /// fn's `calls` vector).
    pub fn callees(&self, id: FnId) -> &[Vec<FnId>] {
        self.calls.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn fn_item(&self, id: FnId) -> &crate::parse::FnItem {
        &self.files[id.0].model.fns[id.1]
    }

    pub fn summary(&self, id: FnId) -> &Summary {
        static EMPTY: Summary = Summary {
            acquires_lock: None,
            does_io: None,
            unbounded_loop: None,
        };
        self.summaries.get(&id).unwrap_or(&EMPTY)
    }

    /// Human-readable label for a fn (`Type::name` or `name`).
    pub fn label(&self, id: FnId) -> String {
        let f = self.fn_item(id);
        match f.owner.as_deref() {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Iterative dataflow to fixpoint: a fn's summary absorbs its own
    /// sites, then its callees' summaries through its call sites.
    fn compute_summaries(&mut self) {
        let mut summaries: HashMap<FnId, Summary> = HashMap::new();
        // Seed with direct facts.
        for &id in &self.fn_ids {
            let f = self.fn_item(id);
            let mut s = Summary::default();
            if f.is_test {
                summaries.insert(id, s);
                continue;
            }
            if let Some(g) = f.guards.first() {
                s.acquires_lock = Some(Evidence::Direct { line: g.line });
            }
            if f.returns_guard.is_some() && s.acquires_lock.is_none() {
                s.acquires_lock = Some(Evidence::Direct { line: f.line });
            }
            if let Some(&line) = f.io_lines.first() {
                s.does_io = Some(Evidence::Direct { line });
            }
            if let Some(l) = f.loops.iter().find(|l| !l.bounded) {
                s.unbounded_loop = Some(Evidence::Direct { line: l.line });
            }
            summaries.insert(id, s);
        }
        // Propagate until stable. Guard-returning callees hand their
        // guard to the caller, so a call to one also acquires.
        let mut changed = true;
        while changed {
            changed = false;
            for &id in &self.fn_ids {
                if self.fn_item(id).is_test {
                    continue;
                }
                let sites = self.callees(id);
                let caller_calls = &self.fn_item(id).calls;
                let mut updates = Summary::default();
                for (ci, targets) in sites.iter().enumerate() {
                    let line = caller_calls[ci].line;
                    for &t in targets {
                        let Some(ts) = summaries.get(&t) else {
                            continue;
                        };
                        if ts.acquires_lock.is_some() && updates.acquires_lock.is_none() {
                            updates.acquires_lock = Some(Evidence::Via { line, callee: t });
                        }
                        if ts.does_io.is_some() && updates.does_io.is_none() {
                            updates.does_io = Some(Evidence::Via { line, callee: t });
                        }
                        if ts.unbounded_loop.is_some() && updates.unbounded_loop.is_none() {
                            updates.unbounded_loop = Some(Evidence::Via { line, callee: t });
                        }
                    }
                }
                if let Some(s) = summaries.get_mut(&id) {
                    if s.acquires_lock.is_none() && updates.acquires_lock.is_some() {
                        s.acquires_lock = updates.acquires_lock;
                        changed = true;
                    }
                    if s.does_io.is_none() && updates.does_io.is_some() {
                        s.does_io = updates.does_io;
                        changed = true;
                    }
                    if s.unbounded_loop.is_none() && updates.unbounded_loop.is_some() {
                        s.unbounded_loop = updates.unbounded_loop;
                        changed = true;
                    }
                }
            }
        }
        self.summaries = summaries;
    }

    /// Follow a summary's evidence chain for `kind`, returning the fn
    /// labels from `id` down to the fn with the direct site (capped).
    pub fn evidence_chain(
        &self,
        id: FnId,
        pick: impl Fn(&Summary) -> Option<Evidence>,
    ) -> Vec<String> {
        let mut chain = vec![self.label(id)];
        let mut cur = id;
        for _ in 0..6 {
            match pick(self.summary(cur)) {
                Some(Evidence::Via { callee, .. }) => {
                    chain.push(self.label(callee));
                    cur = callee;
                }
                _ => break,
            }
        }
        chain
    }
}

/// Name-only fallback resolution with the ambiguity cap and the
/// ubiquitous-method blocklist.
fn name_fallback(
    name_index: &HashMap<&str, Vec<FnId>>,
    files: &[FileInput],
    name: &str,
    is_method: bool,
) -> Vec<FnId> {
    if UBIQUITOUS_METHODS.contains(&name) {
        return Vec::new();
    }
    let Some(hits) = name_index.get(name) else {
        return Vec::new();
    };
    let matching: Vec<FnId> = hits
        .iter()
        .copied()
        .filter(|&(f, n)| files[f].model.fns[n].has_receiver == is_method)
        .collect();
    // A method name shared by several types (e.g. `access` on every
    // buffer flavor) is how false edges happen: without the receiver's
    // type, linking to all candidates would blame the wrong impl. Free
    // fns tolerate a little ambiguity; methods must be unique.
    let cap = if is_method { 1 } else { AMBIGUITY_CAP };
    if matching.is_empty() || matching.len() > cap {
        return Vec::new();
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask;

    fn input(path: &str, src: &str) -> FileInput {
        let m = mask::mask(src);
        let exempt = crate::test_exempt_lines(&m.text);
        FileInput {
            path: path.to_string(),
            model: crate::parse::parse(&m.text, &m.comments, &exempt),
            panic_path: true,
            lock_discipline: true,
            atomic_order: true,
            strict_atomic: false,
            justified_panic_lines: Vec::new(),
        }
    }

    #[test]
    fn resolves_self_methods_and_qualified_calls() {
        let g = Graph::build(vec![input(
            "a.rs",
            "\
impl W {
    pub fn api(&self) { self.helper(); }
    fn helper(&self) { W::leaf(); }
    fn leaf() {}
}
",
        )]);
        let api = (0, 0);
        let targets = &g.callees(api)[0];
        assert_eq!(targets.len(), 1);
        assert_eq!(g.label(targets[0]), "W::helper");
        let helper = (0, 1);
        assert_eq!(g.label(g.callees(helper)[0][0]), "W::leaf");
    }

    #[test]
    fn resolves_through_field_types_across_files() {
        let a = input(
            "a.rs",
            "\
struct Outer { buffer: Arc<Inner> }
impl Outer {
    pub fn go(&self) { self.buffer.access(1); }
}
",
        );
        let b = input(
            "b.rs",
            "\
impl Inner {
    pub fn access(&self, p: u64) { let g = self.shards.lock(); }
}
",
        );
        let g = Graph::build(vec![a, b]);
        let go = (0, 0);
        let targets = &g.callees(go)[0];
        assert_eq!(targets.len(), 1, "{targets:?}");
        assert_eq!(g.label(targets[0]), "Inner::access");
        // And the summary propagates the lock acquisition.
        assert!(g.summary(go).acquires_lock.is_some());
    }

    #[test]
    fn ubiquitous_method_names_do_not_link() {
        let a = input("a.rs", "pub fn caller(x: &T) { x.clone(); x.get(0); }\n");
        let b = input(
            "b.rs",
            "\
impl Buf {
    pub fn clone(&self) { let g = self.m.lock(); }
    pub fn get(&self, i: usize) { let g = self.m.lock(); }
}
",
        );
        let g = Graph::build(vec![a, b]);
        let caller = (0, 0);
        assert!(g.callees(caller).iter().all(|t| t.is_empty()));
        assert!(g.summary(caller).acquires_lock.is_none());
    }

    #[test]
    fn summaries_reach_fixpoint_through_chains() {
        let g = Graph::build(vec![input(
            "a.rs",
            "\
fn a() { b(); }
fn b() { c(); }
fn c() {
    loop {
        step();
    }
}
",
        )]);
        let a = (0, 0);
        let s = g.summary(a);
        assert!(s.unbounded_loop.is_some());
        let chain = g.evidence_chain(a, |s| s.unbounded_loop);
        assert_eq!(chain, vec!["a", "b", "c"]);
    }

    #[test]
    fn test_fns_are_summary_inert() {
        let g = Graph::build(vec![input(
            "a.rs",
            "\
pub fn lib() { helper(); }
fn helper() {}
#[cfg(test)]
mod tests {
    fn t() { loop {} }
}
",
        )]);
        for &id in &g.fn_ids {
            assert!(g.summary(id).unbounded_loop.is_none(), "{}", g.label(id));
        }
    }
}
