//! The committed findings baseline: CI fails only on *new* findings.
//!
//! A baseline entry is a line-number-free key — `rule | path | message
//! with digit runs collapsed` — plus a multiplicity, so editing a file
//! (moving a finding to another line) does not churn the baseline,
//! while introducing an *additional* finding of the same shape does
//! trip it. The file format is plain text, one entry per line:
//!
//! ```text
//! <count>\t<rule>\t<path>\t<collapsed message>
//! ```
//!
//! sorted for stable diffs; `#`-prefixed lines are comments.
//! Regenerate with `cargo run -p stilint -- --write-baseline`.

use crate::Diagnostic;
use std::collections::BTreeMap;
use std::path::Path;

/// The default baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "stilint.baseline";

/// Collapse every digit run to `#` so line numbers, counts, and chain
/// positions embedded in messages don't make keys unstable.
fn collapse_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_run = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_run {
                out.push('#');
                in_run = true;
            }
        } else {
            in_run = false;
            out.push(c);
        }
    }
    out
}

/// The move-stable identity of one diagnostic.
pub fn key(d: &Diagnostic) -> String {
    format!(
        "{}\t{}\t{}",
        d.rule,
        d.path,
        collapse_digits(&d.message).replace(['\t', '\n'], " ")
    )
}

/// Load a baseline file into key -> count. A missing file is an empty
/// baseline; malformed lines are ignored rather than fatal so a hand
/// edit cannot brick the lint.
pub fn load(path: &Path) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((count, rest)) = line.split_once('\t') else {
            continue;
        };
        let Ok(count) = count.trim().parse::<usize>() else {
            continue;
        };
        *out.entry(rest.to_string()).or_insert(0) += count;
    }
    out
}

/// Serialize the baseline for `diags`.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(key(d)).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# stilint baseline: pre-existing findings, keyed without line numbers.\n\
         # Regenerate with `cargo run -p stilint -- --write-baseline`.\n",
    );
    for (k, c) in &counts {
        out.push_str(&format!("{c}\t{k}\n"));
    }
    out
}

/// Split `diags` into `(fresh, baselined)` against `baseline`. For each
/// key the first `count` occurrences (in the caller's sorted order) are
/// baselined; any beyond that are fresh.
pub fn partition(
    diags: Vec<Diagnostic>,
    baseline: &BTreeMap<String, usize>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut budget: BTreeMap<String, usize> = baseline.clone();
    let mut fresh = Vec::new();
    let mut old = Vec::new();
    for d in diags {
        let k = key(&d);
        match budget.get_mut(&k) {
            Some(n) if *n > 0 => {
                *n -= 1;
                old.push(d);
            }
            _ => fresh.push(d),
        }
    }
    (fresh, old)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, line: usize, rule: &str, message: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule: rule.to_string(),
            message: message.to_string(),
        }
    }

    #[test]
    fn keys_ignore_line_numbers_and_digit_runs() {
        let a = diag("a.rs", 10, "no_panic", "`v[3]` indexing at depth 2");
        let b = diag("a.rs", 99, "no_panic", "`v[17]` indexing at depth 4");
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn round_trip_and_partition() {
        let diags = vec![
            diag("a.rs", 1, "no_panic", "`x.unwrap()` bad"),
            diag("a.rs", 2, "no_panic", "`x.unwrap()` bad"),
            diag("b.rs", 3, "float_eq", "`==` on float"),
        ];
        let rendered = render(&diags);
        let dir = std::env::temp_dir().join("stilint-baseline-test");
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("baseline.txt");
        std::fs::write(&file, &rendered).expect("write temp baseline");
        let loaded = load(&file);

        // Identical findings: nothing fresh.
        let (fresh, old) = partition(diags.clone(), &loaded);
        assert!(fresh.is_empty(), "{fresh:?}");
        assert_eq!(old.len(), 3);

        // One more duplicate than baselined: exactly one fresh.
        let mut more = diags.clone();
        more.push(diag("a.rs", 7, "no_panic", "`x.unwrap()` bad"));
        let (fresh, old) = partition(more, &loaded);
        assert_eq!(fresh.len(), 1);
        assert_eq!(old.len(), 3);

        // A new shape is always fresh.
        let (fresh, _) = partition(vec![diag("c.rs", 1, "atomic_order", "new thing")], &loaded);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn missing_file_is_an_empty_baseline() {
        let loaded = load(Path::new("/nonexistent/stilint.baseline"));
        assert!(loaded.is_empty());
    }
}
