//! R6 `panic_path`: a public library fn must not transitively reach a
//! panic source (`panic!` family, `.unwrap()`/`.expect(`, slice/array
//! indexing) in non-test code.
//!
//! The rule BFSes forward from every `pub fn` entry point over the
//! workspace call graph, keeping one witness parent per reached fn so
//! each diagnostic can print the call chain. Reporting is per panic
//! *site* (deduplicated), located at the site:
//!
//! * a site in a fn only reachable through calls reports with the chain
//!   from its nearest entry point;
//! * `unwrap`/`expect`/panic-macro sites directly inside a `pub fn`
//!   are *not* reported — R1 `no_panic` already owns those lines —
//!   but direct indexing in a `pub fn` is (R1 cannot see it);
//! * sites whose line carries a justifying allow (`no_panic`,
//!   `no_io_unwrap`, or `panic_path`) are not panic sources at all.

use crate::graph::{FnId, Graph};
use crate::Diagnostic;
use std::collections::{HashMap, HashSet, VecDeque};

pub fn run(graph: &Graph) -> Vec<Diagnostic> {
    // BFS from all pub entries in panic_path-enabled files.
    let mut witness: HashMap<FnId, (FnId, usize)> = HashMap::new();
    let mut reached: HashSet<FnId> = HashSet::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &id in &graph.fn_ids {
        let f = graph.fn_item(id);
        if f.is_pub && !f.is_test && graph.files[id.0].panic_path {
            reached.insert(id);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        let caller = graph.fn_item(id);
        for (ci, targets) in graph.callees(id).iter().enumerate() {
            let line = caller.calls[ci].line;
            for &t in targets {
                if graph.fn_item(t).is_test {
                    continue;
                }
                if reached.insert(t) {
                    witness.insert(t, (id, line));
                    queue.push_back(t);
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut seen: HashSet<(usize, usize, String)> = HashSet::new();
    for &id in &graph.fn_ids {
        if !reached.contains(&id) {
            continue;
        }
        let file = &graph.files[id.0];
        if !file.panic_path {
            continue;
        }
        let f = graph.fn_item(id);
        let direct_entry = f.is_pub; // sites here are depth 0
        for site in &f.panics {
            if file.justified_panic_lines.contains(&site.line) {
                continue;
            }
            // R1 owns direct panic-family hits in the entry itself.
            if direct_entry && site.token != "indexing" && !witness.contains_key(&id) {
                continue;
            }
            if !seen.insert((id.0, site.line, site.what.clone())) {
                continue;
            }
            // Reconstruct the chain entry -> ... -> id from witnesses.
            let mut chain = vec![graph.label(id)];
            let mut cur = id;
            while let Some(&(parent, _)) = witness.get(&cur) {
                chain.push(graph.label(parent));
                cur = parent;
                if chain.len() > 6 {
                    break;
                }
            }
            chain.reverse();
            let entry = chain.first().cloned().unwrap_or_default();
            let what = if site.token == "indexing" {
                format!("`{}` indexing", site.what)
            } else {
                format!("`{}`", site.what)
            };
            let message = if chain.len() == 1 {
                format!(
                    "{what} can panic inside pub fn `{entry}`: handle the \
                     failure or add `// stilint::allow(panic_path, \"<invariant>\")`"
                )
            } else {
                format!(
                    "{what} can panic and is reachable from pub fn `{entry}` \
                     via {}: handle the failure or add \
                     `// stilint::allow(panic_path, \"<invariant>\")`",
                    chain.join(" -> ")
                )
            };
            out.push(Diagnostic {
                path: file.path.clone(),
                line: site.line,
                rule: "panic_path".to_string(),
                message,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileInput;
    use crate::mask;

    fn input(path: &str, src: &str) -> FileInput {
        let m = mask::mask(src);
        let exempt = crate::test_exempt_lines(&m.text);
        FileInput {
            path: path.to_string(),
            model: crate::parse::parse(&m.text, &m.comments, &exempt),
            panic_path: true,
            lock_discipline: true,
            atomic_order: true,
            strict_atomic: false,
            justified_panic_lines: Vec::new(),
        }
    }

    #[test]
    fn transitive_panic_two_calls_deep_reports_the_chain() {
        let g = Graph::build(vec![input(
            "crates/x/src/lib.rs",
            "\
pub fn api() { middle(); }
fn middle() { deepest(); }
fn deepest() { opt.unwrap(); }
",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(
            d[0].message.contains("api -> middle -> deepest"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains("pub fn `api`"));
    }

    #[test]
    fn direct_unwrap_in_pub_fn_is_r1s_business() {
        let g = Graph::build(vec![input(
            "crates/x/src/lib.rs",
            "pub fn api(o: Option<u32>) -> u32 { o.unwrap() }\n",
        )]);
        assert!(run(&g).is_empty());
    }

    #[test]
    fn direct_indexing_in_pub_fn_reports() {
        let g = Graph::build(vec![input(
            "crates/x/src/lib.rs",
            "pub fn api(v: &[u32]) -> u32 { v[0] }\n",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("indexing"), "{}", d[0].message);
    }

    #[test]
    fn unreachable_private_panic_is_silent() {
        let g = Graph::build(vec![input(
            "crates/x/src/lib.rs",
            "\
pub fn api() {}
fn orphan() { x.unwrap(); }
",
        )]);
        assert!(run(&g).is_empty());
    }

    #[test]
    fn justified_lines_are_not_sources() {
        let mut f = input(
            "crates/x/src/lib.rs",
            "\
pub fn api() { middle(); }
fn middle() { opt.unwrap(); }
",
        );
        f.justified_panic_lines.push(2);
        let g = Graph::build(vec![f]);
        assert!(run(&g).is_empty());
    }

    #[test]
    fn rule_off_files_do_not_report() {
        let mut f = input(
            "crates/x/src/lib.rs",
            "\
pub fn api() { middle(); }
fn middle() { opt.unwrap(); }
",
        );
        f.panic_path = false;
        let g = Graph::build(vec![f]);
        assert!(run(&g).is_empty());
    }
}
