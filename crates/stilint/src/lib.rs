//! `stilint` — the workspace's repo-specific static-analysis pass.
//!
//! A dependency-free line/token scanner (no `syn`; the build environment
//! is offline) enforcing rules the type system cannot express:
//!
//! * **R1 `no_panic`** — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` in non-test, non-bench library code.
//! * **R2 `float_eq`** — no `==`/`!=` on floating-point operands in
//!   `sti-geom` and `sti-costmodel` math.
//! * **R3 `narrowing_cast`** — no narrowing `as` casts on index/page
//!   arithmetic in `sti-storage` and `sti-pprtree`.
//! * **R4 `no_process_io`** — no `std::process::exit` or direct stdout
//!   writes in library crates.
//!
//! Any hit can be suppressed with a justified escape hatch on (or
//! immediately above) the offending line:
//!
//! ```text
//! // stilint::allow(no_panic, "pages written by this tree always decode")
//! ```
//!
//! Allows without a reason string, with an unknown rule name, or that no
//! longer suppress anything are themselves diagnostics, so the allowlist
//! cannot rot.

pub mod mask;
pub mod rules;

use mask::Comment;
use rules::{Finding, RuleId};
use std::path::{Path, PathBuf};

/// One diagnostic: a rule hit or a broken allow directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (or `bad_allow` / `unused_allow`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    pub no_panic: bool,
    pub float_eq: bool,
    pub narrowing_cast: bool,
    pub no_process_io: bool,
    pub no_io_unwrap: bool,
}

impl FileClass {
    /// A file no rule applies to.
    pub const SKIP: FileClass = FileClass {
        no_panic: false,
        float_eq: false,
        narrowing_cast: false,
        no_process_io: false,
        no_io_unwrap: false,
    };

    fn is_skip(&self) -> bool {
        !(self.no_panic
            || self.float_eq
            || self.narrowing_cast
            || self.no_process_io
            || self.no_io_unwrap)
    }

    fn applies(&self, rule: RuleId) -> bool {
        match rule {
            RuleId::NoPanic => self.no_panic,
            RuleId::FloatEq => self.float_eq,
            RuleId::NarrowingCast => self.narrowing_cast,
            RuleId::NoProcessIo => self.no_process_io,
            RuleId::NoIoUnwrap => self.no_io_unwrap,
        }
    }
}

/// Classify a workspace-relative path (forward slashes).
///
/// * Vendored offline stand-ins (`crates/rand`, `crates/proptest`,
///   `crates/criterion`) mirror external crates' APIs — including their
///   panicking contracts — and are exempt wholesale.
/// * `crates/bench`, `src/bin`, `tests/`, `benches/`, `examples/` are
///   binaries or test code: measurement and test harnesses may panic and
///   print.
/// * `crates/stilint` itself is a tool crate: panic-freedom applies
///   (dogfood), terminal I/O is its job.
/// * Everything else under `crates/*/src` or `src/` is library code.
pub fn classify(rel: &str) -> FileClass {
    if !rel.ends_with(".rs") {
        return FileClass::SKIP;
    }
    for vendored in ["crates/rand/", "crates/proptest/", "crates/criterion/"] {
        if rel.starts_with(vendored) {
            return FileClass::SKIP;
        }
    }
    let test_or_bin = rel.starts_with("crates/bench/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.starts_with("src/bin/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/");
    if test_or_bin {
        return FileClass::SKIP;
    }
    if rel.starts_with("crates/stilint/") {
        return FileClass {
            no_panic: true,
            float_eq: false,
            narrowing_cast: false,
            no_process_io: false,
            no_io_unwrap: false,
        };
    }
    let library = rel.starts_with("src/") || rel.starts_with("crates/");
    if !library {
        return FileClass::SKIP;
    }
    FileClass {
        no_panic: true,
        float_eq: rel.starts_with("crates/geom/") || rel.starts_with("crates/costmodel/"),
        narrowing_cast: rel.starts_with("crates/storage/") || rel.starts_with("crates/pprtree/"),
        no_process_io: true,
        no_io_unwrap: rel.starts_with("crates/storage/")
            || rel.starts_with("crates/pprtree/")
            || rel.starts_with("crates/hrtree/")
            || rel.starts_with("crates/rstar/"),
    }
}

/// A parsed `stilint::allow` directive.
#[derive(Debug, Clone)]
struct Allow {
    rule: RuleId,
    /// Line the directive's comment starts on.
    comment_line: usize,
    /// Line whose findings it suppresses.
    target_line: usize,
    used: bool,
}

/// Parse the directives out of the captured comments. Malformed ones
/// become diagnostics immediately.
fn parse_allows(
    comments: &[Comment],
    code_lines: &[bool],
    path: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // A directive is a plain `//` comment that begins with the
        // directive itself; doc comments and prose that merely *mention*
        // `stilint::allow` are not directives.
        let body = c.text.trim_start_matches('/').trim_start();
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        if !body.starts_with("stilint::allow") {
            continue;
        }
        let rest = &body["stilint::allow".len()..];
        let bad = |msg: String, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: c.line,
                rule: "bad_allow".to_string(),
                message: msg,
            });
        };
        let Some(open) = rest.find('(') else {
            bad(
                "malformed directive: expected `stilint::allow(rule, \"reason\")`".to_string(),
                diags,
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed directive: missing `)`".to_string(), diags);
            continue;
        };
        if close < open {
            bad("malformed directive: `)` before `(`".to_string(), diags);
            continue;
        }
        let inner = &rest[open + 1..close];
        let (rule_name, reason) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => (inner.trim(), ""),
        };
        let Some(rule) = RuleId::parse(rule_name) else {
            let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.name()).collect();
            bad(
                format!(
                    "unknown rule `{rule_name}` (known rules: {})",
                    known.join(", ")
                ),
                diags,
            );
            continue;
        };
        let unquoted = reason.trim_matches('"').trim();
        if !reason.starts_with('"') || unquoted.is_empty() {
            bad(
                format!(
                    "allow for `{}` needs a non-empty quoted reason: \
                     `stilint::allow({}, \"why this is safe\")`",
                    rule.name(),
                    rule.name()
                ),
                diags,
            );
            continue;
        }
        // Trailing comment suppresses its own line; a standalone comment
        // suppresses the next line that holds code.
        let target_line = if c.trailing {
            c.line
        } else {
            let mut t = c.line; // 1-based; code_lines is 0-based
            while t < code_lines.len() && !code_lines[t] {
                t += 1;
            }
            t + 1
        };
        allows.push(Allow {
            rule,
            comment_line: c.line,
            target_line,
            used: false,
        });
    }
    allows
}

/// Mark the 1-based lines covered by `#[cfg(test)]` / `#[test]` /
/// `#[bench]`-gated items in the masked text.
fn test_exempt_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut exempt = vec![false; line_count + 2];
    let bytes = masked.as_bytes();

    // Byte offset -> 1-based line number, cheap via prefix scan.
    let mut line_of = vec![1usize; bytes.len() + 1];
    let mut ln = 1usize;
    for (i, &b) in bytes.iter().enumerate() {
        line_of[i] = ln;
        if b == b'\n' {
            ln += 1;
        }
    }
    line_of[bytes.len()] = ln;

    let mut mark = |from: usize, to: usize| {
        let (a, b) = (line_of[from.min(bytes.len())], line_of[to.min(bytes.len())]);
        for line in exempt.iter_mut().take(b + 1).skip(a) {
            *line = true;
        }
    };

    let mut search_from = 0;
    while let Some(rel) = masked[search_from..].find("#[") {
        let attr_at = search_from + rel;
        search_from = attr_at + 2;
        let rest = &masked[attr_at..];
        let Some(attr_close) = rest.find(']') else {
            continue;
        };
        let attr = &rest[..attr_close + 1];
        let compact: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
        let is_test_attr = compact == "#[test]"
            || compact == "#[bench]"
            || compact.starts_with("#[cfg(test")
            || compact.starts_with("#[cfg(all(test")
            || compact.starts_with("#[cfg(any(test");
        if !is_test_attr {
            continue;
        }
        // Exempt from the attribute through the end of the following item:
        // the block opened by the next `{` (or just the attribute line for
        // path-form `mod tests;`).
        let body = &masked[attr_at + attr.len()..];
        let brace = body.find('{');
        let semi = body.find(';');
        let open = match (brace, semi) {
            (Some(b), Some(s)) if s < b => {
                mark(attr_at, attr_at + attr.len() + s);
                continue;
            }
            (Some(b), _) => attr_at + attr.len() + b,
            (None, Some(s)) => {
                mark(attr_at, attr_at + attr.len() + s);
                continue;
            }
            (None, None) => continue,
        };
        let mut depth = 0usize;
        let mut end = open;
        for (off, ch) in masked[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        mark(attr_at, end);
    }
    exempt
}

/// Scan one file's source, returning its diagnostics.
pub fn scan_source(rel_path: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if class.is_skip() {
        return diags;
    }
    let masked = mask::mask(src);
    // Byte-index the masked text safely: non-ASCII can only sit in
    // identifiers after masking; blank it for the rule matchers.
    let ascii: String = masked
        .text
        .chars()
        .map(|c| if c.is_ascii() { c } else { ' ' })
        .collect();
    let exempt = test_exempt_lines(&ascii);
    let code_lines: Vec<bool> = ascii.lines().map(|l| !l.trim().is_empty()).collect();
    let mut allows = parse_allows(&masked.comments, &code_lines, rel_path, &mut diags);

    for (idx, line) in ascii.lines().enumerate() {
        let line_no = idx + 1;
        if exempt.get(line_no).copied().unwrap_or(false) {
            continue;
        }
        let mut findings: Vec<Finding> = Vec::new();
        if class.applies(RuleId::NoPanic) {
            findings.extend(rules::check_no_panic(line));
        }
        if class.applies(RuleId::NoIoUnwrap) {
            let io = rules::check_no_io_unwrap(line);
            if !io.is_empty() {
                // The specific rule owns the line: a storage-I/O unwrap
                // is one defect, not two, so the generic no_panic hits
                // for the same `.unwrap()`/`.expect(` tokens step aside
                // (panic!/unreachable! and friends still report).
                findings.retain(|f| {
                    f.rule != RuleId::NoPanic
                        || !(f.message.starts_with("`.unwrap()`")
                            || f.message.starts_with("`.expect`"))
                });
            }
            findings.extend(io);
        }
        if class.applies(RuleId::FloatEq) {
            findings.extend(rules::check_float_eq(line));
        }
        if class.applies(RuleId::NarrowingCast) {
            findings.extend(rules::check_narrowing_cast(line));
        }
        if class.applies(RuleId::NoProcessIo) {
            findings.extend(rules::check_no_process_io(line));
        }
        for f in findings {
            let allowed = allows
                .iter_mut()
                .find(|a| a.rule == f.rule && a.target_line == line_no);
            if let Some(a) = allowed {
                a.used = true;
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_no,
                rule: f.rule.name().to_string(),
                message: f.message,
            });
        }
    }

    for a in &allows {
        if !a.used {
            // Allows inside test-exempt regions are noise, not load-bearing.
            let target_exempt = exempt.get(a.target_line).copied().unwrap_or(false)
                || exempt.get(a.comment_line).copied().unwrap_or(false);
            let rule_active = class.applies(a.rule);
            if !target_exempt && rule_active {
                diags.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: a.comment_line,
                    rule: "unused_allow".to_string(),
                    message: format!(
                        "`stilint::allow({})` no longer suppresses anything; remove it",
                        a.rule.name()
                    ),
                });
            }
        }
    }
    diags
}

/// Collect the `.rs` files to scan under `root` (workspace-relative,
/// sorted for deterministic output).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "target" || name == ".git" || name == ".github" {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = collect_files(root)?;
    let mut diags = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let class = classify(&rel);
        if class.is_skip() {
            continue;
        }
        scanned += 1;
        let src = std::fs::read_to_string(file)?;
        diags.extend(scan_source(&rel, &src, class));
    }
    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok((diags, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileClass = FileClass {
        no_panic: true,
        float_eq: true,
        narrowing_cast: true,
        no_process_io: true,
        no_io_unwrap: true,
    };

    #[test]
    fn classification_matrix() {
        let geom = classify("crates/geom/src/rect2.rs");
        assert!(geom.no_panic && geom.float_eq && !geom.narrowing_cast);
        let storage = classify("crates/storage/src/codec.rs");
        assert!(storage.no_panic && storage.narrowing_cast && !storage.float_eq);
        assert!(storage.no_io_unwrap);
        assert!(classify("crates/pprtree/src/tree.rs").no_io_unwrap);
        assert!(classify("crates/hrtree/src/tree.rs").no_io_unwrap);
        assert!(classify("crates/rstar/src/knn.rs").no_io_unwrap);
        assert!(!classify("crates/core/src/tuning.rs").no_io_unwrap);
        assert!(!classify("crates/geom/src/rect2.rs").no_io_unwrap);
        assert_eq!(classify("crates/rand/src/lib.rs"), FileClass::SKIP);
        assert_eq!(classify("crates/bench/src/bin/fig11.rs"), FileClass::SKIP);
        assert_eq!(classify("src/bin/stidx.rs"), FileClass::SKIP);
        assert_eq!(classify("tests/cli.rs"), FileClass::SKIP);
        assert_eq!(classify("crates/pprtree/benches/x.rs"), FileClass::SKIP);
        assert!(classify("src/lib.rs").no_panic);
        let tool = classify("crates/stilint/src/rules.rs");
        assert!(tool.no_panic && !tool.no_process_io);
    }

    #[test]
    fn flags_unwrap_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { y.unwrap(); }\n\
                   }\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].rule, "no_panic");
    }

    #[test]
    fn doc_comments_and_strings_do_not_fire() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn f() { let s = \"panic!\"; }\n";
        assert!(scan_source("crates/geom/src/a.rs", src, LIB).is_empty());
    }

    #[test]
    fn allow_suppresses_same_line_and_next_line() {
        let src = "fn f() {\n\
                   x.unwrap(); // stilint::allow(no_panic, \"checked above\")\n\
                   // stilint::allow(no_panic, \"invariant: y is Some\")\n\
                   y.unwrap();\n\
                   }\n";
        assert!(scan_source("crates/geom/src/a.rs", src, LIB).is_empty());
    }

    #[test]
    fn allow_requires_reason_and_known_rule() {
        let src = "// stilint::allow(no_panic)\nx.unwrap();\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert!(d.iter().any(|d| d.rule == "bad_allow"));
        assert!(d.iter().any(|d| d.rule == "no_panic"), "not suppressed");

        let src2 = "// stilint::allow(no_such_rule, \"reason\")\nx.unwrap();\n";
        let d2 = scan_source("crates/geom/src/a.rs", src2, LIB);
        assert!(d2.iter().any(|d| d.rule == "bad_allow"));
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// stilint::allow(no_panic, \"was needed once\")\nlet x = 1;\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unused_allow");
    }

    #[test]
    fn allow_is_rule_scoped() {
        let src = "// stilint::allow(float_eq, \"bit-exact sentinel\")\nx.unwrap();\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert!(d.iter().any(|d| d.rule == "no_panic"), "{d:?}");
    }

    #[test]
    fn cfg_test_block_exempts_to_closing_brace_only() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { y.unwrap(); }\n\
                   }\n\
                   fn after() { z.unwrap(); }\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn float_eq_only_in_configured_crates() {
        let src = "fn f(a: f64) -> bool { a == 0.25 }\n";
        let in_geom = scan_source(
            "crates/geom/src/a.rs",
            src,
            classify("crates/geom/src/a.rs"),
        );
        assert!(in_geom.iter().any(|d| d.rule == "float_eq"));
        let in_core = scan_source(
            "crates/core/src/a.rs",
            src,
            classify("crates/core/src/a.rs"),
        );
        assert!(in_core.iter().all(|d| d.rule != "float_eq"));
    }

    #[test]
    fn io_unwrap_owns_storage_lines_and_no_panic_keeps_the_rest() {
        // A storage-I/O unwrap reports once, under the specific rule.
        let src = "fn f() { let r = self.store.read(p).unwrap(); }\n";
        let d = scan_source("crates/storage/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "no_io_unwrap");

        // A non-I/O unwrap in the same class still reports as no_panic.
        let src2 = "fn f() { map.get(&k).unwrap(); }\n";
        let d2 = scan_source("crates/storage/src/a.rs", src2, LIB);
        assert_eq!(d2.len(), 1, "{d2:?}");
        assert_eq!(d2[0].rule, "no_panic");

        // panic! on an I/O line is still no_panic's business.
        let src3 = "fn f() { self.store.read(p).unwrap_or_else(|_| panic!()); }\n";
        let d3 = scan_source("crates/storage/src/a.rs", src3, LIB);
        assert_eq!(d3.len(), 1, "{d3:?}");
        assert_eq!(d3[0].rule, "no_panic");

        // An allow for the specific rule silences the line completely.
        let src4 = "// stilint::allow(no_io_unwrap, \"bootstrap pages always exist\")\n\
                    fn f() { let r = self.store.read(p).unwrap(); }\n";
        assert!(scan_source("crates/storage/src/a.rs", src4, LIB).is_empty());
    }

    #[test]
    fn narrowing_cast_fires_in_storage_class_files() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\n";
        let d = scan_source(
            "crates/storage/src/a.rs",
            src,
            classify("crates/storage/src/a.rs"),
        );
        assert!(d.iter().any(|d| d.rule == "narrowing_cast"));
    }
}
