//! `stilint` — the workspace's repo-specific static-analysis pass.
//!
//! A dependency-free analyzer (no `syn`; the build environment is
//! offline) enforcing rules the type system cannot express. Phase 1
//! masks each file (`mask`), runs the per-line rules, and parses an
//! item model (`parse`); phase 2 links the models into a workspace
//! call graph (`graph`) and runs the interprocedural rules:
//!
//! * **R1 `no_panic`** — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` in non-test, non-bench library code.
//! * **R2 `float_eq`** — no `==`/`!=` on floating-point operands in
//!   `sti-geom` and `sti-costmodel` math.
//! * **R3 `narrowing_cast`** — no narrowing `as` casts on index/page
//!   arithmetic in `sti-storage` and `sti-pprtree`.
//! * **R4 `no_process_io`** — no `std::process::exit` or direct stdout
//!   writes in library crates.
//! * **R5 `no_io_unwrap`** — no `.unwrap()`/`.expect(` on storage-I/O
//!   results.
//! * **R6 `panic_path`** — a `pub fn` must not transitively reach a
//!   panic source; diagnostics carry the call chain.
//! * **R7 `lock_discipline`** — no backend I/O, second lock
//!   acquisition, or unbounded `loop` while a lock guard is live.
//! * **R8 `atomic_order`** — every atomic op names an explicit
//!   `Ordering` with a `// ordering:` justification; `Relaxed` is
//!   forbidden on the publication pointer path.
//!
//! Any hit can be suppressed with a justified escape hatch on (or
//! immediately above) the offending line:
//!
//! ```text
//! // stilint::allow(no_panic, "pages written by this tree always decode")
//! ```
//!
//! Allows without a reason string, with an unknown rule name, or that no
//! longer suppress anything are themselves diagnostics, so the allowlist
//! cannot rot. Pre-existing findings live in the committed
//! `stilint.baseline` at the workspace root (see `baseline`): the CLI
//! fails only on findings the baseline does not absorb.

pub mod atomic_order;
pub mod baseline;
pub mod graph;
pub mod json;
pub mod lock_discipline;
pub mod mask;
pub mod panic_path;
pub mod parse;
pub mod rules;

use graph::{FileInput, Graph};
use mask::Comment;
use rules::{Finding, RuleId};
use std::path::{Path, PathBuf};

/// One diagnostic: a rule hit or a broken allow directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (or `bad_allow` / `unused_allow`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    pub no_panic: bool,
    pub float_eq: bool,
    pub narrowing_cast: bool,
    pub no_process_io: bool,
    pub no_io_unwrap: bool,
    pub panic_path: bool,
    pub lock_discipline: bool,
    pub atomic_order: bool,
    /// `Ordering::Relaxed` forbidden (the publication pointer path).
    /// A modifier on `atomic_order`, not a rule of its own.
    pub strict_atomic: bool,
}

impl FileClass {
    /// A file no rule applies to.
    pub const SKIP: FileClass = FileClass {
        no_panic: false,
        float_eq: false,
        narrowing_cast: false,
        no_process_io: false,
        no_io_unwrap: false,
        panic_path: false,
        lock_discipline: false,
        atomic_order: false,
        strict_atomic: false,
    };

    fn is_skip(&self) -> bool {
        !(self.no_panic
            || self.float_eq
            || self.narrowing_cast
            || self.no_process_io
            || self.no_io_unwrap
            || self.panic_path
            || self.lock_discipline
            || self.atomic_order)
    }

    fn applies(&self, rule: RuleId) -> bool {
        match rule {
            RuleId::NoPanic => self.no_panic,
            RuleId::FloatEq => self.float_eq,
            RuleId::NarrowingCast => self.narrowing_cast,
            RuleId::NoProcessIo => self.no_process_io,
            RuleId::NoIoUnwrap => self.no_io_unwrap,
            RuleId::PanicPath => self.panic_path,
            RuleId::LockDiscipline => self.lock_discipline,
            RuleId::AtomicOrder => self.atomic_order,
        }
    }
}

/// The full classification verdict for a path: lint it, skip it for a
/// stated reason, or flag it as a file the matrix does not know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Library code: lint with these rules.
    Lint(FileClass),
    /// Deliberately out of scope (vendored stand-in, test, bench, bin).
    Exempt(&'static str),
    /// An `.rs` file the matrix has no entry for — surfaced as a
    /// diagnostic so new top-level locations get a conscious decision.
    Unknown,
}

/// Classify a workspace-relative path (forward slashes).
///
/// * Vendored offline stand-ins (`crates/rand`, `crates/proptest`,
///   `crates/criterion`) mirror external crates' APIs — including their
///   panicking contracts — and are exempt wholesale.
/// * `crates/bench`, `src/bin`, `tests/`, `benches/`, `examples/` are
///   binaries or test code: measurement and test harnesses may panic and
///   print.
/// * `crates/stilint` itself is a tool crate: panic-freedom applies
///   (dogfood), terminal I/O is its job, and `panic_path` is off — its
///   parser indexes its own token buffers heavily and every index is
///   bounds-derived.
/// * Everything else under `crates/*/src` or `src/` is library code.
///   `strict_atomic` marks the snapshot-publication files in
///   `crates/core`.
/// * Any other `.rs` file is `Unknown` and reported, so a new top-level
///   directory can't silently dodge the lint.
pub fn classify_full(rel: &str) -> Classification {
    if !rel.ends_with(".rs") {
        return Classification::Exempt("not a Rust source file");
    }
    for vendored in ["crates/rand/", "crates/proptest/", "crates/criterion/"] {
        if rel.starts_with(vendored) {
            return Classification::Exempt("vendored offline stand-in");
        }
    }
    let test_or_bin = rel.starts_with("crates/bench/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.starts_with("src/bin/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/");
    if test_or_bin {
        return Classification::Exempt("test, bench, or binary harness");
    }
    if rel.starts_with("crates/stilint/") {
        return Classification::Lint(FileClass {
            no_panic: true,
            float_eq: false,
            narrowing_cast: false,
            no_process_io: false,
            no_io_unwrap: false,
            panic_path: false,
            lock_discipline: true,
            atomic_order: true,
            strict_atomic: false,
        });
    }
    let library = rel.starts_with("src/") || rel.starts_with("crates/");
    if !library {
        return Classification::Unknown;
    }
    Classification::Lint(FileClass {
        no_panic: true,
        float_eq: rel.starts_with("crates/geom/") || rel.starts_with("crates/costmodel/"),
        narrowing_cast: rel.starts_with("crates/storage/") || rel.starts_with("crates/pprtree/"),
        no_process_io: true,
        no_io_unwrap: rel.starts_with("crates/storage/")
            || rel.starts_with("crates/pprtree/")
            || rel.starts_with("crates/hrtree/")
            || rel.starts_with("crates/rstar/")
            || rel == "crates/core/src/recover.rs",
        panic_path: true,
        lock_discipline: true,
        atomic_order: true,
        strict_atomic: rel == "crates/core/src/version.rs" || rel == "crates/core/src/pipeline.rs",
    })
}

/// The rule set for a path, with skip reasons flattened away. Kept for
/// callers that only care whether rules apply.
pub fn classify(rel: &str) -> FileClass {
    match classify_full(rel) {
        Classification::Lint(c) => c,
        Classification::Exempt(_) | Classification::Unknown => FileClass::SKIP,
    }
}

/// A parsed `stilint::allow` directive.
#[derive(Debug, Clone)]
struct Allow {
    rule: RuleId,
    /// Line the directive's comment starts on.
    comment_line: usize,
    /// Line whose findings it suppresses.
    target_line: usize,
    used: bool,
}

/// Parse the directives out of the captured comments. Malformed ones
/// become diagnostics immediately.
fn parse_allows(
    comments: &[Comment],
    code_lines: &[bool],
    path: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // A directive is a plain `//` comment that begins with the
        // directive itself; doc comments and prose that merely *mention*
        // `stilint::allow` are not directives.
        let body = c.text.trim_start_matches('/').trim_start();
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        if !body.starts_with("stilint::allow") {
            continue;
        }
        let rest = &body["stilint::allow".len()..];
        let bad = |msg: String, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: c.line,
                rule: "bad_allow".to_string(),
                message: msg,
            });
        };
        let Some(open) = rest.find('(') else {
            bad(
                "malformed directive: expected `stilint::allow(rule, \"reason\")`".to_string(),
                diags,
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed directive: missing `)`".to_string(), diags);
            continue;
        };
        if close < open {
            bad("malformed directive: `)` before `(`".to_string(), diags);
            continue;
        }
        let inner = &rest[open + 1..close];
        let (rule_name, reason) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => (inner.trim(), ""),
        };
        let Some(rule) = RuleId::parse(rule_name) else {
            let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.name()).collect();
            bad(
                format!(
                    "unknown rule `{rule_name}` (known rules: {})",
                    known.join(", ")
                ),
                diags,
            );
            continue;
        };
        let unquoted = reason.trim_matches('"').trim();
        if !reason.starts_with('"') || unquoted.is_empty() {
            bad(
                format!(
                    "allow for `{}` needs a non-empty quoted reason: \
                     `stilint::allow({}, \"why this is safe\")`",
                    rule.name(),
                    rule.name()
                ),
                diags,
            );
            continue;
        }
        // Trailing comment suppresses its own line; a standalone comment
        // suppresses the next line that holds code.
        let target_line = if c.trailing {
            c.line
        } else {
            let mut t = c.line; // 1-based; code_lines is 0-based
            while t < code_lines.len() && !code_lines[t] {
                t += 1;
            }
            t + 1
        };
        allows.push(Allow {
            rule,
            comment_line: c.line,
            target_line,
            used: false,
        });
    }
    allows
}

/// Mark the 1-based lines covered by `#[cfg(test)]` / `#[test]` /
/// `#[bench]`-gated items in the masked text.
fn test_exempt_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut exempt = vec![false; line_count + 2];
    let bytes = masked.as_bytes();

    // Byte offset -> 1-based line number, cheap via prefix scan.
    let mut line_of = vec![1usize; bytes.len() + 1];
    let mut ln = 1usize;
    for (i, &b) in bytes.iter().enumerate() {
        line_of[i] = ln;
        if b == b'\n' {
            ln += 1;
        }
    }
    line_of[bytes.len()] = ln;

    let mut mark = |from: usize, to: usize| {
        let (a, b) = (line_of[from.min(bytes.len())], line_of[to.min(bytes.len())]);
        for line in exempt.iter_mut().take(b + 1).skip(a) {
            *line = true;
        }
    };

    let mut search_from = 0;
    while let Some(rel) = masked[search_from..].find("#[") {
        let attr_at = search_from + rel;
        search_from = attr_at + 2;
        let rest = &masked[attr_at..];
        let Some(attr_close) = rest.find(']') else {
            continue;
        };
        let attr = &rest[..attr_close + 1];
        let compact: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
        let is_test_attr = compact == "#[test]"
            || compact == "#[bench]"
            || compact.starts_with("#[cfg(test")
            || compact.starts_with("#[cfg(all(test")
            || compact.starts_with("#[cfg(any(test");
        if !is_test_attr {
            continue;
        }
        // Exempt from the attribute through the end of the following item:
        // the block opened by the next `{` (or just the attribute line for
        // path-form `mod tests;`).
        let body = &masked[attr_at + attr.len()..];
        let brace = body.find('{');
        let semi = body.find(';');
        let open = match (brace, semi) {
            (Some(b), Some(s)) if s < b => {
                mark(attr_at, attr_at + attr.len() + s);
                continue;
            }
            (Some(b), _) => attr_at + attr.len() + b,
            (None, Some(s)) => {
                mark(attr_at, attr_at + attr.len() + s);
                continue;
            }
            (None, None) => continue,
        };
        let mut depth = 0usize;
        let mut end = open;
        for (off, ch) in masked[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        mark(attr_at, end);
    }
    exempt
}

/// Per-file state carried from the line pass into the graph pass.
struct FileScan {
    path: String,
    class: FileClass,
    diags: Vec<Diagnostic>,
    allows: Vec<Allow>,
    exempt: Vec<bool>,
}

/// Scan a batch of files as one unit: phase 1 runs the per-line rules
/// and parses each file's item model; phase 2 links the models into a
/// workspace call graph and runs the interprocedural rules (R6–R8).
/// Files must be passed together for cross-file call chains to resolve.
pub fn scan_sources(files: &[(&str, &str, FileClass)]) -> Vec<Diagnostic> {
    let mut scans: Vec<FileScan> = Vec::new();
    let mut inputs: Vec<FileInput> = Vec::new();

    for &(rel_path, src, class) in files {
        if class.is_skip() {
            continue;
        }
        let mut diags = Vec::new();
        let masked = mask::mask(src);
        // Byte-index the masked text safely: non-ASCII can only sit in
        // identifiers after masking; blank it for the rule matchers.
        let ascii: String = masked
            .text
            .chars()
            .map(|c| if c.is_ascii() { c } else { ' ' })
            .collect();
        let exempt = test_exempt_lines(&ascii);
        let code_lines: Vec<bool> = ascii.lines().map(|l| !l.trim().is_empty()).collect();
        let mut allows = parse_allows(&masked.comments, &code_lines, rel_path, &mut diags);

        for (idx, line) in ascii.lines().enumerate() {
            let line_no = idx + 1;
            if exempt.get(line_no).copied().unwrap_or(false) {
                continue;
            }
            let mut findings: Vec<Finding> = Vec::new();
            if class.applies(RuleId::NoPanic) {
                findings.extend(rules::check_no_panic(line));
            }
            if class.applies(RuleId::NoIoUnwrap) {
                let io = rules::check_no_io_unwrap(line);
                if !io.is_empty() {
                    // The specific rule owns the line: a storage-I/O unwrap
                    // is one defect, not two, so the generic no_panic hits
                    // for the same `.unwrap()`/`.expect(` tokens step aside
                    // (panic!/unreachable! and friends still report).
                    findings.retain(|f| {
                        f.rule != RuleId::NoPanic
                            || !(f.message.starts_with("`.unwrap()`")
                                || f.message.starts_with("`.expect`"))
                    });
                }
                findings.extend(io);
            }
            if class.applies(RuleId::FloatEq) {
                findings.extend(rules::check_float_eq(line));
            }
            if class.applies(RuleId::NarrowingCast) {
                findings.extend(rules::check_narrowing_cast(line));
            }
            if class.applies(RuleId::NoProcessIo) {
                findings.extend(rules::check_no_process_io(line));
            }
            for f in findings {
                let allowed = allows
                    .iter_mut()
                    .find(|a| a.rule == f.rule && a.target_line == line_no);
                if let Some(a) = allowed {
                    a.used = true;
                    continue;
                }
                diags.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: line_no,
                    rule: f.rule.name().to_string(),
                    message: f.message,
                });
            }
        }

        let model = parse::parse(&ascii, &masked.comments, &exempt);

        // A line-level allow (no_panic / no_io_unwrap) or an explicit
        // panic_path allow on a panic site also excuses it as a
        // transitive R6 source: the stated invariant covers every path
        // through the line, not just the direct one.
        let justified_panic_lines: Vec<usize> = allows
            .iter()
            .filter(|a| {
                matches!(
                    a.rule,
                    RuleId::NoPanic | RuleId::NoIoUnwrap | RuleId::PanicPath
                )
            })
            .map(|a| a.target_line)
            .collect();

        // panic_path allows are consumed here, not by diagnostic
        // matching: the excused site never produces an R6 finding, so
        // "used" means "there is a panic site on the target line".
        if class.panic_path {
            for a in allows.iter_mut().filter(|a| a.rule == RuleId::PanicPath) {
                let covers_site = model
                    .fns
                    .iter()
                    .any(|f| f.panics.iter().any(|p| p.line == a.target_line));
                if covers_site {
                    a.used = true;
                }
            }
        }

        inputs.push(FileInput {
            path: rel_path.to_string(),
            model,
            panic_path: class.panic_path,
            lock_discipline: class.lock_discipline,
            atomic_order: class.atomic_order,
            strict_atomic: class.strict_atomic,
            justified_panic_lines,
        });
        scans.push(FileScan {
            path: rel_path.to_string(),
            class,
            diags,
            allows,
            exempt,
        });
    }

    let graph = Graph::build(inputs);
    let mut graph_diags = Vec::new();
    graph_diags.extend(panic_path::run(&graph));
    graph_diags.extend(lock_discipline::run(&graph));
    graph_diags.extend(atomic_order::run(&graph));

    let index: std::collections::HashMap<String, usize> = scans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.path.clone(), i))
        .collect();
    for d in graph_diags {
        let Some(&i) = index.get(d.path.as_str()) else {
            continue;
        };
        let scan = &mut scans[i];
        let rule = RuleId::parse(&d.rule);
        let allowed = scan
            .allows
            .iter_mut()
            .find(|a| Some(a.rule) == rule && a.target_line == d.line);
        if let Some(a) = allowed {
            a.used = true;
            continue;
        }
        scan.diags.push(d);
    }

    let mut out = Vec::new();
    for scan in scans {
        let class = scan.class;
        for a in &scan.allows {
            if !a.used {
                // Allows inside test-exempt regions are noise, not load-bearing.
                let target_exempt = scan.exempt.get(a.target_line).copied().unwrap_or(false)
                    || scan.exempt.get(a.comment_line).copied().unwrap_or(false);
                let rule_active = class.applies(a.rule);
                if !target_exempt && rule_active {
                    out.push(Diagnostic {
                        path: scan.path.clone(),
                        line: a.comment_line,
                        rule: "unused_allow".to_string(),
                        message: format!(
                            "`stilint::allow({})` no longer suppresses anything; remove it",
                            a.rule.name()
                        ),
                    });
                }
            }
        }
        out.extend(scan.diags);
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    out
}

/// Scan one file's source, returning its diagnostics. Cross-file call
/// chains cannot resolve here; use [`scan_sources`] for a whole batch.
pub fn scan_source(rel_path: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
    scan_sources(&[(rel_path, src, class)])
}

/// Collect the `.rs` files to scan under `root` (workspace-relative,
/// sorted for deterministic output).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "target" || name == ".git" || name == ".github" {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan the whole workspace rooted at `root`. Every linted file goes
/// through one [`scan_sources`] batch so the call graph spans the
/// workspace; `.rs` files the classification matrix does not know are
/// reported as `unclassified_file`.
pub fn scan_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = collect_files(root)?;
    let mut diags = Vec::new();
    let mut sources: Vec<(String, String, FileClass)> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match classify_full(&rel) {
            Classification::Exempt(_) => continue,
            Classification::Unknown => diags.push(Diagnostic {
                path: rel,
                line: 1,
                rule: "unclassified_file".to_string(),
                message: "no classification entry for this file; decide its rule set \
                          in stilint's `classify_full` matrix"
                    .to_string(),
            }),
            Classification::Lint(class) => {
                if class.is_skip() {
                    continue;
                }
                sources.push((rel, std::fs::read_to_string(file)?, class));
            }
        }
    }
    let scanned = sources.len();
    let refs: Vec<(&str, &str, FileClass)> = sources
        .iter()
        .map(|(p, s, c)| (p.as_str(), s.as_str(), *c))
        .collect();
    diags.extend(scan_sources(&refs));
    diags.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok((diags, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileClass = FileClass {
        no_panic: true,
        float_eq: true,
        narrowing_cast: true,
        no_process_io: true,
        no_io_unwrap: true,
        panic_path: true,
        lock_discipline: true,
        atomic_order: true,
        strict_atomic: false,
    };

    #[test]
    fn classification_matrix() {
        let geom = classify("crates/geom/src/rect2.rs");
        assert!(geom.no_panic && geom.float_eq && !geom.narrowing_cast);
        let storage = classify("crates/storage/src/codec.rs");
        assert!(storage.no_panic && storage.narrowing_cast && !storage.float_eq);
        assert!(storage.no_io_unwrap);
        assert!(classify("crates/pprtree/src/tree.rs").no_io_unwrap);
        assert!(classify("crates/hrtree/src/tree.rs").no_io_unwrap);
        assert!(classify("crates/rstar/src/knn.rs").no_io_unwrap);
        // The durability layer handles storage I/O even though it lives
        // outside crates/storage/: the WAL via the storage prefix, the
        // recovery module by name.
        assert!(classify("crates/storage/src/wal.rs").no_io_unwrap);
        let recover = classify("crates/core/src/recover.rs");
        assert!(recover.no_io_unwrap && recover.lock_discipline);
        assert!(!classify("crates/core/src/tuning.rs").no_io_unwrap);
        assert!(!classify("crates/geom/src/rect2.rs").no_io_unwrap);
        assert_eq!(classify("crates/rand/src/lib.rs"), FileClass::SKIP);
        assert_eq!(classify("crates/bench/src/bin/fig11.rs"), FileClass::SKIP);
        assert_eq!(classify("src/bin/stidx.rs"), FileClass::SKIP);
        assert_eq!(classify("tests/cli.rs"), FileClass::SKIP);
        assert_eq!(classify("crates/pprtree/benches/x.rs"), FileClass::SKIP);
        assert!(classify("src/lib.rs").no_panic);
        let tool = classify("crates/stilint/src/rules.rs");
        assert!(tool.no_panic && !tool.no_process_io);
        // Interprocedural rules: on for library code, panic_path off for
        // the tool crate, strict_atomic only on the publication files.
        assert!(geom.panic_path && geom.lock_discipline && geom.atomic_order);
        assert!(!geom.strict_atomic);
        assert!(!tool.panic_path && tool.lock_discipline && tool.atomic_order);
        assert!(classify("crates/core/src/version.rs").strict_atomic);
        assert!(classify("crates/core/src/pipeline.rs").strict_atomic);
        assert!(!classify("crates/core/src/store.rs").strict_atomic);
        // Unknown top-level .rs files are flagged, not silently skipped.
        assert_eq!(classify_full("build.rs"), Classification::Unknown);
        assert!(matches!(
            classify_full("crates/rand/src/lib.rs"),
            Classification::Exempt(_)
        ));
        assert!(matches!(
            classify_full("README.md"),
            Classification::Exempt(_)
        ));
    }

    #[test]
    fn flags_unwrap_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { y.unwrap(); }\n\
                   }\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].rule, "no_panic");
    }

    #[test]
    fn doc_comments_and_strings_do_not_fire() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn f() { let s = \"panic!\"; }\n";
        assert!(scan_source("crates/geom/src/a.rs", src, LIB).is_empty());
    }

    #[test]
    fn allow_suppresses_same_line_and_next_line() {
        let src = "fn f() {\n\
                   x.unwrap(); // stilint::allow(no_panic, \"checked above\")\n\
                   // stilint::allow(no_panic, \"invariant: y is Some\")\n\
                   y.unwrap();\n\
                   }\n";
        assert!(scan_source("crates/geom/src/a.rs", src, LIB).is_empty());
    }

    #[test]
    fn allow_requires_reason_and_known_rule() {
        let src = "// stilint::allow(no_panic)\nx.unwrap();\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert!(d.iter().any(|d| d.rule == "bad_allow"));
        assert!(d.iter().any(|d| d.rule == "no_panic"), "not suppressed");

        let src2 = "// stilint::allow(no_such_rule, \"reason\")\nx.unwrap();\n";
        let d2 = scan_source("crates/geom/src/a.rs", src2, LIB);
        assert!(d2.iter().any(|d| d.rule == "bad_allow"));
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// stilint::allow(no_panic, \"was needed once\")\nlet x = 1;\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unused_allow");
    }

    #[test]
    fn allow_is_rule_scoped() {
        let src = "// stilint::allow(float_eq, \"bit-exact sentinel\")\nx.unwrap();\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert!(d.iter().any(|d| d.rule == "no_panic"), "{d:?}");
    }

    #[test]
    fn cfg_test_block_exempts_to_closing_brace_only() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { y.unwrap(); }\n\
                   }\n\
                   fn after() { z.unwrap(); }\n";
        let d = scan_source("crates/geom/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn float_eq_only_in_configured_crates() {
        let src = "fn f(a: f64) -> bool { a == 0.25 }\n";
        let in_geom = scan_source(
            "crates/geom/src/a.rs",
            src,
            classify("crates/geom/src/a.rs"),
        );
        assert!(in_geom.iter().any(|d| d.rule == "float_eq"));
        let in_core = scan_source(
            "crates/core/src/a.rs",
            src,
            classify("crates/core/src/a.rs"),
        );
        assert!(in_core.iter().all(|d| d.rule != "float_eq"));
    }

    #[test]
    fn io_unwrap_owns_storage_lines_and_no_panic_keeps_the_rest() {
        // A storage-I/O unwrap reports once, under the specific rule.
        let src = "fn f() { let r = self.store.read(p).unwrap(); }\n";
        let d = scan_source("crates/storage/src/a.rs", src, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "no_io_unwrap");

        // A non-I/O unwrap in the same class still reports as no_panic.
        let src2 = "fn f() { map.get(&k).unwrap(); }\n";
        let d2 = scan_source("crates/storage/src/a.rs", src2, LIB);
        assert_eq!(d2.len(), 1, "{d2:?}");
        assert_eq!(d2[0].rule, "no_panic");

        // panic! on an I/O line is still no_panic's business.
        let src3 = "fn f() { self.store.read(p).unwrap_or_else(|_| panic!()); }\n";
        let d3 = scan_source("crates/storage/src/a.rs", src3, LIB);
        assert_eq!(d3.len(), 1, "{d3:?}");
        assert_eq!(d3[0].rule, "no_panic");

        // An allow for the specific rule silences the line completely.
        let src4 = "// stilint::allow(no_io_unwrap, \"bootstrap pages always exist\")\n\
                    fn f() { let r = self.store.read(p).unwrap(); }\n";
        assert!(scan_source("crates/storage/src/a.rs", src4, LIB).is_empty());
    }

    #[test]
    fn narrowing_cast_fires_in_storage_class_files() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\n";
        let d = scan_source(
            "crates/storage/src/a.rs",
            src,
            classify("crates/storage/src/a.rs"),
        );
        assert!(d.iter().any(|d| d.rule == "narrowing_cast"));
    }

    /// Only the interprocedural rules, to keep graph tests focused.
    const GRAPH_ONLY: FileClass = FileClass {
        no_panic: false,
        float_eq: false,
        narrowing_cast: false,
        no_process_io: false,
        no_io_unwrap: false,
        panic_path: true,
        lock_discipline: true,
        atomic_order: true,
        strict_atomic: false,
    };

    #[test]
    fn panic_path_chain_resolves_across_files() {
        let api = "pub fn lookup(v: &[u32]) -> u32 { helper(v) }\n";
        let util = "fn helper(v: &[u32]) -> u32 { decode(v) }\n\
                    fn decode(v: &[u32]) -> u32 { v.iter().next().unwrap() }\n";
        let d = scan_sources(&[
            ("crates/core/src/api.rs", api, GRAPH_ONLY),
            ("crates/core/src/util.rs", util, GRAPH_ONLY),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "panic_path");
        assert!(
            d[0].message.contains("lookup -> helper -> decode"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn no_panic_allow_also_excuses_the_panic_path() {
        let bare = "pub fn get(v: &[u32]) -> u32 {\n\
                    inner(v)\n\
                    }\n\
                    fn inner(v: &[u32]) -> u32 {\n\
                    v.iter().next().unwrap()\n\
                    }\n";
        let d = scan_source("crates/core/src/a.rs", bare, LIB);
        assert!(d.iter().any(|d| d.rule == "no_panic"), "{d:?}");
        assert!(d.iter().any(|d| d.rule == "panic_path"), "{d:?}");

        let allowed = "pub fn get(v: &[u32]) -> u32 {\n\
                       inner(v)\n\
                       }\n\
                       fn inner(v: &[u32]) -> u32 {\n\
                       // stilint::allow(no_panic, \"callers pre-check emptiness\")\n\
                       v.iter().next().unwrap()\n\
                       }\n";
        let d = scan_source("crates/core/src/a.rs", allowed, LIB);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_path_allow_excuses_a_reachable_site() {
        let src = "pub fn get(v: &[u32]) -> u32 { inner(v) }\n\
                   fn inner(v: &[u32]) -> u32 {\n\
                   // stilint::allow(panic_path, \"v checked non-empty at ingest\")\n\
                   v[0]\n\
                   }\n";
        let d = scan_source("crates/core/src/a.rs", src, GRAPH_ONLY);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lock_discipline_fires_and_allow_suppresses() {
        let bare = "\
struct S { inner: Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.inner.lock();
        self.backend.read(7);
    }
}
";
        let d = scan_source("crates/core/src/a.rs", bare, GRAPH_ONLY);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock_discipline");

        let allowed = "\
struct S { inner: Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.inner.lock();
        // stilint::allow(lock_discipline, \"read-only probe, bounded latency\")
        self.backend.read(7);
    }
}
";
        let d = scan_source("crates/core/src/a.rs", allowed, GRAPH_ONLY);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn atomic_order_allow_suppresses_via_directive() {
        let src = "\
struct S { hits: AtomicU64 }
impl S {
    fn f(&self) {
        // stilint::allow(atomic_order, \"counter increment, ordering irrelevant\")
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
";
        let d = scan_source("crates/core/src/a.rs", src, GRAPH_ONLY);
        assert!(d.is_empty(), "{d:?}");
    }
}
