//! R8 `atomic_order`: every atomic `load`/`store`/`swap`/
//! `compare_exchange`/`fetch_*` must name an explicit `Ordering` and
//! carry a `// ordering: <why this ordering is sufficient>` comment
//! (trailing on the statement, or standalone above it — one comment
//! covers a contiguous run of atomic statements).
//!
//! On the publication pointer path (`crates/core/src/version.rs` and
//! `crates/core/src/pipeline.rs`, marked `strict_atomic` by
//! classification) `Ordering::Relaxed` is forbidden outright: snapshot
//! publication is exactly the place where a relaxed load can observe a
//! torn world.

use crate::graph::Graph;
use crate::Diagnostic;

pub fn run(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &id in &graph.fn_ids {
        let file = &graph.files[id.0];
        if !file.atomic_order {
            continue;
        }
        let f = graph.fn_item(id);
        if f.is_test {
            continue;
        }
        for a in &f.atomics {
            if !a.has_ordering {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: a.line,
                    rule: "atomic_order".to_string(),
                    message: format!(
                        "atomic `{}` on `{}` without an explicit `Ordering` \
                         argument",
                        a.method, a.receiver
                    ),
                });
                continue;
            }
            if file.strict_atomic && a.relaxed {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: a.line,
                    rule: "atomic_order".to_string(),
                    message: format!(
                        "`Ordering::Relaxed` on the publication pointer path \
                         (`{}` on `{}`): snapshot publication needs \
                         Acquire/Release (or SeqCst)",
                        a.method, a.receiver
                    ),
                });
            }
            if !a.justified {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: a.line,
                    rule: "atomic_order".to_string(),
                    message: format!(
                        "atomic `{}` on `{}` lacks a `// ordering: <why>` \
                         justification comment",
                        a.method, a.receiver
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileInput;
    use crate::mask;

    fn input(path: &str, strict: bool, src: &str) -> FileInput {
        let m = mask::mask(src);
        let exempt = crate::test_exempt_lines(&m.text);
        FileInput {
            path: path.to_string(),
            model: crate::parse::parse(&m.text, &m.comments, &exempt),
            panic_path: true,
            lock_discipline: true,
            atomic_order: true,
            strict_atomic: strict,
            justified_panic_lines: Vec::new(),
        }
    }

    #[test]
    fn missing_ordering_argument_fires() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            false,
            "\
struct S { hits: AtomicU64 }
impl S {
    fn f(&self) {
        self.hits.fetch_add(1);
    }
}
",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("without an explicit `Ordering`"));
    }

    #[test]
    fn missing_justification_comment_fires() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            false,
            "\
struct S { hits: AtomicU64 }
impl S {
    fn f(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("// ordering:"), "{}", d[0].message);
    }

    #[test]
    fn justified_site_is_clean() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            false,
            "\
struct S { hits: AtomicU64 }
impl S {
    fn f(&self) {
        // ordering: independent stat counter, no synchronization
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
",
        )]);
        assert!(run(&g).is_empty());
    }

    #[test]
    fn relaxed_on_the_publication_path_fires_even_when_justified() {
        let g = Graph::build(vec![input(
            "crates/core/src/version.rs",
            true,
            "\
struct S { epoch: AtomicU64 }
impl S {
    fn f(&self) {
        // ordering: epoch bump
        self.epoch.store(1, Ordering::Relaxed);
    }
}
",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("publication pointer path"));
    }

    #[test]
    fn acquire_release_on_the_publication_path_is_clean() {
        let g = Graph::build(vec![input(
            "crates/core/src/version.rs",
            true,
            "\
struct S { epoch: AtomicU64 }
impl S {
    fn f(&self) {
        // ordering: release pairs with the readers' acquire load
        self.epoch.store(1, Ordering::Release);
    }
}
",
        )]);
        assert!(run(&g).is_empty());
    }
}
