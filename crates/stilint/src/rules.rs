//! The lint rules, matched against masked source lines.

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// R1: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in non-test library code.
    NoPanic,
    /// R2: no `==`/`!=` with a floating-point operand.
    FloatEq,
    /// R3: no narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) on
    /// index/page arithmetic.
    NarrowingCast,
    /// R4: no `std::process::exit` or direct stdout writes in library
    /// crates.
    NoProcessIo,
    /// R5: no `.unwrap()`/`.expect(` on storage-I/O results (expressions
    /// that read, write, allocate, or decode pages) in the tree and
    /// storage crates — fallible I/O must surface as `StorageError`.
    NoIoUnwrap,
    /// R6: a public library fn must not transitively reach
    /// `panic!`/`unwrap`/`expect`/slice-indexing in non-test code.
    /// Interprocedural; diagnostics carry the call chain.
    PanicPath,
    /// R7: while a guard from the storage layer is live, no backend I/O,
    /// no second lock acquisition, and no unbounded `loop` without a
    /// `// bounded:` iteration-bound comment. Interprocedural.
    LockDiscipline,
    /// R8: every atomic `load`/`store`/`swap`/`compare_exchange`/`fetch_*`
    /// must name an explicit `Ordering` carrying a `// ordering:`
    /// justification; `Relaxed` is forbidden on the publication pointer
    /// path (`core/src/version.rs`, `core/src/pipeline.rs`).
    AtomicOrder,
}

impl RuleId {
    /// The name used in diagnostics and in `stilint::allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoPanic => "no_panic",
            RuleId::FloatEq => "float_eq",
            RuleId::NarrowingCast => "narrowing_cast",
            RuleId::NoProcessIo => "no_process_io",
            RuleId::NoIoUnwrap => "no_io_unwrap",
            RuleId::PanicPath => "panic_path",
            RuleId::LockDiscipline => "lock_discipline",
            RuleId::AtomicOrder => "atomic_order",
        }
    }

    /// Parse a rule name as written in an allow directive.
    pub fn parse(name: &str) -> Option<RuleId> {
        match name {
            "no_panic" => Some(RuleId::NoPanic),
            "float_eq" => Some(RuleId::FloatEq),
            "narrowing_cast" => Some(RuleId::NarrowingCast),
            "no_process_io" => Some(RuleId::NoProcessIo),
            "no_io_unwrap" => Some(RuleId::NoIoUnwrap),
            "panic_path" => Some(RuleId::PanicPath),
            "lock_discipline" => Some(RuleId::LockDiscipline),
            "atomic_order" => Some(RuleId::AtomicOrder),
            _ => None,
        }
    }

    /// All rules, for directive validation messages.
    pub const ALL: [RuleId; 8] = [
        RuleId::NoPanic,
        RuleId::FloatEq,
        RuleId::NarrowingCast,
        RuleId::NoProcessIo,
        RuleId::NoIoUnwrap,
        RuleId::PanicPath,
        RuleId::LockDiscipline,
        RuleId::AtomicOrder,
    ];
}

/// One rule hit on one line (line numbers are attached by the caller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    pub message: String,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Positions where `needle` occurs in `hay` with a non-identifier (or
/// line-start) character immediately before it.
fn find_token(hay: &str, needle: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    // Needles starting with `.` carry their own boundary; identifier-led
    // needles must not match inside a longer identifier.
    let needs_boundary = needle.chars().next().is_some_and(is_ident);
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let bounded = !needs_boundary
            || at == 0
            || hay[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        if bounded {
            hits.push(at);
        }
        from = at + needle.len().max(1);
    }
    hits
}

/// R1: panic-family tokens.
pub fn check_no_panic(line: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for needle in [".unwrap()", ".expect("] {
        for _ in find_token(line, needle) {
            out.push(Finding {
                rule: RuleId::NoPanic,
                message: format!(
                    "`{}` in library code: return a typed error or add \
                     `// stilint::allow(no_panic, \"<invariant>\")`",
                    needle.trim_end_matches('(')
                ),
            });
        }
    }
    for needle in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        for _ in find_token(line, needle) {
            out.push(Finding {
                rule: RuleId::NoPanic,
                message: format!(
                    "`{needle}` in library code: return a typed error or add \
                     `// stilint::allow(no_panic, \"<invariant>\")`"
                ),
            });
        }
    }
    out
}

/// A window around one side of a comparison operator, delimited by tokens
/// that end an operand expression.
fn operand_window(line: &str, op_at: usize, op_len: usize, left: bool) -> String {
    // Stop at expression separators; keep `(`/`)` so method calls like
    // `.area()` stay inside the window. Cap the width so an unrelated
    // float elsewhere on a long line cannot leak in.
    const STOP: [char; 4] = [',', ';', '{', '}'];
    const WIDTH: usize = 48;
    let chars: Vec<char> = if left {
        line[..op_at].chars().rev().collect()
    } else {
        line[op_at + op_len..].chars().collect()
    };
    let mut taken = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if STOP.contains(&c) || taken.len() >= WIDTH {
            break;
        }
        // Two-char logical operators delimit operands; a single `&`/`|`
        // is a reference or bit-op and stays.
        if (c == '&' || c == '|') && chars.get(i + 1) == Some(&c) {
            break;
        }
        taken.push(c);
    }
    if left {
        taken.iter().rev().collect()
    } else {
        taken.iter().collect()
    }
}

/// Heuristic: does this operand text look like an `f64` expression?
fn looks_float(window: &str) -> bool {
    // A float literal: digit '.' digit anywhere in the window.
    let chars: Vec<char> = window.chars().collect();
    for w in chars.windows(3) {
        if w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit() {
            return true;
        }
    }
    for marker in ["f64", "f32", "INFINITY", "NAN", "EPSILON"] {
        if window.contains(marker) {
            return true;
        }
    }
    for call in [
        ".area(",
        ".width(",
        ".height(",
        ".margin(",
        ".volume(",
        ".min_dist2(",
        ".abs(",
        ".sqrt(",
    ] {
        if window.contains(call) {
            return true;
        }
    }
    // Coordinate field access: `.x` / `.y` followed by a non-identifier.
    for field in [".x", ".y"] {
        let mut from = 0;
        while let Some(rel) = window[from..].find(field) {
            let at = from + rel;
            let after = window[at + field.len()..].chars().next();
            if after.is_none_or(|c| !is_ident(c) && c != '(') {
                return true;
            }
            from = at + field.len();
        }
    }
    false
}

/// R2: `==` / `!=` where an operand looks floating-point.
pub fn check_float_eq(line: &str) -> Vec<Finding> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &line[i..i + 2];
        let is_eq = two == "==";
        let is_ne = two == "!=";
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Not part of `<=`, `>=`, `=>`, `===`-like runs, or `!` prefix ops.
        let prev = line[..i].chars().next_back();
        let next = line[i + 2..].chars().next();
        let op_ok = next != Some('=')
            && (!is_eq
                || prev.is_none_or(|c| {
                    !matches!(
                        c,
                        '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                    )
                }));
        if op_ok {
            let lhs = operand_window(line, i, 2, true);
            let rhs = operand_window(line, i, 2, false);
            if looks_float(&lhs) || looks_float(&rhs) {
                out.push(Finding {
                    rule: RuleId::FloatEq,
                    message: format!(
                        "`{two}` on a floating-point operand: use an epsilon or \
                         bit-exact helper (`sti_geom::approx_eq`, `f64::to_bits`)"
                    ),
                });
            }
        }
        i += 2;
    }
    out
}

/// R3: narrowing integer `as` casts.
pub fn check_narrowing_cast(line: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for at in find_token(line, "as ") {
        // `as` must itself be a standalone token (`alias ` must not match).
        let rest = line[at + 3..].trim_start();
        for ty in ["u8", "u16", "u32", "i8", "i16", "i32"] {
            if let Some(tail) = rest.strip_prefix(ty) {
                if tail.chars().next().is_none_or(|c| !is_ident(c)) {
                    out.push(Finding {
                        rule: RuleId::NarrowingCast,
                        message: format!(
                            "narrowing `as {ty}` cast: use `{ty}::try_from` (or \
                             allowlist with the range invariant)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Tokens that mark a line as touching the fallible storage layer. A
/// line scanner cannot type-check, so R5 approximates "expression of
/// type `Result<_, StorageError>`" by the vocabulary every such
/// expression in this workspace goes through: the page store handle,
/// the node codecs, the backend trait object, and the persistence
/// entry points.
const IO_MARKERS: [&str; 10] = [
    "store.",
    "self.store",
    "read_node",
    "write_node",
    "backend.",
    "backend()",
    "open_file",
    "load_from",
    "save_to",
    ".allocate(",
];

/// R5: `.unwrap()` / `.expect(` on a line that touches storage I/O.
pub fn check_no_io_unwrap(line: &str) -> Vec<Finding> {
    if !IO_MARKERS.iter().any(|m| line.contains(m)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for needle in [".unwrap()", ".expect("] {
        for _ in find_token(line, needle) {
            out.push(Finding {
                rule: RuleId::NoIoUnwrap,
                message: format!(
                    "`{}` on a storage-I/O result: propagate the \
                     `StorageError` with `?` or add \
                     `// stilint::allow(no_io_unwrap, \"<invariant>\")`",
                    needle.trim_end_matches('(')
                ),
            });
        }
    }
    out
}

/// R4: process exit and direct stdout writes.
pub fn check_no_process_io(line: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for needle in ["process::exit", "println!", "print!", "stdout("] {
        for _ in find_token(line, needle) {
            out.push(Finding {
                rule: RuleId::NoProcessIo,
                message: format!(
                    "`{needle}` in library code: return data to the caller; \
                     only binaries may write to stdout or exit"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_panic_matches_the_panic_family() {
        assert_eq!(check_no_panic("x.unwrap();").len(), 1);
        assert_eq!(check_no_panic("x.expect(\"reason\");").len(), 1);
        assert_eq!(check_no_panic("panic!(\"boom\")").len(), 1);
        assert_eq!(check_no_panic("unreachable!()").len(), 1);
        assert_eq!(check_no_panic("todo!()").len(), 1);
        assert_eq!(check_no_panic("a.unwrap(); b.unwrap()").len(), 2);
    }

    #[test]
    fn no_panic_skips_non_panicking_relatives() {
        assert!(check_no_panic("x.unwrap_or(0)").is_empty());
        assert!(check_no_panic("x.unwrap_or_else(|| 0)").is_empty());
        assert!(check_no_panic("x.unwrap_or_default()").is_empty());
        assert!(check_no_panic("x.expect_err(\"must fail\")").is_empty());
        assert!(check_no_panic("debug_assert!(ok)").is_empty());
        assert!(check_no_panic("#[should_panic(expected = y)]").is_empty());
    }

    #[test]
    fn float_eq_flags_float_operands() {
        assert_eq!(check_float_eq("if x == 0.0 {").len(), 1);
        assert_eq!(check_float_eq("if 1.5 != y {").len(), 1);
        assert_eq!(check_float_eq("a.area() == b.area()").len(), 1);
        assert_eq!(check_float_eq("p.x == q.x").len(), 1);
        assert_eq!(check_float_eq("v == f64::INFINITY").len(), 1);
    }

    #[test]
    fn float_eq_skips_integers_and_orderings() {
        assert!(check_float_eq("if n == 0 {").is_empty());
        assert!(check_float_eq("self.start == self.end").is_empty());
        assert!(check_float_eq("if x <= 0.5 {").is_empty());
        assert!(check_float_eq("if x >= 0.5 {").is_empty());
        assert!(check_float_eq("|x| x == flag").is_empty());
        assert!(check_float_eq("let y = 0.5;").is_empty());
    }

    #[test]
    fn narrowing_cast_flags_small_targets_only() {
        assert_eq!(check_narrowing_cast("len as u32").len(), 1);
        assert_eq!(check_narrowing_cast("x as u16;").len(), 1);
        assert_eq!(check_narrowing_cast("(a + b) as i32").len(), 1);
        assert!(check_narrowing_cast("id as usize").is_empty());
        assert!(check_narrowing_cast("n as u64").is_empty());
        assert!(check_narrowing_cast("n as f64").is_empty());
        assert!(check_narrowing_cast("alias u32").is_empty());
        assert!(check_narrowing_cast("x as u32_custom").is_empty());
    }

    #[test]
    fn no_io_unwrap_needs_both_a_marker_and_a_panic_method() {
        assert_eq!(
            check_no_io_unwrap("let raw = self.store.read(page).unwrap();").len(),
            1
        );
        assert_eq!(
            check_no_io_unwrap("let node = read_node(page).expect(\"decodes\");").len(),
            1
        );
        assert_eq!(
            check_no_io_unwrap("let t = PprTree::open_file(path).unwrap();").len(),
            1
        );
        assert_eq!(
            check_no_io_unwrap("store.allocate().unwrap(); store.sync().unwrap()").len(),
            2
        );
        // No storage marker: not this rule's business (no_panic covers it).
        assert!(check_no_io_unwrap("map.get(&k).unwrap()").is_empty());
        // Marker without unwrap/expect: fine.
        assert!(check_no_io_unwrap("let raw = self.store.read(page)?;").is_empty());
        assert!(check_no_io_unwrap("x.unwrap_or_default(); store.peek(p)").is_empty());
    }

    #[test]
    fn process_io_flags_exit_and_stdout() {
        assert_eq!(check_no_process_io("std::process::exit(1)").len(), 1);
        assert_eq!(check_no_process_io("println!(\"x\")").len(), 1);
        assert_eq!(check_no_process_io("print!(\"x\")").len(), 1);
        assert_eq!(check_no_process_io("io::stdout().lock()").len(), 1);
        assert!(check_no_process_io("eprintln!(\"x\")").is_empty());
        assert!(check_no_process_io("eprint!(\"x\")").is_empty());
        assert!(check_no_process_io("writeln!(f, \"x\")").is_empty());
    }
}
