//! R7 `lock_discipline`: constraints that hold while a lock guard is
//! live in scope — the `seal()` stall class of defect.
//!
//! Guard spans come from two places: literal guard producers
//! (`.lock()`, `.read()`/`.write()` on a known lock field) and calls to
//! fns whose return type is a guard (`core_read()`-style helpers). A
//! `let`-bound guard lives to the end of its enclosing block (or an
//! explicit `drop(var)`); an unbound guard is a temporary and lives
//! only on its own line.
//!
//! Clauses:
//!
//! * **No backend I/O under a `Mutex` guard** — direct marker lines and
//!   calls that transitively reach backend I/O. RwLock guards are
//!   exempt: the store's `core` RwLock deliberately protects the
//!   backend itself, so every store operation would fire.
//! * **No second lock acquisition under a `Mutex` guard** — a literal
//!   second acquisition or a call that transitively acquires. Shard
//!   locks are leaves in the workspace lock order; taking another lock
//!   while holding one risks deadlock.
//! * **No unbounded `loop` under *any* guard** — a `loop` without a
//!   `// bounded: <why this terminates>` marker, directly or through a
//!   call, while a guard is live: the PR 6 `seal()` stall reachable in
//!   review was exactly this.

use crate::graph::{FnId, Graph};
use crate::parse::GuardKind;
use crate::Diagnostic;

struct Span {
    start: usize,
    end: usize,
    kind: GuardKind,
    /// Index into the fn's `calls` of the call that produced this
    /// guard, for synthesized spans — excluded from clause checks.
    origin_call: Option<usize>,
}

fn kind_name(kind: GuardKind) -> &'static str {
    match kind {
        GuardKind::Mutex => "mutex",
        GuardKind::RwRead => "rwlock read",
        GuardKind::RwWrite => "rwlock write",
    }
}

pub fn run(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &id in &graph.fn_ids {
        let file = &graph.files[id.0];
        if !file.lock_discipline {
            continue;
        }
        let f = graph.fn_item(id);
        if f.is_test {
            continue;
        }
        let spans = collect_spans(graph, id);
        for span in &spans {
            check_span(graph, id, span, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out.dedup();
    out
}

/// Literal and synthesized (guard-returning call) spans of one fn.
fn collect_spans(graph: &Graph, id: FnId) -> Vec<Span> {
    let f = graph.fn_item(id);
    let model = &graph.files[id.0].model;
    let mut spans = Vec::new();
    let mut push = |line: usize, kind: GuardKind, binding: Option<&str>, origin: Option<usize>| {
        let end = match binding {
            Some(var) => {
                let scope = model.scope_end(line, f.end_line);
                f.drops
                    .iter()
                    .filter(|(dl, dv)| *dl >= line && dv == var)
                    .map(|(dl, _)| *dl)
                    .min()
                    .unwrap_or(scope)
                    .min(scope)
            }
            None => line,
        };
        spans.push(Span {
            start: line,
            end,
            kind,
            origin_call: origin,
        });
    };
    for g in &f.guards {
        push(g.line, g.kind, g.binding.as_deref(), None);
    }
    for (ci, targets) in graph.callees(id).iter().enumerate() {
        let call = &f.calls[ci];
        let Some(kind) = targets.iter().find_map(|&t| graph.fn_item(t).returns_guard) else {
            continue;
        };
        push(call.line, kind, call.let_binding.as_deref(), Some(ci));
    }
    spans
}

fn check_span(graph: &Graph, id: FnId, span: &Span, out: &mut Vec<Diagnostic>) {
    let f = graph.fn_item(id);
    let path = &graph.files[id.0].path;
    let label = graph.label(id);
    let kname = kind_name(span.kind);
    let in_span = |line: usize| line >= span.start && line <= span.end;

    // Clause A: backend I/O under a Mutex guard.
    if span.kind == GuardKind::Mutex {
        for &io_line in &f.io_lines {
            if in_span(io_line) {
                out.push(Diagnostic {
                    path: path.clone(),
                    line: io_line,
                    rule: "lock_discipline".to_string(),
                    message: format!(
                        "backend I/O in `{label}` while a {kname} guard is live: \
                         move the I/O outside the critical section"
                    ),
                });
            }
        }
    }

    // Clause C (direct): unbounded loop under any guard.
    for l in &f.loops {
        if in_span(l.line) && !l.bounded {
            out.push(Diagnostic {
                path: path.clone(),
                line: l.line,
                rule: "lock_discipline".to_string(),
                message: format!(
                    "unbounded `loop` in `{label}` while a {kname} guard is live: \
                     bound the iterations and note it with `// bounded: <why>`"
                ),
            });
        }
    }

    // Call-mediated clauses.
    for (ci, targets) in graph.callees(id).iter().enumerate() {
        if Some(ci) == span.origin_call {
            continue;
        }
        let call = &f.calls[ci];
        if !in_span(call.line) {
            continue;
        }
        for &t in targets {
            let s = graph.summary(t);
            if span.kind == GuardKind::Mutex {
                if s.does_io.is_some() {
                    let chain = graph.evidence_chain(t, |s| s.does_io);
                    out.push(Diagnostic {
                        path: path.clone(),
                        line: call.line,
                        rule: "lock_discipline".to_string(),
                        message: format!(
                            "`{label}` calls `{}` which reaches backend I/O \
                             ({}) while a {kname} guard is live",
                            graph.label(t),
                            chain.join(" -> ")
                        ),
                    });
                }
                // A second acquisition: the callee returns a guard or
                // locks internally.
                if call.line > span.start
                    && (graph.fn_item(t).returns_guard.is_some() || s.acquires_lock.is_some())
                {
                    let chain = graph.evidence_chain(t, |s| s.acquires_lock);
                    out.push(Diagnostic {
                        path: path.clone(),
                        line: call.line,
                        rule: "lock_discipline".to_string(),
                        message: format!(
                            "`{label}` acquires a second lock via `{}` ({}) \
                             while a {kname} guard is live: release the first \
                             guard before locking again",
                            graph.label(t),
                            chain.join(" -> ")
                        ),
                    });
                }
            }
            if s.unbounded_loop.is_some() {
                let chain = graph.evidence_chain(t, |s| s.unbounded_loop);
                out.push(Diagnostic {
                    path: path.clone(),
                    line: call.line,
                    rule: "lock_discipline".to_string(),
                    message: format!(
                        "`{label}` calls `{}` which reaches an unbounded `loop` \
                         ({}) while a {kname} guard is live",
                        graph.label(t),
                        chain.join(" -> ")
                    ),
                });
            }
        }
    }

    // Clause B (literal): a second literal acquisition inside the span.
    if span.kind == GuardKind::Mutex {
        for g2 in &f.guards {
            if g2.line > span.start && g2.line <= span.end {
                out.push(Diagnostic {
                    path: path.clone(),
                    line: g2.line,
                    rule: "lock_discipline".to_string(),
                    message: format!(
                        "second lock acquisition in `{label}` while a {kname} \
                         guard is live: release the first guard before locking \
                         again"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileInput;
    use crate::mask;

    fn input(path: &str, src: &str) -> FileInput {
        let m = mask::mask(src);
        let exempt = crate::test_exempt_lines(&m.text);
        FileInput {
            path: path.to_string(),
            model: crate::parse::parse(&m.text, &m.comments, &exempt),
            panic_path: true,
            lock_discipline: true,
            atomic_order: true,
            strict_atomic: false,
            justified_panic_lines: Vec::new(),
        }
    }

    #[test]
    fn direct_io_under_mutex_guard_fires() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
impl S {
    fn f(&self) {
        let g = self.inner.lock();
        self.backend.read(1);
    }
}
",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("backend I/O"));
    }

    #[test]
    fn io_through_a_callee_under_a_live_guard_fires() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
impl S {
    fn f(&self) {
        let g = self.inner.lock();
        self.spill();
    }
    fn spill(&self) {
        self.backend.write(1);
    }
}
",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("S::spill"), "{}", d[0].message);
    }

    #[test]
    fn io_after_guard_scope_is_fine() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
impl S {
    fn f(&self) {
        {
            let g = self.inner.lock();
            g.touch();
        }
        self.backend.read(1);
    }
}
",
        )]);
        assert!(run(&g).is_empty());
    }

    #[test]
    fn drop_ends_the_span_early() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
impl S {
    fn f(&self) {
        let g = self.inner.lock();
        drop(g);
        self.backend.read(1);
    }
}
",
        )]);
        assert!(run(&g).is_empty());
    }

    #[test]
    fn second_lock_acquisition_fires() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
impl S {
    fn f(&self) {
        let a = self.inner.lock();
        let b = self.other.lock();
    }
}
",
        )]);
        let d = run(&g);
        assert!(d.iter().any(|d| d.message.contains("second lock")), "{d:?}");
    }

    #[test]
    fn unbounded_loop_under_rwlock_guard_fires_but_bounded_does_not() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
struct S { core: RwLock<u32> }
impl S {
    fn f(&self) {
        let c = self.core.write();
        loop {
            step();
        }
    }
    fn g(&self) {
        let c = self.core.write();
        // bounded: attempts capped by policy.max_attempts
        loop {
            step();
        }
    }
}
",
        )]);
        let d = run(&g);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
        assert!(d[0].message.contains("unbounded `loop`"));
    }

    #[test]
    fn io_under_rwlock_guard_is_exempt_by_design() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
struct S { core: RwLock<u32> }
impl S {
    fn f(&self) {
        let c = self.core.write();
        self.backend.read(1);
    }
}
",
        )]);
        assert!(run(&g).is_empty());
    }

    #[test]
    fn guard_returning_helper_creates_a_span_in_the_caller() {
        let g = Graph::build(vec![input(
            "crates/storage/src/x.rs",
            "\
impl S {
    fn core_write(&self) -> RwLockWriteGuard<'_, Core> {
        self.core.write()
    }
    fn f(&self) {
        let core = self.core_write();
        loop {
            step();
        }
    }
}
",
        )]);
        let d = run(&g);
        assert!(
            d.iter()
                .any(|d| d.line == 7 && d.message.contains("unbounded")),
            "{d:?}"
        );
        // The producing call itself must not count as a second lock.
        assert!(
            d.iter().all(|d| !d.message.contains("second lock")),
            "{d:?}"
        );
    }
}
