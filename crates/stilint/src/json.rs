//! Hand-rolled JSON emission for `--json` output (the workspace is
//! offline; no serde). Schema `stilint/1`:
//!
//! ```json
//! {
//!   "schema": "stilint/1",
//!   "files_scanned": 42,
//!   "total": 3, "new": 1, "baselined": 2,
//!   "diagnostics": [
//!     {"path": "...", "line": 7, "rule": "...", "message": "...",
//!      "baselined": false}
//!   ]
//! }
//! ```

use crate::Diagnostic;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the report. `diags` is the full finding list, with a
/// per-entry flag for whether the baseline absorbs it.
pub fn render(files_scanned: usize, diags: &[(&Diagnostic, bool)]) -> String {
    let baselined = diags.iter().filter(|(_, b)| *b).count();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"stilint/1\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"total\": {},\n", diags.len()));
    out.push_str(&format!("  \"new\": {},\n", diags.len() - baselined));
    out.push_str(&format!("  \"baselined\": {baselined},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, (d, b)) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"baselined\": {}}}",
            escape(&d.path),
            d.line,
            escape(&d.rule),
            escape(&d.message),
            b
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_diagnostics() {
        let d = Diagnostic {
            path: "a.rs".to_string(),
            line: 3,
            rule: "no_panic".to_string(),
            message: "`x.unwrap()` with \"quotes\"\nand newline".to_string(),
        };
        let s = render(5, &[(&d, true)]);
        assert!(s.contains("\"schema\": \"stilint/1\""));
        assert!(s.contains("\"files_scanned\": 5"));
        assert!(s.contains("\\\"quotes\\\"\\nand newline"));
        assert!(s.contains("\"baselined\": true"));
        assert!(s.contains("\"new\": 0"));
    }

    #[test]
    fn empty_report_is_valid() {
        let s = render(0, &[]);
        assert!(s.contains("\"diagnostics\": []"));
        assert!(s.contains("\"total\": 0"));
    }
}
