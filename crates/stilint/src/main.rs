//! Command-line driver: `cargo run -p stilint [-- [ROOT]]`.
//!
//! Scans the workspace, prints `file:line: [rule] message` diagnostics to
//! stdout, and exits non-zero when any are found (so CI can gate on it).

use std::path::PathBuf;
use std::process::ExitCode;

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// the workspace.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.first() {
        Some(arg) if arg == "--help" || arg == "-h" => {
            println!("usage: stilint [WORKSPACE_ROOT]");
            println!("Lints the workspace's library crates; see CONTRIBUTING.md for the rules.");
            return ExitCode::SUCCESS;
        }
        Some(path) => PathBuf::from(path),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(cwd) {
                Some(root) => root,
                None => {
                    eprintln!("stilint: no workspace Cargo.toml found above the current directory");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    match stilint::scan_workspace(&root) {
        Ok((diags, scanned)) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!("stilint: {scanned} files clean");
                ExitCode::SUCCESS
            } else {
                println!("stilint: {} diagnostics in {scanned} files", diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("stilint: scanning {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
