//! Command-line driver: `cargo run -p stilint [-- [FLAGS] [ROOT]]`.
//!
//! Scans the workspace, prints `file:line: [rule] message` diagnostics
//! to stdout, and exits non-zero when any finding is *not* absorbed by
//! the committed `stilint.baseline` (so CI gates on new findings only).
//!
//! Flags:
//!
//! * `--json[=PATH]` — emit the machine-readable report (schema
//!   `stilint/1`) to stdout or PATH, in addition to the text output.
//! * `--write-baseline` — rewrite `stilint.baseline` from the current
//!   findings and exit 0.
//! * `--no-baseline` — ignore the baseline; every finding is fresh.
//! * `--baseline PATH` — use PATH instead of `ROOT/stilint.baseline`.

use std::path::PathBuf;
use std::process::ExitCode;

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// the workspace.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

struct Options {
    root: Option<PathBuf>,
    json: bool,
    json_path: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
    baseline_path: Option<PathBuf>,
}

fn usage() {
    println!("usage: stilint [--json[=PATH]] [--write-baseline] [--no-baseline]");
    println!("               [--baseline PATH] [WORKSPACE_ROOT]");
    println!("Lints the workspace's library crates; see CONTRIBUTING.md for the rules.");
    println!("Exits non-zero only on findings the committed baseline does not absorb.");
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: None,
        json: false,
        json_path: None,
        write_baseline: false,
        no_baseline: false,
        baseline_path: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--help" || arg == "-h" {
            return Ok(None);
        } else if arg == "--json" {
            opts.json = true;
        } else if let Some(path) = arg.strip_prefix("--json=") {
            opts.json = true;
            opts.json_path = Some(PathBuf::from(path));
        } else if arg == "--write-baseline" {
            opts.write_baseline = true;
        } else if arg == "--no-baseline" {
            opts.no_baseline = true;
        } else if arg == "--baseline" {
            i += 1;
            let Some(path) = args.get(i) else {
                return Err("--baseline needs a PATH argument".to_string());
            };
            opts.baseline_path = Some(PathBuf::from(path));
        } else if arg.starts_with('-') {
            return Err(format!("unknown flag `{arg}`"));
        } else if opts.root.is_none() {
            opts.root = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected extra argument `{arg}`"));
        }
        i += 1;
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("stilint: {msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let root = match opts.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(cwd) {
                Some(root) => root,
                None => {
                    eprintln!("stilint: no workspace Cargo.toml found above the current directory");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let (diags, scanned) = match stilint::scan_workspace(&root) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("stilint: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = opts
        .baseline_path
        .unwrap_or_else(|| root.join(stilint::baseline::BASELINE_FILE));

    if opts.write_baseline {
        let rendered = stilint::baseline::render(&diags);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("stilint: writing {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "stilint: wrote {} ({} finding(s) from {scanned} files)",
            baseline_path.display(),
            diags.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        Default::default()
    } else {
        stilint::baseline::load(&baseline_path)
    };
    let (fresh, baselined) = stilint::baseline::partition(diags, &baseline);

    // With `--json` on stdout, the human-readable lines move to stderr
    // so the report stays machine-parseable.
    let mut json_on_stdout = false;
    if opts.json {
        let mut tagged: Vec<(&stilint::Diagnostic, bool)> = Vec::new();
        tagged.extend(fresh.iter().map(|d| (d, false)));
        tagged.extend(baselined.iter().map(|d| (d, true)));
        tagged.sort_by(|a, b| {
            (&a.0.path, a.0.line, &a.0.rule).cmp(&(&b.0.path, b.0.line, &b.0.rule))
        });
        let report = stilint::json::render(scanned, &tagged);
        match &opts.json_path {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &report) {
                    eprintln!("stilint: writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            None => {
                print!("{report}");
                json_on_stdout = true;
            }
        }
    }

    let human = |line: String| {
        if json_on_stdout {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    for d in &fresh {
        human(d.to_string());
    }
    if fresh.is_empty() {
        if baselined.is_empty() {
            human(format!("stilint: {scanned} files clean"));
        } else {
            human(format!(
                "stilint: {scanned} files clean ({} baselined finding(s))",
                baselined.len()
            ));
        }
        ExitCode::SUCCESS
    } else {
        human(format!(
            "stilint: {} new diagnostics in {scanned} files ({} baselined)",
            fresh.len(),
            baselined.len()
        ));
        ExitCode::FAILURE
    }
}
