//! Property tests for the lexical masker. The masker is the foundation
//! every rule stands on — a panic or a shape change here silently breaks
//! line numbering for the whole lint — so its invariants get the
//! adversarial-input treatment:
//!
//! * never panics, on arbitrary char soup or on fragment-built sources,
//! * preserves the line count and the char count (and therefore the
//!   byte length for ASCII input),
//! * is idempotent: masking already-masked text changes nothing.

use proptest::prelude::*;
use stilint::mask::mask;

/// Characters that drive the masker's state machine, over-weighted
/// relative to plain letters so random soup actually hits the string /
/// comment / raw-string transitions.
fn char_soup() -> impl Strategy<Value = String> {
    let palette: Vec<char> = vec![
        '"', '\'', '/', '*', '\\', '#', 'r', 'b', '\n', '\n', ' ', ' ', 'a', 'z', '_', '0', '9',
        '{', '}', '(', ')', '[', ']', ';', ':', ',', '.', '!', '<', '>', '=', '&', 'é', '∞',
    ];
    prop::collection::vec(prop::sample::select(palette), 0..200)
        .prop_map(|cs| cs.into_iter().collect())
}

/// Syntactically meaningful fragments, concatenated in random order:
/// deeper state-machine coverage than uniform soup reaches.
fn fragment_source() -> impl Strategy<Value = String> {
    let fragments: Vec<&'static str> = vec![
        "// line comment\n",
        "//! inner doc\n",
        "/// outer doc with `x.unwrap()`\n",
        "/* block */",
        "/* nested /* deeper /* more */ */ still */",
        "/* unterminated",
        "\"plain string\"",
        "\"string with // comment syntax\"",
        "\"string with /* block syntax\"",
        "\"escaped \\\" quote\"",
        "\"trailing backslash \\\\\"",
        "\"unterminated",
        "r\"raw string\"",
        "r#\"raw with \" inside\"#",
        "r##\"raw with \"# inside\"##",
        "b\"byte string\"",
        "br#\"raw bytes\"#",
        "'c'",
        "'\\n'",
        "'\\''",
        "&'a str",
        "'static",
        "fn f() {\n",
        "}\n",
        "let x = 1;\n",
        "x.unwrap();\n",
        "#[test]\n",
        "#[cfg(test)]\nmod tests {\n",
        "idents_and_numbers_123 ",
        "non_ascii_é_∞ ",
        "\n",
    ];
    prop::collection::vec(prop::sample::select(fragments), 0..30).prop_map(|fs| fs.concat())
}

fn assert_mask_invariants(src: &str) {
    let masked = mask(src);
    assert_eq!(
        masked.text.lines().count(),
        src.lines().count(),
        "line count changed for {src:?}"
    );
    assert_eq!(
        masked.text.chars().count(),
        src.chars().count(),
        "char count changed for {src:?}"
    );
    if src.is_ascii() {
        assert_eq!(
            masked.text.len(),
            src.len(),
            "byte length changed for ASCII {src:?}"
        );
    }
    // Idempotence: masked text contains no comments or strings, so a
    // second pass must be the identity.
    let twice = mask(&masked.text);
    assert_eq!(twice.text, masked.text, "not idempotent for {src:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn soup_never_panics_and_preserves_shape(src in char_soup()) {
        assert_mask_invariants(&src);
    }

    #[test]
    fn fragments_never_panic_and_preserve_shape(src in fragment_source()) {
        assert_mask_invariants(&src);
    }
}

#[test]
fn raw_strings_do_not_leak_code() {
    let src = "let s = r#\"x.unwrap() // not code\"#; y.unwrap();\n";
    let m = mask(src);
    // The raw string body is blanked; the real call survives.
    assert!(!m.text.contains("not code"), "{}", m.text);
    assert_eq!(m.text.matches(".unwrap()").count(), 1, "{}", m.text);
    assert!(m.comments.is_empty(), "{:?}", m.comments);
}

#[test]
fn nested_block_comments_track_depth() {
    let src = "/* a /* b */ still comment */ x.unwrap();\n";
    let m = mask(src);
    assert!(!m.text.contains("still"), "{}", m.text);
    assert!(m.text.contains(".unwrap()"), "{}", m.text);
}

#[test]
fn comment_syntax_inside_strings_is_inert() {
    let src = "let s = \"// stilint::allow(no_panic, \\\"nope\\\")\";\nx.unwrap();\n";
    let m = mask(src);
    assert!(
        m.comments.is_empty(),
        "a string is not a comment: {:?}",
        m.comments
    );
    assert!(m.text.contains(".unwrap()"));
}

#[test]
fn empty_and_whitespace_only_sources() {
    assert_mask_invariants("");
    assert_mask_invariants("\n\n\n");
    assert_mask_invariants("   \t  ");
}
