//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the experiment index). By default the
//! datasets are scaled down (500–4000 objects instead of 10k–80k) so the
//! whole suite runs in minutes; pass `--paper` for the published sizes,
//! or `--sizes=a,b,c` for custom ones.

use std::path::PathBuf;
use std::time::Instant;
use sti_core::{
    BuildStats, DistributionAlgorithm, IndexBackend, IndexConfig, ObjectRecord, Parallelism,
    SingleSplitAlgorithm, SpatioTemporalIndex, SplitBudget, SplitPlan,
};
use sti_datagen::{Query, RailwayDatasetSpec, RandomDatasetSpec};
use sti_obs::{JsonValue, QueryStats};
use sti_trajectory::RasterizedObject;

/// Dataset sizes used when a binary is invoked without flags. The ratios
/// mirror the paper's 10k/30k/50k/80k ladder.
pub const DEFAULT_SIZES: [usize; 4] = [500, 1000, 2000, 4000];

/// The paper's dataset sizes (Table I).
pub const PAPER_SIZES: [usize; 4] = [10_000, 30_000, 50_000, 80_000];

/// Default ladder for the I/O figures (15–18, railway, ablations): these
/// never run the quadratic dynamic programs, so they afford enough
/// density for page-level effects to show.
pub const IO_SIZES: [usize; 4] = [2_500, 5_000, 10_000, 20_000];

/// Scale tier beyond the paper ladder. `--scale=mid|big` switches the
/// tier-aware binaries (`fig15`, `throughput`) from the in-memory
/// incremental build onto the out-of-core bulk-loaded `FileBackend`
/// path, with a warm shared buffer — at a million objects the paper's
/// reset-per-query methodology measures nothing but compulsory misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// The paper-shaped figure runs (no `--scale=` flag).
    #[default]
    Paper,
    /// 100k-object smoke tier: same code path as `Big`, minutes cheaper.
    Mid,
    /// The million-object scale gate tier.
    Big,
}

impl Tier {
    /// Parse a tier name (`mid` / `big`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mid" => Some(Tier::Mid),
            "big" => Some(Tier::Big),
            _ => None,
        }
    }

    /// Objects in the tier's generated dataset (0 for `Paper`, whose
    /// binaries use their own size ladders).
    pub fn objects(self) -> usize {
        match self {
            Tier::Paper => 0,
            Tier::Mid => 100_000,
            Tier::Big => 1_000_000,
        }
    }

    /// Flag-spelling of the tier.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Paper => "paper",
            Tier::Mid => "mid",
            Tier::Big => "big",
        }
    }
}

/// Parsed command-line scale options.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Dataset sizes to sweep.
    pub sizes: Vec<usize>,
    /// True when running at published scale.
    pub paper: bool,
    /// Queries per set (paper: 1000).
    pub queries: usize,
    /// Worker threads for the split-planning phase
    /// (`--threads=auto|seq|N`; output is identical for every setting).
    pub threads: Parallelism,
    /// Machine-readable output: `--json <path>` / `--json=<path>` writes
    /// a `BENCH_<name>.json` record next to the printed tables. A bare
    /// `--json` (empty path) uses the default `BENCH_<name>.json` in the
    /// working directory.
    pub json: Option<PathBuf>,
    /// Scale tier (`--scale=mid|big`); [`Tier::Paper`] without the flag.
    pub tier: Tier,
    /// Pre-generated STDAT dataset for the scale tier (`--data=PATH`,
    /// written by `stidx generate`); the tier generates its dataset in
    /// process when absent.
    pub data: Option<PathBuf>,
}

impl Scale {
    /// Parse `--paper`, `--sizes=a,b,c`, `--queries=n`, `--threads=t`
    /// from `std::env`, with [`DEFAULT_SIZES`] as the unscaled ladder.
    pub fn from_args() -> Self {
        Self::from_args_with(&DEFAULT_SIZES)
    }

    /// Like [`Scale::from_args`] with a caller-chosen default ladder
    /// (the I/O figures pass [`IO_SIZES`]).
    pub fn from_args_with(defaults: &[usize]) -> Self {
        Self::parse(defaults, std::env::args().skip(1).collect())
    }

    fn parse(defaults: &[usize], args: Vec<String>) -> Self {
        let mut scale = Scale {
            sizes: defaults.to_vec(),
            paper: false,
            queries: 1000,
            threads: Parallelism::Sequential,
            json: None,
            tier: Tier::Paper,
            data: None,
        };
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg == "--paper" {
                scale.paper = true;
                scale.sizes = PAPER_SIZES.to_vec();
            } else if let Some(list) = arg.strip_prefix("--sizes=") {
                scale.sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes takes integers"))
                    .collect();
            } else if let Some(n) = arg.strip_prefix("--queries=") {
                scale.queries = n.parse().expect("--queries takes an integer");
            } else if let Some(t) = arg.strip_prefix("--threads=") {
                scale.threads = Parallelism::parse(t).expect("--threads takes auto, seq, or N");
            } else if arg == "--json" {
                // Optional value: `--json out.json` or a bare `--json`
                // (empty path = the binary's default BENCH_<name>.json).
                if let Some(next) = args.get(i + 1).filter(|a| !a.starts_with("--")) {
                    scale.json = Some(PathBuf::from(next));
                    i += 1;
                } else {
                    scale.json = Some(PathBuf::new());
                }
            } else if let Some(p) = arg.strip_prefix("--json=") {
                scale.json = Some(PathBuf::from(p));
            } else if let Some(t) = arg.strip_prefix("--scale=") {
                scale.tier =
                    Tier::parse(t).unwrap_or_else(|| panic!("--scale takes mid or big, not {t:?}"));
            } else if let Some(p) = arg.strip_prefix("--data=") {
                scale.data = Some(PathBuf::from(p));
            } else {
                panic!(
                    "unknown argument {arg} \
                     (expected --paper, --sizes=.., --queries=.., --threads=.., --json[=path], \
                      --scale=mid|big, --data=path)"
                );
            }
            i += 1;
        }
        scale
    }

    /// Human-readable label for a size (e.g. "10k").
    pub fn label(n: usize) -> String {
        if n.is_multiple_of(1000) && n > 0 {
            format!("{}k", n / 1000)
        } else {
            n.to_string()
        }
    }
}

/// Generate (deterministically) the random dataset of `n` objects.
pub fn random_dataset(n: usize) -> Vec<RasterizedObject> {
    RandomDatasetSpec::paper(n).generate()
}

/// Generate (deterministically) the railway dataset of `n` trains.
pub fn railway_dataset(n: usize) -> Vec<RasterizedObject> {
    RailwayDatasetSpec::paper(n).generate_rasterized()
}

/// The unsplit record of one object: its MBR over its whole lifetime.
/// The scale tiers index raw pieces — at a million short-lived objects
/// the split planner is not the subject under test.
pub fn object_record(o: &RasterizedObject) -> ObjectRecord {
    ObjectRecord {
        id: o.id(),
        stbox: sti_geom::StBox::new(o.mbr_range(0, o.len()), o.lifetime()),
    }
}

/// Stream a scale tier's records: from an STDAT dataset file when
/// `--data` was given (the CI cache path, written by `stidx generate`),
/// else straight from the deterministic generator — both orders are
/// identical, so the built tree is too.
///
/// # Panics
/// On an unreadable or corrupt `--data` file (a bench run on the wrong
/// dataset must die loudly, not silently regenerate).
pub fn tier_records(
    tier: Tier,
    data: Option<&std::path::Path>,
) -> Box<dyn Iterator<Item = ObjectRecord>> {
    assert!(tier != Tier::Paper, "tier_records needs --scale=mid|big");
    match data {
        Some(path) => {
            let reader = sti_datagen::DatasetReader::open(path)
                .unwrap_or_else(|e| panic!("--data={}: {e}", path.display()));
            Box::new(reader.map(|o| object_record(&o.expect("corrupt dataset object"))))
        }
        None => {
            // The spec iterator borrows the spec; a bench binary builds
            // exactly one, so leaking it buys a 'static stream.
            let spec: &'static _ = Box::leak(Box::new(RandomDatasetSpec::big(tier.objects())));
            Box::new(spec.iter().map(|o| object_record(&o)))
        }
    }
}

/// Buffer pool size for the warm scale-tier runs: large enough to keep
/// the directory hot, far too small to cache the leaf level, so the
/// eviction policy is what is actually measured.
pub const TIER_BUFFER_PAGES: usize = 256;

/// Bulk-load a tier's records into a PPR-Tree backed by a fresh
/// `FileBackend` under a scratch directory (which also hosts the sort
/// spool). Returns the index, the loader's stats, and the scratch dir —
/// callers remove it when the index is dropped.
pub fn bulk_tier_index(
    records: impl IntoIterator<Item = ObjectRecord>,
    tag: &str,
) -> (SpatioTemporalIndex, sti_pprtree::BulkStats, PathBuf) {
    let dir = std::env::temp_dir().join(format!("sti-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let backend =
        sti_storage::FileBackend::create(&dir.join("tree.pages")).expect("create backing file");
    let store = sti_storage::PageStore::with_backend(Box::new(backend), TIER_BUFFER_PAGES);
    let config = IndexConfig::paper(IndexBackend::PprTree);
    let (index, stats) = SpatioTemporalIndex::bulk_build_ppr(records, &config, store, &dir)
        .expect("bulk build failed");
    (index, stats, dir)
}

/// The scale-tier query mix: small snapshot probes with every eighth
/// query a medium interval scan. The scans are the one-shot leaf floods
/// a scan-resistant buffer exists to absorb; the probes are the hot
/// directory traffic an LRU loses each time a scan washes its pool.
/// Deterministic: same cardinality, same mix.
pub fn tier_queries(cardinality: usize) -> Vec<Query> {
    let mut scan_spec = sti_datagen::QuerySetSpec::medium_range();
    scan_spec.cardinality = cardinality / 8;
    let mut probe_spec = sti_datagen::QuerySetSpec::small_snapshot();
    probe_spec.cardinality = cardinality - scan_spec.cardinality;
    let scans = scan_spec.generate();
    let probes = probe_spec.generate();
    let mut out = Vec::with_capacity(cardinality);
    let (mut scan, mut probe) = (scans.into_iter(), probes.into_iter());
    for i in 0..cardinality {
        let q = if i % 8 == 7 {
            scan.next().or_else(|| probe.next())
        } else {
            probe.next().or_else(|| scan.next())
        };
        out.extend(q);
    }
    out
}

/// Warm-buffer query profile: per-query stats are deltas from the
/// tree's own probes, and residency persists across the whole set — the
/// opposite of [`query_io_profile`]'s reset-per-query methodology.
pub fn warm_query_io_profile(index: &SpatioTemporalIndex, queries: &[Query]) -> IoProfile {
    profile_queries(queries, |q| {
        index
            .query_with_stats(&q.area, &q.range)
            .expect("query failed")
            .1
    })
}

/// Plan splits and materialize the records.
pub fn split_records(
    objects: &[RasterizedObject],
    single: SingleSplitAlgorithm,
    dist: DistributionAlgorithm,
    budget: SplitBudget,
) -> Vec<ObjectRecord> {
    SplitPlan::build(objects, single, dist, budget, None).records(objects)
}

/// Build an index with the paper's parameters.
pub fn build_index(records: &[ObjectRecord], backend: IndexBackend) -> SpatioTemporalIndex {
    SpatioTemporalIndex::build(records, &IndexConfig::paper(backend))
        .expect("in-memory build cannot fail")
}

/// Like [`avg_query_io`] for a raw [`sti_rstar::RStarTree`] (outside the
/// facade): queries are converted with [`sti_geom::Rect3::from_query`]
/// at `time_scale`, the buffer is reset per query, and the average read
/// count is returned.
pub fn avg_rstar_query_io(
    tree: &mut sti_rstar::RStarTree,
    queries: &[Query],
    time_scale: f64,
) -> f64 {
    assert!(!queries.is_empty());
    let mut total = 0u64;
    for q in queries {
        tree.reset_for_query();
        let mut out = Vec::new();
        tree.query(
            &sti_geom::Rect3::from_query(&q.area, &q.range, time_scale),
            &mut out,
        )
        .expect("in-memory query cannot fail");
        total += tree.io_stats().reads;
    }
    total as f64 / queries.len() as f64
}

/// Run a query set (buffer reset before every query, as in §V) and
/// return the average number of disk accesses.
pub fn avg_query_io(index: &mut SpatioTemporalIndex, queries: &[Query]) -> f64 {
    assert!(!queries.is_empty());
    let mut total = 0u64;
    for q in queries {
        index.reset_for_query();
        let _ = index
            .query(&q.area, &q.range)
            .expect("in-memory query cannot fail");
        total += index.io_stats().reads;
    }
    total as f64 / queries.len() as f64
}

/// Per-query-set I/O distribution, measured via `sti-obs` deltas: the
/// paper's average plus percentiles and the summed [`QueryStats`].
///
/// `avg` uses the exact arithmetic of [`avg_query_io`] (total disk reads
/// over query count), so a table cell printed from one matches a JSON
/// field computed from the other digit for digit.
#[derive(Debug, Clone, PartialEq)]
pub struct IoProfile {
    /// Average disk reads per query (the paper's figure of merit).
    pub avg: f64,
    /// Median disk reads (nearest-rank on the sorted per-query counts).
    pub p50: u64,
    /// 95th-percentile disk reads.
    pub p95: u64,
    /// Worst single query.
    pub max: u64,
    /// Number of queries measured.
    pub queries: usize,
    /// Wall-clock for the whole query set, in seconds.
    pub wall_secs: f64,
    /// Summed per-query deltas (nodes visited, entries scanned, ...).
    pub totals: QueryStats,
}

impl IoProfile {
    /// Aggregate a batch of per-query deltas.
    pub fn from_stats(per_query: &[QueryStats], wall_secs: f64) -> IoProfile {
        assert!(!per_query.is_empty(), "profile of an empty query set");
        let mut reads: Vec<u64> = per_query.iter().map(|s| s.disk_reads).collect();
        reads.sort_unstable();
        let total: u64 = reads.iter().sum();
        let rank = |pct: usize| reads[(reads.len() - 1) * pct / 100];
        IoProfile {
            avg: total as f64 / per_query.len() as f64,
            p50: rank(50),
            p95: rank(95),
            max: reads[reads.len() - 1],
            queries: per_query.len(),
            wall_secs,
            totals: per_query.iter().copied().sum(),
        }
    }

    /// Structured form for `BENCH_*.json`. `avg_formatted` repeats `avg`
    /// through the `{:.2}` formatting the tables print, so the JSON can
    /// be diffed against the human output verbatim.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("avg", JsonValue::Num(self.avg)),
            ("avg_formatted", JsonValue::str(format!("{:.2}", self.avg))),
            ("p50", JsonValue::UInt(self.p50)),
            ("p95", JsonValue::UInt(self.p95)),
            ("max", JsonValue::UInt(self.max)),
            ("queries", JsonValue::UInt(self.queries as u64)),
            ("wall_secs", JsonValue::Num(self.wall_secs)),
            ("io", self.totals.to_json()),
        ])
    }
}

/// One measured series of a table: which row it belongs to, the series
/// (column) name, and the measured profile.
#[derive(Debug, Clone)]
pub struct SeriesProfile {
    /// Row label, e.g. a split budget ("150%") or a size ("10k").
    pub row: String,
    /// Series name, e.g. "ppr" or "rstar".
    pub series: String,
    /// The measured I/O distribution.
    pub profile: IoProfile,
}

/// Convenience constructor for [`SeriesProfile`].
pub fn series(
    row: impl Into<String>,
    name: impl Into<String>,
    profile: IoProfile,
) -> SeriesProfile {
    SeriesProfile {
        row: row.into(),
        series: name.into(),
        profile,
    }
}

/// Run one [`QueryStats`]-returning closure per query (the closure is in
/// charge of the per-query buffer reset) and aggregate the deltas.
pub fn profile_queries(queries: &[Query], mut run: impl FnMut(&Query) -> QueryStats) -> IoProfile {
    assert!(!queries.is_empty());
    let start = Instant::now();
    let per: Vec<QueryStats> = queries.iter().map(&mut run).collect();
    IoProfile::from_stats(&per, start.elapsed().as_secs_f64())
}

/// [`avg_query_io`], upgraded: same buffer-reset-per-query methodology,
/// but the full [`IoProfile`] comes back. `profile.avg` equals what
/// [`avg_query_io`] returns for the same index and queries.
pub fn query_io_profile(index: &mut SpatioTemporalIndex, queries: &[Query]) -> IoProfile {
    profile_queries(queries, |q| {
        index.reset_for_query();
        index
            .query_with_stats(&q.area, &q.range)
            .expect("in-memory query cannot fail")
            .1
    })
}

/// [`avg_rstar_query_io`], upgraded to a full [`IoProfile`].
pub fn rstar_query_io_profile(
    tree: &mut sti_rstar::RStarTree,
    queries: &[Query],
    time_scale: f64,
) -> IoProfile {
    profile_queries(queries, |q| {
        tree.reset_for_query();
        let mut out = Vec::new();
        tree.query(
            &sti_geom::Rect3::from_query(&q.area, &q.range, time_scale),
            &mut out,
        )
        .expect("in-memory query cannot fail")
    })
}

/// Accumulates everything a figure binary prints — tables, measured
/// profiles, build spans, free-form notes — and optionally serializes it
/// as a `BENCH_<name>.json` record when the binary was invoked with
/// `--json`.
///
/// Usage: create one per binary, route every `print_table` call through
/// [`BenchReport::table`] / [`BenchReport::table_with_profiles`], and
/// call [`BenchReport::finish`] last.
pub struct BenchReport {
    name: String,
    out_path: Option<PathBuf>,
    scale_json: JsonValue,
    tables: Vec<JsonValue>,
    notes: Vec<(String, JsonValue)>,
    started: Instant,
}

impl BenchReport {
    /// Start a report for the binary `name` (e.g. "fig15").
    pub fn new(name: &str, scale: &Scale) -> BenchReport {
        let out_path = scale.json.as_ref().map(|p| {
            if p.as_os_str().is_empty() {
                PathBuf::from(format!("BENCH_{name}.json"))
            } else {
                p.clone()
            }
        });
        let scale_json = JsonValue::object([
            ("paper", JsonValue::Bool(scale.paper)),
            (
                "sizes",
                JsonValue::array(scale.sizes.iter().map(|&n| JsonValue::UInt(n as u64))),
            ),
            ("queries", JsonValue::UInt(scale.queries as u64)),
            ("threads", JsonValue::str(format!("{:?}", scale.threads))),
            ("tier", JsonValue::str(scale.tier.name())),
        ]);
        BenchReport {
            name: name.to_string(),
            out_path,
            scale_json,
            tables: Vec::new(),
            notes: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Print a table and record it (headers and cells verbatim).
    pub fn table(&mut self, title: &str, headers: &[&str], rows: &[Vec<String>]) {
        self.table_with_profiles(title, headers, rows, Vec::new());
    }

    /// Print a table and record it together with the measured I/O
    /// profiles behind its cells.
    pub fn table_with_profiles(
        &mut self,
        title: &str,
        headers: &[&str],
        rows: &[Vec<String>],
        profiles: Vec<SeriesProfile>,
    ) {
        print_table(title, headers, rows);
        let mut table = JsonValue::object([
            ("title", JsonValue::str(title)),
            (
                "headers",
                JsonValue::array(headers.iter().map(|&h| JsonValue::str(h))),
            ),
            (
                "rows",
                JsonValue::array(
                    rows.iter()
                        .map(|row| JsonValue::array(row.iter().map(|c| JsonValue::str(c.clone())))),
                ),
            ),
        ]);
        if !profiles.is_empty() {
            table.push_field(
                "profiles",
                JsonValue::array(profiles.iter().map(|sp| {
                    let mut obj = JsonValue::object([
                        ("row", JsonValue::str(sp.row.clone())),
                        ("series", JsonValue::str(sp.series.clone())),
                    ]);
                    if let JsonValue::Obj(fields) = sp.profile.to_json() {
                        for (k, v) in fields {
                            obj.push_field(k, v);
                        }
                    }
                    obj
                })),
            );
        }
        self.tables.push(table);
    }

    /// Record the per-phase build spans for a dataset size.
    pub fn build_spans(&mut self, label: &str, stats: &BuildStats) {
        let spans = JsonValue::array(stats.spans().iter().map(sti_obs::Span::to_json));
        self.notes.push((format!("build_spans_{label}"), spans));
    }

    /// Attach a free-form key/value to the record.
    pub fn note(&mut self, key: &str, value: JsonValue) {
        self.notes.push((key.to_string(), value));
    }

    /// Serialize the record if `--json` was given. Call once, last.
    pub fn finish(self) {
        let Some(path) = self.out_path else {
            return;
        };
        let mut doc = JsonValue::object([
            ("schema", JsonValue::str("sti-bench/1")),
            ("bench", JsonValue::str(self.name.clone())),
            ("scale", self.scale_json),
            (
                "wall_secs",
                JsonValue::Num(self.started.elapsed().as_secs_f64()),
            ),
            ("tables", JsonValue::Arr(self.tables)),
        ]);
        if !self.notes.is_empty() {
            doc.push_field("notes", JsonValue::Obj(self.notes));
        }
        match std::fs::write(&path, doc.render_pretty()) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format seconds for the CPU-time figures (log-scale in the paper).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_datagen::QuerySetSpec;

    #[test]
    fn datasets_are_deterministic() {
        let a = random_dataset(50);
        let b = random_dataset(50);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[7], b[7]);
    }

    #[test]
    fn avg_query_io_is_positive() {
        let objs = random_dataset(200);
        let records = split_records(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            SplitBudget::Percent(50.0),
        );
        let mut idx = build_index(&records, IndexBackend::PprTree);
        let mut spec = QuerySetSpec::mixed_snapshot();
        spec.cardinality = 20;
        let io = avg_query_io(&mut idx, &spec.generate());
        assert!(io >= 1.0, "every query reads at least the root: {io}");
    }

    #[test]
    fn scale_parses_json_flag_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let s = Scale::parse(&DEFAULT_SIZES, args(&["--json", "out.json"]));
        assert_eq!(s.json, Some(PathBuf::from("out.json")));
        let s = Scale::parse(&DEFAULT_SIZES, args(&["--json=x.json", "--queries=5"]));
        assert_eq!(s.json, Some(PathBuf::from("x.json")));
        assert_eq!(s.queries, 5);
        // Bare --json followed by another flag: default path sentinel.
        let s = Scale::parse(&DEFAULT_SIZES, args(&["--json", "--paper"]));
        assert_eq!(s.json, Some(PathBuf::new()));
        assert!(s.paper);
        let s = Scale::parse(&DEFAULT_SIZES, args(&[]));
        assert_eq!(s.json, None);
    }

    #[test]
    fn io_profile_matches_avg_query_io_exactly() {
        let objs = random_dataset(200);
        let records = split_records(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            SplitBudget::Percent(50.0),
        );
        let mut spec = QuerySetSpec::mixed_snapshot();
        spec.cardinality = 25;
        let queries = spec.generate();
        let mut idx = build_index(&records, IndexBackend::PprTree);
        let avg = avg_query_io(&mut idx, &queries);
        let profile = query_io_profile(&mut idx, &queries);
        assert_eq!(profile.avg.to_bits(), avg.to_bits(), "identical arithmetic");
        assert_eq!(profile.queries, queries.len());
        assert!(profile.max >= profile.p95 && profile.p95 >= profile.p50);
        assert_eq!(profile.totals.disk_writes, 0, "queries are read-only");
        assert!(profile.totals.nodes_visited > 0);
        // The formatted average is what the tables print.
        let cell = format!("{:.2}", avg);
        match profile.to_json() {
            JsonValue::Obj(fields) => {
                let formatted = fields
                    .iter()
                    .find(|(k, _)| k == "avg_formatted")
                    .map(|(_, v)| v.clone());
                assert_eq!(formatted, Some(JsonValue::str(cell)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn io_profile_percentiles_nearest_rank() {
        let per: Vec<QueryStats> = (1..=100u64)
            .map(|n| QueryStats {
                disk_reads: n,
                ..QueryStats::new()
            })
            .collect();
        let p = IoProfile::from_stats(&per, 0.0);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p95, 95);
        assert_eq!(p.max, 100);
        assert_eq!(p.avg.to_bits(), 50.5f64.to_bits());
    }

    #[test]
    fn label_formatting() {
        assert_eq!(Scale::label(10_000), "10k");
        assert_eq!(Scale::label(512), "512");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.05).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }
}
