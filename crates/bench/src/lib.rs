//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the experiment index). By default the
//! datasets are scaled down (500–4000 objects instead of 10k–80k) so the
//! whole suite runs in minutes; pass `--paper` for the published sizes,
//! or `--sizes=a,b,c` for custom ones.

use std::time::Instant;
use sti_core::{
    DistributionAlgorithm, IndexBackend, IndexConfig, ObjectRecord, Parallelism,
    SingleSplitAlgorithm, SpatioTemporalIndex, SplitBudget, SplitPlan,
};
use sti_datagen::{Query, RailwayDatasetSpec, RandomDatasetSpec};
use sti_trajectory::RasterizedObject;

/// Dataset sizes used when a binary is invoked without flags. The ratios
/// mirror the paper's 10k/30k/50k/80k ladder.
pub const DEFAULT_SIZES: [usize; 4] = [500, 1000, 2000, 4000];

/// The paper's dataset sizes (Table I).
pub const PAPER_SIZES: [usize; 4] = [10_000, 30_000, 50_000, 80_000];

/// Default ladder for the I/O figures (15–18, railway, ablations): these
/// never run the quadratic dynamic programs, so they afford enough
/// density for page-level effects to show.
pub const IO_SIZES: [usize; 4] = [2_500, 5_000, 10_000, 20_000];

/// Parsed command-line scale options.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Dataset sizes to sweep.
    pub sizes: Vec<usize>,
    /// True when running at published scale.
    pub paper: bool,
    /// Queries per set (paper: 1000).
    pub queries: usize,
    /// Worker threads for the split-planning phase
    /// (`--threads=auto|seq|N`; output is identical for every setting).
    pub threads: Parallelism,
}

impl Scale {
    /// Parse `--paper`, `--sizes=a,b,c`, `--queries=n`, `--threads=t`
    /// from `std::env`, with [`DEFAULT_SIZES`] as the unscaled ladder.
    pub fn from_args() -> Self {
        Self::from_args_with(&DEFAULT_SIZES)
    }

    /// Like [`Scale::from_args`] with a caller-chosen default ladder
    /// (the I/O figures pass [`IO_SIZES`]).
    pub fn from_args_with(defaults: &[usize]) -> Self {
        let mut scale = Scale {
            sizes: defaults.to_vec(),
            paper: false,
            queries: 1000,
            threads: Parallelism::Sequential,
        };
        for arg in std::env::args().skip(1) {
            if arg == "--paper" {
                scale.paper = true;
                scale.sizes = PAPER_SIZES.to_vec();
            } else if let Some(list) = arg.strip_prefix("--sizes=") {
                scale.sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes takes integers"))
                    .collect();
            } else if let Some(n) = arg.strip_prefix("--queries=") {
                scale.queries = n.parse().expect("--queries takes an integer");
            } else if let Some(t) = arg.strip_prefix("--threads=") {
                scale.threads = Parallelism::parse(t).expect("--threads takes auto, seq, or N");
            } else {
                panic!(
                    "unknown argument {arg} \
                     (expected --paper, --sizes=.., --queries=.., --threads=..)"
                );
            }
        }
        scale
    }

    /// Human-readable label for a size (e.g. "10k").
    pub fn label(n: usize) -> String {
        if n.is_multiple_of(1000) && n > 0 {
            format!("{}k", n / 1000)
        } else {
            n.to_string()
        }
    }
}

/// Generate (deterministically) the random dataset of `n` objects.
pub fn random_dataset(n: usize) -> Vec<RasterizedObject> {
    RandomDatasetSpec::paper(n).generate()
}

/// Generate (deterministically) the railway dataset of `n` trains.
pub fn railway_dataset(n: usize) -> Vec<RasterizedObject> {
    RailwayDatasetSpec::paper(n).generate_rasterized()
}

/// Plan splits and materialize the records.
pub fn split_records(
    objects: &[RasterizedObject],
    single: SingleSplitAlgorithm,
    dist: DistributionAlgorithm,
    budget: SplitBudget,
) -> Vec<ObjectRecord> {
    SplitPlan::build(objects, single, dist, budget, None).records(objects)
}

/// Build an index with the paper's parameters.
pub fn build_index(records: &[ObjectRecord], backend: IndexBackend) -> SpatioTemporalIndex {
    SpatioTemporalIndex::build(records, &IndexConfig::paper(backend))
}

/// Like [`avg_query_io`] for a raw [`sti_rstar::RStarTree`] (outside the
/// facade): queries are converted with [`sti_geom::Rect3::from_query`]
/// at `time_scale`, the buffer is reset per query, and the average read
/// count is returned.
pub fn avg_rstar_query_io(
    tree: &mut sti_rstar::RStarTree,
    queries: &[Query],
    time_scale: f64,
) -> f64 {
    assert!(!queries.is_empty());
    let mut total = 0u64;
    for q in queries {
        tree.reset_for_query();
        let mut out = Vec::new();
        tree.query(
            &sti_geom::Rect3::from_query(&q.area, &q.range, time_scale),
            &mut out,
        );
        total += tree.io_stats().reads;
    }
    total as f64 / queries.len() as f64
}

/// Run a query set (buffer reset before every query, as in §V) and
/// return the average number of disk accesses.
pub fn avg_query_io(index: &mut SpatioTemporalIndex, queries: &[Query]) -> f64 {
    assert!(!queries.is_empty());
    let mut total = 0u64;
    for q in queries {
        index.reset_for_query();
        let _ = index.query(&q.area, &q.range);
        total += index.io_stats().reads;
    }
    total as f64 / queries.len() as f64
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format seconds for the CPU-time figures (log-scale in the paper).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_datagen::QuerySetSpec;

    #[test]
    fn datasets_are_deterministic() {
        let a = random_dataset(50);
        let b = random_dataset(50);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[7], b[7]);
    }

    #[test]
    fn avg_query_io_is_positive() {
        let objs = random_dataset(200);
        let records = split_records(
            &objs,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::Greedy,
            SplitBudget::Percent(50.0),
        );
        let mut idx = build_index(&records, IndexBackend::PprTree);
        let mut spec = QuerySetSpec::mixed_snapshot();
        spec.cardinality = 20;
        let io = avg_query_io(&mut idx, &spec.generate());
        assert!(io >= 1.0, "every query reads at least the root: {io}");
    }

    #[test]
    fn label_formatting() {
        assert_eq!(Scale::label(10_000), "10k");
        assert_eq!(Scale::label(512), "512");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.05).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }
}
