//! Ablation: the R\* topological split vs Guttman's quadratic split for
//! the 3D baseline tree.
//!
//! Beckmann et al.'s central claim was that the margin-driven split (plus
//! forced reinsertion) beats the classic quadratic split; this sweep
//! verifies our baseline is a *faithful* R\*-Tree — if the two split
//! strategies performed alike, the "R\*" in the paper's comparison would
//! be in name only.

use sti_bench::{
    random_dataset, rstar_query_io_profile, series, split_records, BenchReport, Scale,
};
use sti_core::{DistributionAlgorithm, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::{QuerySetSpec, TIME_EXTENT};
use sti_geom::Rect3;
use sti_rstar::{RStarParams, RStarTree, SplitStrategy};

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_split", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let records = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(50.0),
    );
    let time_scale = f64::from(TIME_EXTENT);
    let boxes: Vec<(u64, Rect3)> = records
        .iter()
        .map(|r| (r.id, r.to_rect3(time_scale)))
        .collect();

    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for (label, strategy, reinsert) in [
        ("R* split + reinsert", SplitStrategy::RStar, 0.3),
        ("R* split, no reinsert", SplitStrategy::RStar, 0.0001),
        ("quadratic + reinsert", SplitStrategy::QuadraticGuttman, 0.3),
        (
            "quadratic, no reinsert",
            SplitStrategy::QuadraticGuttman,
            0.0001,
        ),
    ] {
        let params = RStarParams {
            split_strategy: strategy,
            reinsert_fraction: reinsert,
            ..RStarParams::default()
        };
        let mut tree = RStarTree::new(params);
        for &(id, rect) in &boxes {
            tree.insert(id, rect).expect("mem insert");
        }
        let profile = rstar_query_io_profile(&mut tree, &queries, time_scale);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", profile.avg),
            tree.num_pages().to_string(),
        ]);
        profiles.push(series(label, "rstar", profile));
    }
    report.table_with_profiles(
        &format!(
            "Ablation — R*-Tree split strategy, small range queries ({} random dataset, 50% splits)",
            Scale::label(n)
        ),
        &["Configuration", "Avg I/O", "Pages"],
        &rows,
        profiles,
    );
    report.finish();
}
