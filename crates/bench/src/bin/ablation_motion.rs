//! Ablation: how object speed changes the split/no-split trade-off for
//! both index structures (companion to fig. 15).
//!
//! The paper reports that splits *hurt* the 3D R\*-Tree. In this
//! reproduction the R\*-Tree (with forced reinsertion and margin-driven
//! splits) usually absorbs the extra records; the degradation only
//! surfaces for slow movers, whose records are already small relative to
//! leaf MBRs — then extra records add nodes without shrinking them. This
//! binary sweeps the motion-speed regime to expose exactly where each
//! behavior holds.

use sti_bench::{build_index, query_io_profile, series, split_records, BenchReport, Scale};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::{QuerySetSpec, RandomDatasetSpec};

const BUDGETS: [f64; 5] = [0.0, 10.0, 25.0, 50.0, 150.0];

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_motion", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let mut rows = Vec::new();
        let mut profiles = Vec::new();
        for vel in [0.0005f64, 0.002, 0.004, 0.01] {
            let mut ds = RandomDatasetSpec::paper(n);
            ds.max_velocity = vel;
            ds.max_acceleration = vel / 20.0;
            let objects = ds.generate();
            let label = format!("{vel}");
            let mut cells = vec![label.clone()];
            for pct in BUDGETS {
                let records = split_records(
                    &objects,
                    SingleSplitAlgorithm::MergeSplit,
                    DistributionAlgorithm::LaGreedy,
                    SplitBudget::Percent(pct),
                );
                let mut idx = build_index(&records, backend);
                let profile = query_io_profile(&mut idx, &queries);
                cells.push(format!("{:.2}", profile.avg));
                profiles.push(series(label.clone(), format!("split_{pct}"), profile));
            }
            rows.push(cells);
        }
        report.table_with_profiles(
            &format!(
                "Ablation — {backend}, small range query I/O vs split budget, by max speed ({} objects)",
                Scale::label(n)
            ),
            &["Speed", "0%", "10%", "25%", "50%", "150%"],
            &rows,
            profiles,
        );
    }
    report.finish();
}
