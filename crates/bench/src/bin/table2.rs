//! Table II: the snapshot and range query sets.

use sti_bench::print_table;
use sti_datagen::QuerySetSpec;

fn main() {
    let sets = [
        ("Snapshot", QuerySetSpec::tiny_snapshot()),
        ("Snapshot", QuerySetSpec::small_snapshot()),
        ("Snapshot", QuerySetSpec::mixed_snapshot()),
        ("Snapshot", QuerySetSpec::large_snapshot()),
        ("Range", QuerySetSpec::small_range()),
        ("Range", QuerySetSpec::medium_range()),
    ];
    let rows: Vec<Vec<String>> = sets
        .iter()
        .map(|(kind, s)| {
            // Generate to prove the spec is realizable and verify counts.
            let qs = s.generate();
            assert_eq!(qs.len(), s.cardinality);
            vec![
                kind.to_string(),
                s.name.to_string(),
                s.cardinality.to_string(),
                format!("{}-{}", s.extent_pct.0, s.extent_pct.1),
                if s.duration.0 == s.duration.1 {
                    s.duration.0.to_string()
                } else {
                    format!("{} - {}", s.duration.0, s.duration.1)
                },
            ]
        })
        .collect();
    print_table(
        "Table II — snapshot and range query sets",
        &["Kind", "Name", "Cardinality", "Extents (%)", "Duration"],
        &rows,
    );
}
