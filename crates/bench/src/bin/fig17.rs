//! Figure 17: small range queries over the random datasets — the
//! PPR-Tree at 150% splits vs the R\*-Tree at 1% splits vs the R\*-Tree
//! over the piecewise representation.
//!
//! Expected shape: PPR-150% by far the best; piecewise R\* worst.

use sti_bench::{avg_query_io, build_index, print_table, random_dataset, split_records, Scale};
use sti_core::{
    piecewise_records, DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget,
};
use sti_datagen::QuerySetSpec;

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);

        let ppr_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(150.0),
        );
        let mut ppr = build_index(&ppr_recs, IndexBackend::PprTree);

        let rstar_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(1.0),
        );
        let mut rstar = build_index(&rstar_recs, IndexBackend::RStar);

        let piece_recs = piecewise_records(&objects);
        let mut piecewise = build_index(&piece_recs, IndexBackend::RStar);

        rows.push(vec![
            Scale::label(n),
            format!("{:.2}", avg_query_io(&mut ppr, &queries)),
            format!("{:.2}", avg_query_io(&mut rstar, &queries)),
            format!("{:.2}", avg_query_io(&mut piecewise, &queries)),
        ]);
    }
    print_table(
        "Figure 17 — small range queries, avg disk accesses (random datasets)",
        &[
            "Dataset",
            "PPR-Tree 150%",
            "R*-Tree 1%",
            "R*-Tree piecewise",
        ],
        &rows,
    );
}
