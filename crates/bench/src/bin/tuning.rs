//! §IV: finding a good number of splits with the analytical model and by
//! sampling, on the "50k" random dataset.

use sti_bench::{print_table, random_dataset, Scale};
use sti_core::tuning::{choose_splits_analytical, choose_splits_by_sampling, QueryProfile};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;

fn main() {
    let scale = Scale::from_args();
    // Tuning needs enough alive density for budgets to differ; the
    // generic default ladder is too small, so this binary defaults to
    // 20k objects unless sizes were given explicitly.
    let n = if scale.sizes == sti_bench::DEFAULT_SIZES {
        20_000
    } else {
        scale.sizes[scale.sizes.len().saturating_sub(2)]
    };
    let objects = random_dataset(n);
    let candidates: Vec<SplitBudget> = [0.0, 10.0, 25.0, 50.0, 100.0, 150.0]
        .map(SplitBudget::Percent)
        .to_vec();

    // Method 1: analytical model, tuned for small snapshot queries
    // (extents ≈ 0.55% of the side, duration 1 — the Small set's mean).
    let analytical = choose_splits_analytical(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        &candidates,
        QueryProfile {
            extents: (0.0055, 0.0055),
            duration: 1,
        },
        1000,
        scale.threads,
    );
    let rows: Vec<Vec<String>> = analytical
        .costs
        .iter()
        .enumerate()
        .map(|(i, (b, c))| {
            vec![
                format!("{b:?}"),
                format!("{c:.2}"),
                if i == analytical.best {
                    "<- chosen".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    print_table(
        &format!(
            "§IV method 1 — analytical model ({} random dataset)",
            Scale::label(n)
        ),
        &["Budget", "Predicted node accesses", ""],
        &rows,
    );

    // Method 2: sampling — build real indexes over 1/4 of the objects.
    let mut spec = QuerySetSpec::small_snapshot();
    spec.cardinality = scale.queries.min(200);
    let queries: Vec<_> = spec.generate().iter().map(|q| (q.area, q.range)).collect();
    let sampled = choose_splits_by_sampling(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        &candidates,
        &queries,
        IndexBackend::PprTree,
        4,
        scale.threads,
    );
    let rows: Vec<Vec<String>> = sampled
        .costs
        .iter()
        .enumerate()
        .map(|(i, (b, c))| {
            vec![
                format!("{b:?}"),
                format!("{c:.2}"),
                if i == sampled.best {
                    "<- chosen".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    print_table(
        &format!(
            "§IV method 2 — sampling, 1/4 of the objects ({} random dataset)",
            Scale::label(n)
        ),
        &["Budget", "Measured avg I/O on sample", ""],
        &rows,
    );
}
