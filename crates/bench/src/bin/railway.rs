//! §V-D, railway datasets: "for the railway datasets we observe that the
//! PPR-Tree is again superior in all cases. Due to lack of space the
//! figures have been omitted." — this binary produces those omitted
//! figures: small range and mixed snapshot queries over the skewed train
//! workload.

use sti_bench::{
    build_index, query_io_profile, railway_dataset, series, split_records, BenchReport, Scale,
};
use sti_core::{
    piecewise_records, DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget,
};
use sti_datagen::QuerySetSpec;

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("railway", &scale);

    // Build every index once per dataset size; both query sets then run
    // against the same structures.
    let mut indexes = Vec::new();
    for &n in &scale.sizes {
        let objects = railway_dataset(n);

        let ppr_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(150.0),
        );
        let ppr = build_index(&ppr_recs, IndexBackend::PprTree);

        let rstar_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(1.0),
        );
        let rstar = build_index(&rstar_recs, IndexBackend::RStar);

        let piecewise = build_index(&piecewise_records(&objects), IndexBackend::RStar);
        indexes.push((n, ppr, rstar, piecewise));
    }

    for (title, mut spec) in [
        ("small range queries", QuerySetSpec::small_range()),
        ("mixed snapshot queries", QuerySetSpec::mixed_snapshot()),
    ] {
        spec.cardinality = scale.queries;
        let queries = spec.generate();
        let mut rows = Vec::new();
        let mut profiles = Vec::new();
        for (n, ppr, rstar, piecewise) in &mut indexes {
            let label = Scale::label(*n);
            let ppr_p = query_io_profile(ppr, &queries);
            let rstar_p = query_io_profile(rstar, &queries);
            let piece_p = query_io_profile(piecewise, &queries);
            rows.push(vec![
                label.clone(),
                format!("{:.2}", ppr_p.avg),
                format!("{:.2}", rstar_p.avg),
                format!("{:.2}", piece_p.avg),
            ]);
            profiles.push(series(label.clone(), "ppr_150", ppr_p));
            profiles.push(series(label.clone(), "rstar_1", rstar_p));
            profiles.push(series(label, "rstar_piecewise", piece_p));
        }
        report.table_with_profiles(
            &format!("Railway datasets — {title}, avg disk accesses"),
            &[
                "Dataset",
                "PPR-Tree 150%",
                "R*-Tree 1%",
                "R*-Tree piecewise",
            ],
            &rows,
            profiles,
        );
    }
    report.finish();
}
