//! §V-D, railway datasets: "for the railway datasets we observe that the
//! PPR-Tree is again superior in all cases. Due to lack of space the
//! figures have been omitted." — this binary produces those omitted
//! figures: small range and mixed snapshot queries over the skewed train
//! workload.

use sti_bench::{avg_query_io, build_index, print_table, railway_dataset, split_records, Scale};
use sti_core::{
    piecewise_records, DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget,
};
use sti_datagen::QuerySetSpec;

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);

    // Build every index once per dataset size; both query sets then run
    // against the same structures.
    let mut indexes = Vec::new();
    for &n in &scale.sizes {
        let objects = railway_dataset(n);

        let ppr_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(150.0),
        );
        let ppr = build_index(&ppr_recs, IndexBackend::PprTree);

        let rstar_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(1.0),
        );
        let rstar = build_index(&rstar_recs, IndexBackend::RStar);

        let piecewise = build_index(&piecewise_records(&objects), IndexBackend::RStar);
        indexes.push((n, ppr, rstar, piecewise));
    }

    for (title, mut spec) in [
        ("small range queries", QuerySetSpec::small_range()),
        ("mixed snapshot queries", QuerySetSpec::mixed_snapshot()),
    ] {
        spec.cardinality = scale.queries;
        let queries = spec.generate();
        let mut rows = Vec::new();
        for (n, ppr, rstar, piecewise) in &mut indexes {
            rows.push(vec![
                Scale::label(*n),
                format!("{:.2}", avg_query_io(ppr, &queries)),
                format!("{:.2}", avg_query_io(rstar, &queries)),
                format!("{:.2}", avg_query_io(piecewise, &queries)),
            ]);
        }
        print_table(
            &format!("Railway datasets — {title}, avg disk accesses"),
            &[
                "Dataset",
                "PPR-Tree 150%",
                "R*-Tree 1%",
                "R*-Tree piecewise",
            ],
            &rows,
        );
    }
}
