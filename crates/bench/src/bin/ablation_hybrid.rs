//! Ablation: query duration vs structure choice — why the paper targets
//! *snapshot and small interval* queries, and what the MV3R-style hybrid
//! (\[25\]) buys.
//!
//! Sweeps the query window duration and reports PPR-Tree, 3D R\*-Tree,
//! and hybrid I/O over the same 150%-split records. Expected shape: PPR
//! wins short windows, R\* wins long ones, the hybrid tracks the minimum
//! at the cost of storing both structures.

use sti_bench::{
    build_index, profile_queries, query_io_profile, random_dataset, series, split_records,
    BenchReport, Scale,
};
use sti_core::hybrid::{HybridConfig, HybridIndex};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;

const DURATIONS: [u32; 8] = [1, 5, 10, 25, 50, 100, 200, 400];

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_hybrid", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let records = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
    );

    let mut ppr = build_index(&records, IndexBackend::PprTree);
    let mut rstar = build_index(&records, IndexBackend::RStar);
    let mut hybrid = HybridIndex::build(&records, &HybridConfig::default())
        .expect("in-memory build cannot fail");

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for dur in DURATIONS {
        let mut spec = QuerySetSpec::small_range();
        spec.duration = (dur, dur);
        spec.cardinality = scale.queries;
        let queries = spec.generate();

        let ppr_p = query_io_profile(&mut ppr, &queries);
        let rstar_p = query_io_profile(&mut rstar, &queries);
        let hybrid_p = profile_queries(&queries, |q| {
            hybrid.reset_for_query();
            hybrid
                .query_with_stats(&q.area, &q.range)
                .expect("in-memory query cannot fail")
                .1
        });
        let label = dur.to_string();
        rows.push(vec![
            label.clone(),
            format!("{:.2}", ppr_p.avg),
            format!("{:.2}", rstar_p.avg),
            format!("{:.2}", hybrid_p.avg),
        ]);
        profiles.push(series(label.clone(), "ppr", ppr_p));
        profiles.push(series(label.clone(), "rstar", rstar_p));
        profiles.push(series(label, "hybrid", hybrid_p));
    }
    rows.push(vec![
        "pages".into(),
        ppr.num_pages().to_string(),
        rstar.num_pages().to_string(),
        hybrid.num_pages().to_string(),
    ]);
    report.table_with_profiles(
        &format!(
            "Ablation — query duration vs structure ({} random dataset, 150% splits, hybrid threshold {})",
            Scale::label(n),
            HybridConfig::default().duration_threshold
        ),
        &["Duration", "PPR-Tree", "R*-Tree", "Hybrid (MV3R-style)"],
        &rows,
        profiles,
    );
    report.finish();
}
