//! Ablation: query duration vs structure choice — why the paper targets
//! *snapshot and small interval* queries, and what the MV3R-style hybrid
//! (\[25\]) buys.
//!
//! Sweeps the query window duration and reports PPR-Tree, 3D R\*-Tree,
//! and hybrid I/O over the same 150%-split records. Expected shape: PPR
//! wins short windows, R\* wins long ones, the hybrid tracks the minimum
//! at the cost of storing both structures.

use sti_bench::{avg_query_io, build_index, print_table, random_dataset, split_records, Scale};
use sti_core::hybrid::{HybridConfig, HybridIndex};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;

const DURATIONS: [u32; 8] = [1, 5, 10, 25, 50, 100, 200, 400];

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let records = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
    );

    let mut ppr = build_index(&records, IndexBackend::PprTree);
    let mut rstar = build_index(&records, IndexBackend::RStar);
    let mut hybrid = HybridIndex::build(&records, &HybridConfig::default());

    let mut rows = Vec::new();
    for dur in DURATIONS {
        let mut spec = QuerySetSpec::small_range();
        spec.duration = (dur, dur);
        spec.cardinality = scale.queries;
        let queries = spec.generate();

        let mut hybrid_total = 0u64;
        for q in &queries {
            hybrid.reset_for_query();
            let _ = hybrid.query(&q.area, &q.range);
            hybrid_total += hybrid.io_stats().reads;
        }
        rows.push(vec![
            dur.to_string(),
            format!("{:.2}", avg_query_io(&mut ppr, &queries)),
            format!("{:.2}", avg_query_io(&mut rstar, &queries)),
            format!("{:.2}", hybrid_total as f64 / queries.len() as f64),
        ]);
    }
    rows.push(vec![
        "pages".into(),
        ppr.num_pages().to_string(),
        rstar.num_pages().to_string(),
        hybrid.num_pages().to_string(),
    ]);
    print_table(
        &format!(
            "Ablation — query duration vs structure ({} random dataset, 150% splits, hybrid threshold {})",
            Scale::label(n),
            HybridConfig::default().duration_threshold
        ),
        &["Duration", "PPR-Tree", "R*-Tree", "Hybrid (MV3R-style)"],
        &rows,
    );
}
