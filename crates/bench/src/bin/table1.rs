//! Table I: statistics of the random and railway datasets.

use sti_bench::{print_table, railway_dataset, random_dataset, Scale};
use sti_datagen::{DatasetStats, TIME_EXTENT};

fn main() {
    let scale = Scale::from_args();

    type Gen = fn(usize) -> Vec<sti_trajectory::RasterizedObject>;
    for (family, gen) in [
        ("Random", random_dataset as Gen),
        ("Railway", railway_dataset as Gen),
    ] {
        let mut rows = Vec::new();
        for &n in &scale.sizes {
            let objects = gen(n);
            let s = DatasetStats::compute(&objects, TIME_EXTENT);
            rows.push(vec![
                Scale::label(n),
                s.total_objects.to_string(),
                format!("{:.3}", s.objects_per_instant),
                s.total_segments.to_string(),
                format!("{:.1}", s.avg_lifetime),
                format!(
                    "{:.2}%-{:.2}%",
                    s.extent_range.0 * 100.0,
                    s.extent_range.1 * 100.0
                ),
            ]);
        }
        print_table(
            &format!("Table I — {family} datasets"),
            &[
                "Dataset",
                "Total Objects",
                "Objects/Instant (Avg.)",
                "Total Segments",
                "Lifetime (Avg.)",
                "Extent",
            ],
            &rows,
        );
    }
}
