//! Ablation: packed vs dynamically built R\*-Trees on moving-object data.
//!
//! §V of the paper: "We decided not to use any packing algorithms for the
//! R\*-Tree, since from our previous experience, packing does not help
//! substantially with datasets of moving objects. Packing algorithms tend
//! to cluster together objects that might be consecutive in order even
//! though they may correspond to large and small intervals."
//!
//! This binary tests that claim: STR and Hilbert bulk loading versus
//! dynamic R\* insertion, over unsplit and split records.

use sti_bench::{print_table, random_dataset, split_records, Scale};
use sti_core::{
    DistributionAlgorithm, IndexBackend, IndexConfig, SingleSplitAlgorithm, SpatioTemporalIndex,
    SplitBudget,
};
use sti_datagen::{QuerySetSpec, TIME_EXTENT};
use sti_geom::Rect3;
use sti_rstar::{PackingAlgorithm, RStarParams, RStarTree};

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();
    let time_scale = f64::from(TIME_EXTENT);

    let mut rows = Vec::new();
    for (label, pct) in [("unsplit", 0.0), ("150% splits", 150.0)] {
        let records = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(pct),
        );
        // Dynamic R* via the facade (random insert order, time scaled).
        let mut dynamic =
            SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::RStar));
        let mut dyn_io = 0u64;
        for q in &queries {
            dynamic.reset_for_query();
            let _ = dynamic.query(&q.area, &q.range);
            dyn_io += dynamic.io_stats().reads;
        }

        // Packed variants over the identical 3D boxes.
        let boxes: Vec<(u64, Rect3)> = records
            .iter()
            .map(|r| (r.id, r.to_rect3(time_scale)))
            .collect();
        let mut packed_io = Vec::new();
        for algo in [PackingAlgorithm::Str, PackingAlgorithm::Hilbert] {
            let mut tree = RStarTree::bulk_load(&boxes, RStarParams::default(), algo);
            let total_avg = sti_bench::avg_rstar_query_io(&mut tree, &queries, time_scale);
            packed_io.push(total_avg);
        }

        rows.push(vec![
            label.to_string(),
            records.len().to_string(),
            format!("{:.2}", dyn_io as f64 / queries.len() as f64),
            format!("{:.2}", packed_io[0]),
            format!("{:.2}", packed_io[1]),
        ]);
    }
    print_table(
        &format!(
            "Ablation — packing the R*-Tree, small range query I/O ({} random dataset)",
            Scale::label(n)
        ),
        &[
            "Records",
            "Count",
            "Dynamic R*",
            "STR packed",
            "Hilbert packed",
        ],
        &rows,
    );
}
