//! Ablation: packed vs dynamically built R\*-Trees on moving-object data.
//!
//! §V of the paper: "We decided not to use any packing algorithms for the
//! R\*-Tree, since from our previous experience, packing does not help
//! substantially with datasets of moving objects. Packing algorithms tend
//! to cluster together objects that might be consecutive in order even
//! though they may correspond to large and small intervals."
//!
//! This binary tests that claim: STR and Hilbert bulk loading versus
//! dynamic R\* insertion, over unsplit and split records.

use sti_bench::{
    query_io_profile, random_dataset, rstar_query_io_profile, series, split_records, BenchReport,
    Scale,
};
use sti_core::{
    DistributionAlgorithm, IndexBackend, IndexConfig, SingleSplitAlgorithm, SpatioTemporalIndex,
    SplitBudget,
};
use sti_datagen::{QuerySetSpec, TIME_EXTENT};
use sti_geom::Rect3;
use sti_rstar::{PackingAlgorithm, RStarParams, RStarTree};

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_packing", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();
    let time_scale = f64::from(TIME_EXTENT);

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for (label, pct) in [("unsplit", 0.0), ("150% splits", 150.0)] {
        let records = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(pct),
        );
        // Dynamic R* via the facade (random insert order, time scaled).
        let mut dynamic =
            SpatioTemporalIndex::build(&records, &IndexConfig::paper(IndexBackend::RStar))
                .expect("in-memory build cannot fail");
        let dyn_p = query_io_profile(&mut dynamic, &queries);

        // Packed variants over the identical 3D boxes.
        let boxes: Vec<(u64, Rect3)> = records
            .iter()
            .map(|r| (r.id, r.to_rect3(time_scale)))
            .collect();
        let mut packed = Vec::new();
        for algo in [PackingAlgorithm::Str, PackingAlgorithm::Hilbert] {
            let mut tree = RStarTree::bulk_load(&boxes, RStarParams::default(), algo)
                .expect("in-memory build cannot fail");
            packed.push(rstar_query_io_profile(&mut tree, &queries, time_scale));
        }
        let hilbert_p = packed.pop().expect("two packed runs");
        let str_p = packed.pop().expect("two packed runs");

        rows.push(vec![
            label.to_string(),
            records.len().to_string(),
            format!("{:.2}", dyn_p.avg),
            format!("{:.2}", str_p.avg),
            format!("{:.2}", hilbert_p.avg),
        ]);
        profiles.push(series(label, "dynamic", dyn_p));
        profiles.push(series(label, "str_packed", str_p));
        profiles.push(series(label, "hilbert_packed", hilbert_p));
    }
    report.table_with_profiles(
        &format!(
            "Ablation — packing the R*-Tree, small range query I/O ({} random dataset)",
            Scale::label(n)
        ),
        &[
            "Records",
            "Count",
            "Dynamic R*",
            "STR packed",
            "Hilbert packed",
        ],
        &rows,
        profiles,
    );
    report.finish();
}
