//! Concurrent query throughput over one shared index.
//!
//! The paper's figures reset the buffer before every query to reproduce
//! §V's cold-cache methodology; this bench does the opposite. It keeps
//! one index (and its sharded buffer pool) shared and warm, fans the
//! whole query set across worker threads with
//! [`SpatioTemporalIndex::query_batch_with_stats`], and reports queries
//! per second as the thread count grows.
//!
//! Every parallel pass is self-checked against the sequential baseline:
//! result sets must be byte-identical (determinism) and the summed
//! per-query [`sti_obs::QueryStats`] must equal the global I/O counter
//! delta (conservation). A run that breaks either aborts loudly — a
//! throughput number from a wrong answer is worse than no number.
//!
//! `--threads=N` sets the widest fan-out measured (a 1..=N power-of-two
//! ladder is swept); `--json` writes `BENCH_throughput.json` for the
//! CI perf gate. Only the sequential profile is exact-gated — parallel
//! hit/miss attribution depends on scheduling, so the gate checks
//! parallel rows by wall-time tolerance alone.

use sti_bench::{
    build_index, bulk_tier_index, random_dataset, series, split_records, tier_records, timed,
    BenchReport, IoProfile, Scale, Tier,
};
use sti_core::{
    DistributionAlgorithm, IndexBackend, Parallelism, QueryRequest, SingleSplitAlgorithm,
    SpatioTemporalIndex, SplitBudget,
};
use sti_datagen::QuerySetSpec;
use sti_obs::{JsonValue, QueryStats};
use sti_storage::BufferPolicy;

/// Power-of-two thread ladder from 1 up to (and always including) `max`.
fn ladder(max: usize) -> Vec<usize> {
    let mut steps = vec![1usize];
    let mut w = 2;
    while w < max {
        steps.push(w);
        w *= 2;
    }
    if max > 1 {
        steps.push(max);
    }
    steps
}

/// Sorted per-query id sets, for determinism comparison.
fn id_sets(outcomes: &[sti_core::QueryOutcome]) -> Vec<Vec<u64>> {
    outcomes
        .iter()
        .map(|o| o.as_ref().expect("in-memory query cannot fail").0.clone())
        .collect()
}

fn batch_stats(outcomes: &[sti_core::QueryOutcome]) -> Vec<QueryStats> {
    outcomes
        .iter()
        .map(|o| o.as_ref().expect("in-memory query cannot fail").1)
        .collect()
}

/// Run one backend's sweep; returns (table rows, sequential profile).
///
/// Takes the index by shared reference: a warm-throughput sweep never
/// needs `&mut`. Between ladder steps it opens a fresh accounting
/// window with [`SpatioTemporalIndex::reset_counters`] — the interior-
/// mutable half of the old `reset_for_query` — so the conservation
/// check reads absolute counters instead of deltas, without claiming
/// exclusive access to an index that worker threads are about to share.
fn sweep(
    index: &SpatioTemporalIndex,
    label: &str,
    requests: &[QueryRequest],
    threads: &[usize],
) -> (Vec<Vec<String>>, IoProfile) {
    let (baseline, base_secs) =
        timed(|| index.query_batch_with_stats(requests, Parallelism::Sequential));
    let expected = id_sets(&baseline);
    let seq_profile = IoProfile::from_stats(&batch_stats(&baseline), base_secs);

    let mut rows = Vec::new();
    for &workers in threads {
        index.reset_counters();
        let (outcomes, secs) =
            timed(|| index.query_batch_with_stats(requests, Parallelism::fixed(workers)));
        let after = index.io_stats();

        // Self-check 1: thread count must never change an answer.
        assert_eq!(
            id_sets(&outcomes),
            expected,
            "{label}: parallel results diverged from sequential at {workers} threads"
        );
        // Self-check 2: per-query attribution must sum to the global
        // counter movement even under concurrency.
        let total: QueryStats = batch_stats(&outcomes).iter().copied().sum();
        assert_eq!(
            total.disk_reads, after.reads,
            "{label}: disk-read conservation broke at {workers} threads"
        );
        assert_eq!(
            total.buffer_hits, after.buffer_hits,
            "{label}: buffer-hit conservation broke at {workers} threads"
        );

        let qps = requests.len() as f64 / secs.max(1e-9);
        rows.push(vec![
            label.to_string(),
            workers.to_string(),
            format!("{secs:.4}"),
            format!("{qps:.0}"),
            format!("{:.2}x", base_secs / secs.max(1e-9)),
        ]);
    }
    (rows, seq_profile)
}

/// The scale tier: the thread ladder over one bulk-loaded `FileBackend`
/// tree in its scale configuration (2Q eviction + readahead), instead
/// of the in-memory incremental builds. The R\*-Tree baseline is
/// skipped — incrementally inserting a million boxes is the build cost
/// this tier exists to avoid.
fn scale_tier(scale: Scale) {
    let mut report = BenchReport::new("throughput", &scale);
    let n = scale.tier.objects();
    let requests: Vec<QueryRequest> = sti_bench::tier_queries(scale.queries)
        .iter()
        .map(|q| QueryRequest {
            area: q.area,
            range: q.range,
        })
        .collect();

    let (mut index, stats, dir) = bulk_tier_index(
        tier_records(scale.tier, scale.data.as_deref()),
        "throughput",
    );
    index.set_buffer_policy(BufferPolicy::TwoQ);
    index.set_readahead(true);
    let threads = ladder(scale.threads.workers());
    index.set_buffer_shards(*threads.iter().max().unwrap_or(&1));

    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (rows, seq_profile) = sweep(&index, "ppr-bulk", &requests, &threads);
    report.table_with_profiles(
        &format!(
            "Query throughput ({} tier) — {n} bulk-loaded pieces on FileBackend, \
             {} queries, shared warm 2Q buffer (host has {host} hardware threads)",
            scale.tier.name(),
            requests.len(),
        ),
        &["Backend", "Threads", "Wall (s)", "QPS", "Speedup"],
        &rows,
        vec![series("seq", "ppr-bulk", seq_profile)],
    );
    report.note("host_threads", JsonValue::UInt(host as u64));
    report.note(
        "bulk_stats",
        JsonValue::object([
            ("pieces", JsonValue::UInt(stats.pieces)),
            ("pages_written", JsonValue::UInt(stats.pages_written)),
            ("fill_factor", JsonValue::Num(stats.fill_factor)),
        ]),
    );
    println!(
        "\nself-checks passed: parallel results byte-identical to sequential, \
         per-query stats conserved"
    );
    report.finish();
    drop(index);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    if scale.tier != Tier::Paper {
        return scale_tier(scale);
    }
    let mut report = BenchReport::new("throughput", &scale);
    let n = scale.sizes[0];
    let objects = random_dataset(n);
    let records = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(10.0),
    );
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let requests: Vec<QueryRequest> = spec
        .generate()
        .iter()
        .map(|q| QueryRequest {
            area: q.area,
            range: q.range,
        })
        .collect();

    let threads = ladder(scale.threads.workers());
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
        let mut index = build_index(&records, backend);
        // One shard per worker at the widest fan-out, fixed for the
        // whole sweep so the eviction behavior (and the gated
        // sequential profile) does not depend on which ladder step is
        // running. This is the only genuinely exclusive step; the sweep
        // itself borrows the index shared.
        index.set_buffer_shards(*threads.iter().max().unwrap_or(&1));
        let label = match backend {
            IndexBackend::PprTree => "ppr",
            IndexBackend::RStar => "rstar",
        };
        let (backend_rows, seq_profile) = sweep(&index, label, &requests, &threads);
        rows.extend(backend_rows);
        profiles.push(series("seq", label, seq_profile));
    }

    report.table_with_profiles(
        &format!(
            "Query throughput — {} random dataset, {} queries, shared warm buffer \
             (host has {host} hardware threads)",
            Scale::label(n),
            requests.len(),
        ),
        &["Backend", "Threads", "Wall (s)", "QPS", "Speedup"],
        &rows,
        profiles,
    );
    report.note("host_threads", sti_obs::JsonValue::UInt(host as u64));
    println!(
        "\nself-checks passed: parallel results byte-identical to sequential, \
         per-query stats conserved"
    );
    report.finish();
}
