//! Figure 18: mixed snapshot queries over the random datasets — the
//! PPR-Tree at 150% splits vs the R\*-Tree at 1% splits vs the R\*-Tree
//! over the piecewise representation.
//!
//! Expected shape: PPR-150% best (20–50% better than the best
//! alternative); piecewise clearly *worse* than the barely-split R\*.

use sti_bench::{
    build_index, query_io_profile, random_dataset, series, split_records, BenchReport, Scale,
};
use sti_core::{
    piecewise_records, DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget,
};
use sti_datagen::QuerySetSpec;

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("fig18", &scale);
    let mut spec = QuerySetSpec::mixed_snapshot();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);

        let ppr_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(150.0),
        );
        let mut ppr = build_index(&ppr_recs, IndexBackend::PprTree);

        let rstar_recs = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(1.0),
        );
        let mut rstar = build_index(&rstar_recs, IndexBackend::RStar);

        let piece_recs = piecewise_records(&objects);
        let mut piecewise = build_index(&piece_recs, IndexBackend::RStar);

        let label = Scale::label(n);
        let ppr_p = query_io_profile(&mut ppr, &queries);
        let rstar_p = query_io_profile(&mut rstar, &queries);
        let piece_p = query_io_profile(&mut piecewise, &queries);
        rows.push(vec![
            label.clone(),
            format!("{:.2}", ppr_p.avg),
            format!("{:.2}", rstar_p.avg),
            format!("{:.2}", piece_p.avg),
        ]);
        profiles.push(series(label.clone(), "ppr_150", ppr_p));
        profiles.push(series(label.clone(), "rstar_1", rstar_p));
        profiles.push(series(label, "rstar_piecewise", piece_p));
    }
    report.table_with_profiles(
        "Figure 18 — mixed snapshot queries, avg disk accesses (random datasets)",
        &[
            "Dataset",
            "PPR-Tree 150%",
            "R*-Tree 1%",
            "R*-Tree piecewise",
        ],
        &rows,
        profiles,
    );
    report.finish();
}
