//! Figure 15: small range queries on the "50k" random dataset as the
//! split budget grows, PPR-Tree vs 3D R\*-Tree.
//!
//! Expected shape: PPR-Tree I/O falls substantially with more splits;
//! the R\*-Tree *degrades* (more records → more nodes → more overlap).

use sti_bench::{
    build_index, bulk_tier_index, query_io_profile, random_dataset, series, split_records,
    tier_records, warm_query_io_profile, BenchReport, Scale, Tier,
};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;
use sti_obs::JsonValue;
use sti_storage::BufferPolicy;

const BUDGETS: [f64; 8] = [0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 150.0];

/// The scale tier: one bulk-loaded `FileBackend` tree, queried with a
/// warm shared buffer under both eviction policies. The contrast the
/// gate watches is `2q` (scan-resistant, with readahead) vs `lru`
/// (paper policy, no readahead) on identical queries.
fn scale_tier(scale: Scale) {
    let mut report = BenchReport::new("fig15", &scale);
    let n = scale.tier.objects();
    let queries = sti_bench::tier_queries(scale.queries);

    let (mut index, stats, dir) =
        bulk_tier_index(tier_records(scale.tier, scale.data.as_deref()), "fig15");
    report.note(
        "bulk_stats",
        JsonValue::object([
            ("pieces", JsonValue::UInt(stats.pieces)),
            ("pages_written", JsonValue::UInt(stats.pages_written)),
            ("leaf_pages", JsonValue::UInt(stats.leaf_pages)),
            ("levels", JsonValue::UInt(u64::from(stats.levels))),
            ("fill_factor", JsonValue::Num(stats.fill_factor)),
            ("spilled_runs", JsonValue::UInt(stats.spilled_runs)),
        ]),
    );

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for (label, policy, readahead) in [
        ("lru", BufferPolicy::Lru, false),
        ("2q", BufferPolicy::TwoQ, true),
    ] {
        index.set_buffer_policy(policy);
        index.set_readahead(readahead);
        index.clear_buffer();
        index.reset_counters();
        let profile = warm_query_io_profile(&index, &queries);
        let ra = index.readahead_stats();
        let avoided = index.scan_evictions_avoided();
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", profile.avg),
            profile.p50.to_string(),
            profile.p95.to_string(),
            avoided.to_string(),
            ra.hits.to_string(),
            ra.wasted.to_string(),
        ]);
        report.note(
            &format!("buffer_{label}"),
            JsonValue::object([
                ("scan_evictions_avoided", JsonValue::UInt(avoided)),
                ("readahead_hits", JsonValue::UInt(ra.hits)),
                ("readahead_wasted", JsonValue::UInt(ra.wasted)),
            ]),
        );
        profiles.push(series(label, label, profile));
    }
    report.table_with_profiles(
        &format!(
            "Figure 15 ({} tier) — {n} bulk-loaded pieces on FileBackend, warm {}-page buffer",
            scale.tier.name(),
            sti_bench::TIER_BUFFER_PAGES,
        ),
        &[
            "Policy",
            "Avg I/O",
            "p50",
            "p95",
            "ScanEvictAvoided",
            "RA hits",
            "RA wasted",
        ],
        &rows,
        profiles,
    );
    report.finish();
    drop(index);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    if scale.tier != Tier::Paper {
        return scale_tier(scale);
    }
    let mut report = BenchReport::new("fig15", &scale);
    // The paper uses the 50k dataset: third entry of the ladder.
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for pct in BUDGETS {
        let records = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(pct),
        );
        let mut ppr = build_index(&records, IndexBackend::PprTree);
        let mut rstar = build_index(&records, IndexBackend::RStar);
        let ppr_profile = query_io_profile(&mut ppr, &queries);
        let rstar_profile = query_io_profile(&mut rstar, &queries);
        let label = format!("{pct}%");
        rows.push(vec![
            label.clone(),
            records.len().to_string(),
            format!("{:.2}", ppr_profile.avg),
            format!("{:.2}", rstar_profile.avg),
        ]);
        profiles.push(series(label.clone(), "ppr", ppr_profile));
        profiles.push(series(label, "rstar", rstar_profile));
    }
    report.table_with_profiles(
        &format!(
            "Figure 15 — small range queries vs split budget ({} random dataset, LAGreedy)",
            Scale::label(n)
        ),
        &["Splits", "Records", "PPR-Tree I/O", "R*-Tree I/O"],
        &rows,
        profiles,
    );
    report.finish();
}
