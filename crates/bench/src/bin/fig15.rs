//! Figure 15: small range queries on the "50k" random dataset as the
//! split budget grows, PPR-Tree vs 3D R\*-Tree.
//!
//! Expected shape: PPR-Tree I/O falls substantially with more splits;
//! the R\*-Tree *degrades* (more records → more nodes → more overlap).

use sti_bench::{avg_query_io, build_index, print_table, random_dataset, split_records, Scale};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;

const BUDGETS: [f64; 8] = [0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 150.0];

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    // The paper uses the 50k dataset: third entry of the ladder.
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    for pct in BUDGETS {
        let records = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(pct),
        );
        let mut ppr = build_index(&records, IndexBackend::PprTree);
        let mut rstar = build_index(&records, IndexBackend::RStar);
        rows.push(vec![
            format!("{pct}%"),
            records.len().to_string(),
            format!("{:.2}", avg_query_io(&mut ppr, &queries)),
            format!("{:.2}", avg_query_io(&mut rstar, &queries)),
        ]);
    }
    print_table(
        &format!(
            "Figure 15 — small range queries vs split budget ({} random dataset, LAGreedy)",
            Scale::label(n)
        ),
        &["Splits", "Records", "PPR-Tree I/O", "R*-Tree I/O"],
        &rows,
    );
}
