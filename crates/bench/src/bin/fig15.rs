//! Figure 15: small range queries on the "50k" random dataset as the
//! split budget grows, PPR-Tree vs 3D R\*-Tree.
//!
//! Expected shape: PPR-Tree I/O falls substantially with more splits;
//! the R\*-Tree *degrades* (more records → more nodes → more overlap).

use sti_bench::{
    build_index, query_io_profile, random_dataset, series, split_records, BenchReport, Scale,
};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;

const BUDGETS: [f64; 8] = [0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 150.0];

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("fig15", &scale);
    // The paper uses the 50k dataset: third entry of the ladder.
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for pct in BUDGETS {
        let records = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(pct),
        );
        let mut ppr = build_index(&records, IndexBackend::PprTree);
        let mut rstar = build_index(&records, IndexBackend::RStar);
        let ppr_profile = query_io_profile(&mut ppr, &queries);
        let rstar_profile = query_io_profile(&mut rstar, &queries);
        let label = format!("{pct}%");
        rows.push(vec![
            label.clone(),
            records.len().to_string(),
            format!("{:.2}", ppr_profile.avg),
            format!("{:.2}", rstar_profile.avg),
        ]);
        profiles.push(series(label.clone(), "ppr", ppr_profile));
        profiles.push(series(label, "rstar", rstar_profile));
    }
    report.table_with_profiles(
        &format!(
            "Figure 15 — small range queries vs split budget ({} random dataset, LAGreedy)",
            Scale::label(n)
        ),
        &["Splits", "Records", "PPR-Tree I/O", "R*-Tree I/O"],
        &rows,
        profiles,
    );
    report.finish();
}
