//! Figure 11: CPU time for the single-object split algorithms (DPSplit
//! vs MergeSplit) over the random datasets, splitting every object with
//! as many splits as necessary (full volume curves).
//!
//! The paper plots this on a log scale: DPSplit needed up to a day,
//! MergeSplit minutes. The orders-of-magnitude gap is the result.
//!
//! Per-object curves are independent, so the loop fans out over
//! `--threads=auto|seq|N` (identical curves for every setting).

use std::time::Duration;
use sti_bench::{fmt_secs, print_table, random_dataset, timed, Scale};
use sti_core::single::{DpSplit, MergeSplit, SingleObjectSplitter};
use sti_core::{map_chunked, BuildStats};

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut stats_lines = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);
        let (_, dp_secs) = timed(|| {
            map_chunked(&objects, scale.threads, |_, o| {
                DpSplit.volume_curve(o, o.len().saturating_sub(1))
            })
        });
        let (_, merge_secs) = timed(|| {
            map_chunked(&objects, scale.threads, |_, o| {
                MergeSplit.volume_curve(o, o.len().saturating_sub(1))
            })
        });
        rows.push(vec![
            Scale::label(n),
            fmt_secs(dp_secs),
            fmt_secs(merge_secs),
            format!("{:.0}x", dp_secs / merge_secs.max(1e-9)),
        ]);
        stats_lines.push(format!(
            "n={}: {}",
            Scale::label(n),
            BuildStats {
                workers: scale.threads.workers(),
                curve_time: Duration::from_secs_f64(dp_secs + merge_secs),
                ..BuildStats::default()
            }
        ));
    }
    print_table(
        "Figure 11 — CPU time, object split algorithms (random datasets)",
        &["Dataset", "DPSplit", "MergeSplit", "Slowdown"],
        &rows,
    );
    println!("\nbuild stats (curve phase only, DPSplit + MergeSplit):");
    for line in &stats_lines {
        println!("  {line}");
    }
}
