//! Ablation: sensitivity to the LRU buffer pool size.
//!
//! The paper fixes a 10-page LRU buffer (reset before every query). This
//! sweep shows how much that choice matters for each structure and query
//! type: single root-to-leaf descents barely revisit pages, so the
//! buffer mostly absorbs revisits of upper levels in interval queries
//! and DFS backtracking.

use sti_bench::{profile_queries, random_dataset, series, split_records, BenchReport, Scale};
use sti_core::{DistributionAlgorithm, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::{QuerySetSpec, TIME_EXTENT};
use sti_geom::Rect3;
use sti_pprtree::{PprParams, PprTree};
use sti_rstar::{RStarParams, RStarTree};

const BUFFERS: [usize; 6] = [0, 2, 5, 10, 20, 50];

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_buffer", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let records = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
    );

    // Build once per structure; the buffer capacity is swept per run.
    let mut ppr = PprTree::new(PprParams::default());
    for (t, ev, i) in sti_core::record_events(&records) {
        let r = &records[i];
        match ev {
            sti_core::RecordEvent::Insert => ppr.insert(r.id, r.stbox.rect, t).expect("mem insert"),
            sti_core::RecordEvent::Delete => {
                ppr.delete(r.id, r.stbox.rect, t).expect("matched insert")
            }
        }
    }
    let mut rstar = RStarTree::new(RStarParams::default());
    let scale3 = f64::from(TIME_EXTENT);
    for r in &records {
        rstar.insert(r.id, r.to_rect3(scale3)).expect("mem insert");
    }

    let mut spec = QuerySetSpec::medium_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for pages in BUFFERS {
        ppr.set_buffer_capacity(pages);
        rstar.set_buffer_capacity(pages);
        let ppr_p = profile_queries(&queries, |q| {
            ppr.reset_for_query();
            let mut out = Vec::new();
            ppr.query_interval(&q.area, &q.range, &mut out)
                .expect("mem query")
        });
        let rstar_p = profile_queries(&queries, |q| {
            rstar.reset_for_query();
            let q3 = Rect3::from_query(&q.area, &q.range, scale3);
            let mut out = Vec::new();
            rstar.query(&q3, &mut out).expect("mem query")
        });
        let label = pages.to_string();
        rows.push(vec![
            label.clone(),
            format!("{:.2}", ppr_p.avg),
            format!("{:.2}", rstar_p.avg),
        ]);
        profiles.push(series(label.clone(), "ppr", ppr_p));
        profiles.push(series(label, "rstar", rstar_p));
    }
    report.table_with_profiles(
        &format!(
            "Ablation — LRU buffer size, medium range queries ({} random dataset, 150% splits)",
            Scale::label(n)
        ),
        &["Buffer pages", "PPR-Tree I/O", "R*-Tree I/O"],
        &rows,
        profiles,
    );
    report.finish();
}
