//! Ablation: the distribution algorithms on a workload where Claim 1
//! actually fails.
//!
//! Fig. 14's "Greedy always inferior" verdict is invisible on the random
//! polynomial datasets (their gain curves are concave almost
//! everywhere). Orbiting bodies naturally violate the monotonicity
//! property — half an orbit gains little, quarters gain a lot — so this
//! is the workload where LAGreedy's look-ahead matters. Reports total
//! volume and PPR-Tree query I/O per distribution algorithm, plus how
//! many objects violate Claim 1.

use sti_bench::{build_index, query_io_profile, series, BenchReport, Scale};
use sti_core::single::{MergeSplit, SingleObjectSplitter};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget, SplitPlan};
use sti_datagen::{OrbitDatasetSpec, QuerySetSpec};
use sti_obs::JsonValue;

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_orbits", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    // Long-period orbits: every body lives ~one revolution.
    let spec = OrbitDatasetSpec {
        lifetime: (60, 100),
        period: (60, 120),
        ..OrbitDatasetSpec::standard(n)
    };
    let objects = spec.generate();

    let violators = objects
        .iter()
        .filter(|o| {
            !MergeSplit
                .volume_curve(o, (o.len() - 1).min(16))
                .has_monotone_gains()
        })
        .count();
    println!(
        "{} of {} orbits violate Claim 1 (non-monotone gain curves)",
        violators,
        objects.len()
    );
    report.note(
        "claim1",
        JsonValue::object([
            ("violators", JsonValue::UInt(violators as u64)),
            ("orbits", JsonValue::UInt(objects.len() as u64)),
        ]),
    );

    let mut spec_q = QuerySetSpec::mixed_snapshot();
    spec_q.cardinality = scale.queries;
    let queries = spec_q.generate();

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    // A *tight* budget (25%) is where distribution quality matters: at
    // 150% every algorithm can afford the good splits.
    for pct in [25.0, 50.0, 150.0] {
        let label = format!("{pct}%");
        let mut cells = vec![label.clone()];
        for dist in [
            DistributionAlgorithm::Optimal,
            DistributionAlgorithm::Greedy,
            DistributionAlgorithm::LaGreedy,
        ] {
            let plan = SplitPlan::build(
                &objects,
                SingleSplitAlgorithm::MergeSplit,
                dist,
                SplitBudget::Percent(pct),
                None,
            );
            let records = plan.records(&objects);
            let mut idx = build_index(&records, IndexBackend::PprTree);
            let profile = query_io_profile(&mut idx, &queries);
            cells.push(format!(
                "{:.2} (vol {:.1})",
                profile.avg,
                plan.total_volume()
            ));
            profiles.push(series(label.clone(), format!("{dist:?}"), profile));
        }
        rows.push(cells);
    }
    report.table_with_profiles(
        &format!(
            "Ablation — distribution algorithms on {} orbiting bodies (mixed snapshot queries, PPR-Tree)",
            Scale::label(n)
        ),
        &["Budget", "Optimal", "Greedy", "LAGreedy"],
        &rows,
        profiles,
    );
    report.finish();
}
