//! Ablation: overlapping (HR-Tree) vs multi-version (PPR-Tree) partial
//! persistence.
//!
//! §I–II of the paper chooses the multi-version approach because
//! "overlapping creates a logarithmic overhead on the index storage
//! requirements \[24\]" while "the multi-version approach … uses storage
//! linear to the number of changes". This binary measures both sides of
//! that claim over the same record stream: disk pages, snapshot query
//! I/O, and small-range query I/O.

use sti_bench::{print_table, random_dataset, split_records, Scale};
use sti_core::{DistributionAlgorithm, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;
use sti_hrtree::{HrParams, HrTree};
use sti_pprtree::{PprParams, PprTree};

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let records = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
    );
    let ev = sti_core::record_events(&records);

    let mut ppr = PprTree::new(PprParams::default());
    let mut hr = HrTree::new(HrParams::default());
    for &(t, ev, i) in &ev {
        let r = &records[i];
        match ev {
            sti_core::RecordEvent::Insert => {
                ppr.insert(r.id, r.stbox.rect, t);
                hr.insert(r.id, r.stbox.rect, t);
            }
            sti_core::RecordEvent::Delete => {
                ppr.delete(r.id, r.stbox.rect, t).expect("matched insert");
                hr.delete(r.id, r.stbox.rect, t).expect("matched insert");
            }
        }
    }

    let mut snapshot = QuerySetSpec::mixed_snapshot();
    snapshot.cardinality = scale.queries;
    let mut range = QuerySetSpec::small_range();
    range.cardinality = scale.queries;

    let mut rows = Vec::new();
    for (qname, queries) in [
        ("mixed snapshot", snapshot.generate()),
        ("small range", range.generate()),
    ] {
        let mut ppr_io = 0u64;
        let mut hr_io = 0u64;
        for q in &queries {
            ppr.reset_for_query();
            let mut out = Vec::new();
            if q.range.len() == 1 {
                ppr.query_snapshot(&q.area, q.range.start, &mut out);
            } else {
                ppr.query_interval(&q.area, &q.range, &mut out);
            }
            ppr_io += ppr.io_stats().reads;

            hr.reset_for_query();
            let mut out = Vec::new();
            if q.range.len() == 1 {
                hr.query_snapshot(&q.area, q.range.start, &mut out);
            } else {
                hr.query_interval(&q.area, &q.range, &mut out);
            }
            hr_io += hr.io_stats().reads;
        }
        rows.push(vec![
            qname.to_string(),
            format!("{:.2}", ppr_io as f64 / queries.len() as f64),
            format!("{:.2}", hr_io as f64 / queries.len() as f64),
        ]);
    }
    rows.push(vec![
        "disk pages".into(),
        ppr.num_pages().to_string(),
        hr.num_pages().to_string(),
    ]);
    print_table(
        &format!(
            "Ablation — multi-version (PPR) vs overlapping (HR), {} random dataset, 150% splits ({} updates)",
            Scale::label(n),
            ev.len()
        ),
        &["Metric", "PPR-Tree", "HR-Tree"],
        &rows,
    );
}
