//! Ablation: overlapping (HR-Tree) vs multi-version (PPR-Tree) partial
//! persistence.
//!
//! §I–II of the paper chooses the multi-version approach because
//! "overlapping creates a logarithmic overhead on the index storage
//! requirements \[24\]" while "the multi-version approach … uses storage
//! linear to the number of changes". This binary measures both sides of
//! that claim over the same record stream: disk pages, snapshot query
//! I/O, and small-range query I/O.

use sti_bench::{profile_queries, random_dataset, series, split_records, BenchReport, Scale};
use sti_core::{DistributionAlgorithm, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;
use sti_hrtree::{HrParams, HrTree};
use sti_obs::JsonValue;
use sti_pprtree::{PprParams, PprTree};

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_overlapping", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let records = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
    );
    let ev = sti_core::record_events(&records);

    let mut ppr = PprTree::new(PprParams::default());
    let mut hr = HrTree::new(HrParams::default());
    for &(t, ev, i) in &ev {
        let r = &records[i];
        match ev {
            sti_core::RecordEvent::Insert => {
                ppr.insert(r.id, r.stbox.rect, t).expect("mem insert");
                hr.insert(r.id, r.stbox.rect, t).expect("mem insert");
            }
            sti_core::RecordEvent::Delete => {
                ppr.delete(r.id, r.stbox.rect, t).expect("matched insert");
                hr.delete(r.id, r.stbox.rect, t).expect("matched insert");
            }
        }
    }

    let mut snapshot = QuerySetSpec::mixed_snapshot();
    snapshot.cardinality = scale.queries;
    let mut range = QuerySetSpec::small_range();
    range.cardinality = scale.queries;

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for (qname, queries) in [
        ("mixed snapshot", snapshot.generate()),
        ("small range", range.generate()),
    ] {
        let ppr_p = profile_queries(&queries, |q| {
            ppr.reset_for_query();
            let mut out = Vec::new();
            if q.range.len() == 1 {
                ppr.query_snapshot(&q.area, q.range.start, &mut out)
            } else {
                ppr.query_interval(&q.area, &q.range, &mut out)
            }
            .expect("mem query")
        });
        let hr_p = profile_queries(&queries, |q| {
            hr.reset_for_query();
            let mut out = Vec::new();
            if q.range.len() == 1 {
                hr.query_snapshot(&q.area, q.range.start, &mut out)
            } else {
                hr.query_interval(&q.area, &q.range, &mut out)
            }
            .expect("mem query")
        });
        rows.push(vec![
            qname.to_string(),
            format!("{:.2}", ppr_p.avg),
            format!("{:.2}", hr_p.avg),
        ]);
        profiles.push(series(qname, "ppr", ppr_p));
        profiles.push(series(qname, "hr", hr_p));
    }
    rows.push(vec![
        "disk pages".into(),
        ppr.num_pages().to_string(),
        hr.num_pages().to_string(),
    ]);
    report.note(
        "disk_pages",
        JsonValue::object([
            ("ppr", JsonValue::UInt(ppr.num_pages() as u64)),
            ("hr", JsonValue::UInt(hr.num_pages() as u64)),
        ]),
    );
    report.table_with_profiles(
        &format!(
            "Ablation — multi-version (PPR) vs overlapping (HR), {} random dataset, 150% splits ({} updates)",
            Scale::label(n),
            ev.len()
        ),
        &["Metric", "PPR-Tree", "HR-Tree"],
        &rows,
        profiles,
    );
    report.finish();
}
