//! Ablation: the one-pass online splitter (§VII future work) against the
//! offline LAGreedy plan at a matched split budget.
//!
//! Reports total volume, record counts, and PPR-Tree query I/O for:
//! unsplit, online (several thresholds), and offline LAGreedy given the
//! same number of splits the online run spent.

use sti_bench::{build_index, query_io_profile, random_dataset, series, BenchReport, Scale};
use sti_core::online::{OnlineSplitConfig, OnlineSplitter};
use sti_core::{
    total_volume, unsplit_records, DistributionAlgorithm, IndexBackend, ObjectRecord,
    SingleSplitAlgorithm, SplitBudget, SplitPlan,
};
use sti_datagen::QuerySetSpec;
use sti_geom::Time;
use sti_trajectory::RasterizedObject;

/// Replay the dataset as a global time-ordered update stream.
fn run_online(objects: &[RasterizedObject], config: OnlineSplitConfig) -> Vec<ObjectRecord> {
    let mut events: Vec<(Time, u64, usize)> = Vec::new();
    for o in objects {
        for i in 0..o.len() {
            events.push((o.start() + i as Time, o.id(), i));
        }
    }
    events.sort_unstable();
    let mut splitter = OnlineSplitter::new(config);
    let mut records = Vec::new();
    for (t, id, i) in events {
        let o = &objects[id as usize];
        let observed = splitter
            .observe(id, o.rect(i), t)
            .expect("replayed stream is gap-free");
        if let Some(p) = observed {
            records.push(p);
        }
    }
    for o in objects {
        records.push(
            splitter
                .finish(o.id(), o.lifetime().end)
                .expect("replayed stream is gap-free"),
        );
    }
    records
}

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("ablation_online", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);
    let mut spec = QuerySetSpec::small_range();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    let mut measure = |label: String, records: &[ObjectRecord]| {
        let mut idx = build_index(records, IndexBackend::PprTree);
        let profile = query_io_profile(&mut idx, &queries);
        rows.push(vec![
            label.clone(),
            records.len().to_string(),
            format!("{:.3}", total_volume(records)),
            format!("{:.2}", profile.avg),
        ]);
        profiles.push(series(label, "ppr", profile));
    };

    measure("unsplit".into(), &unsplit_records(&objects));

    let mut matched_budget = None;
    for threshold in [32.0, 16.0, 8.0] {
        let records = run_online(
            &objects,
            OnlineSplitConfig {
                overhead_threshold: threshold,
                ..OnlineSplitConfig::default()
            },
        );
        let splits = records.len() - objects.len();
        if threshold == 16.0 {
            matched_budget = Some(splits);
        }
        measure(format!("online θ={threshold} ({splits} splits)"), &records);
    }

    let budget = matched_budget.expect("θ=16 ran");
    let offline = SplitPlan::build(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Count(budget),
        None,
    );
    measure(
        format!("offline LAGreedy ({budget} splits)"),
        &offline.records(&objects),
    );

    report.table_with_profiles(
        &format!(
            "Ablation — online vs offline splitting, small range queries ({} random dataset, PPR-Tree)",
            Scale::label(n)
        ),
        &["Configuration", "Records", "Total volume", "Avg I/O"],
        &rows,
        profiles,
    );
    report.finish();
}
