//! Figure 14: average disk accesses for mixed snapshot queries against
//! PPR-Trees built from the three split distributions (150% splits).
//!
//! Expected shape: LAGreedy ≈ Optimal, Greedy worse.

use sti_bench::{avg_query_io, build_index, print_table, random_dataset, Scale};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget, SplitPlan};
use sti_datagen::QuerySetSpec;

fn main() {
    let scale = Scale::from_args();
    let mut spec = QuerySetSpec::mixed_snapshot();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);
        let mut cells = vec![Scale::label(n)];
        for dist in [
            DistributionAlgorithm::Optimal,
            DistributionAlgorithm::Greedy,
            DistributionAlgorithm::LaGreedy,
        ] {
            let plan = SplitPlan::build(
                &objects,
                SingleSplitAlgorithm::MergeSplit,
                dist,
                SplitBudget::Percent(150.0),
                None,
            );
            let records = plan.records(&objects);
            let mut idx = build_index(&records, IndexBackend::PprTree);
            cells.push(format!(
                "{:.2} (vol {:.1})",
                avg_query_io(&mut idx, &queries),
                plan.total_volume()
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 14 — mixed snapshot queries, avg disk accesses (PPR-Tree, 150% splits)",
        &["Dataset", "Optimal", "Greedy", "LAGreedy"],
        &rows,
    );
}
