//! Figure 14: average disk accesses for mixed snapshot queries against
//! PPR-Trees built from the three split distributions (150% splits).
//!
//! Expected shape: LAGreedy ≈ Optimal, Greedy worse. Planning fans out
//! over `--threads=auto|seq|N`; records and I/O counts are identical for
//! every setting.

use std::time::Duration;
use sti_bench::{avg_query_io, build_index, print_table, random_dataset, timed, Scale};
use sti_core::{
    BuildStats, DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget, SplitPlan,
};
use sti_datagen::QuerySetSpec;

fn main() {
    let scale = Scale::from_args();
    let mut spec = QuerySetSpec::mixed_snapshot();
    spec.cardinality = scale.queries;
    let queries = spec.generate();

    let mut rows = Vec::new();
    let mut stats_lines = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);
        let mut cells = vec![Scale::label(n)];
        for dist in [
            DistributionAlgorithm::Optimal,
            DistributionAlgorithm::Greedy,
            DistributionAlgorithm::LaGreedy,
        ] {
            let plan = SplitPlan::build_with(
                &objects,
                SingleSplitAlgorithm::MergeSplit,
                dist,
                SplitBudget::Percent(150.0),
                None,
                scale.threads,
            );
            let ((records, mut idx), tree_secs) = timed(|| {
                let records = plan.records(&objects);
                let idx = build_index(&records, IndexBackend::PprTree);
                (records, idx)
            });
            stats_lines.push(format!(
                "n={} {dist}: {}",
                Scale::label(n),
                BuildStats {
                    workers: plan.stats().workers,
                    curve_time: plan.stats().curve_time,
                    distribute_time: plan.stats().distribute_time,
                    tree_build_time: Duration::from_secs_f64(tree_secs),
                    records_emitted: records.len(),
                }
            ));
            cells.push(format!(
                "{:.2} (vol {:.1})",
                avg_query_io(&mut idx, &queries),
                plan.total_volume()
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 14 — mixed snapshot queries, avg disk accesses (PPR-Tree, 150% splits)",
        &["Dataset", "Optimal", "Greedy", "LAGreedy"],
        &rows,
    );
    println!("\nbuild stats:");
    for line in &stats_lines {
        println!("  {line}");
    }
}
