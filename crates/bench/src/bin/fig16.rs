//! Figure 16: disk space of the two structures on the "50k" random
//! dataset as the split budget grows.
//!
//! Expected shape: the PPR-Tree needs roughly twice the space of the
//! R\*-Tree (version copies), both growing with the record count.

use sti_bench::{build_index, random_dataset, split_records, BenchReport, Scale};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_storage::PAGE_SIZE;

const BUDGETS: [f64; 8] = [0.0, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 150.0];

fn main() {
    let scale = Scale::from_args_with(&sti_bench::IO_SIZES);
    let mut report = BenchReport::new("fig16", &scale);
    let n = scale.sizes[scale.sizes.len().saturating_sub(2)];
    let objects = random_dataset(n);

    let mut rows = Vec::new();
    for pct in BUDGETS {
        let records = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(pct),
        );
        let ppr = build_index(&records, IndexBackend::PprTree);
        let rstar = build_index(&records, IndexBackend::RStar);
        let mb = |pages: usize| format!("{:.2} MiB", (pages * PAGE_SIZE) as f64 / (1 << 20) as f64);
        rows.push(vec![
            format!("{pct}%"),
            records.len().to_string(),
            format!("{} ({})", ppr.num_pages(), mb(ppr.num_pages())),
            format!("{} ({})", rstar.num_pages(), mb(rstar.num_pages())),
            format!("{:.2}x", ppr.num_pages() as f64 / rstar.num_pages() as f64),
        ]);
    }
    report.table(
        &format!(
            "Figure 16 — disk space vs split budget ({} random dataset)",
            Scale::label(n)
        ),
        &[
            "Splits",
            "Records",
            "PPR-Tree pages",
            "R*-Tree pages",
            "PPR/R*",
        ],
        &rows,
    );
    report.finish();
}
