//! Figure 13: CPU time of the split distribution algorithms (Optimal vs
//! Greedy vs LAGreedy) distributing 50% splits over the random datasets.
//!
//! Per-object volume curves (MergeSplit) are precomputed outside the
//! timed region — the paper measures distribution time ("the results are
//! stored" before distribution begins).

use sti_bench::{fmt_secs, print_table, random_dataset, timed, Scale};
use sti_core::single::{MergeSplit, SingleObjectSplitter};
use sti_core::{DistributionAlgorithm, VolumeCurve};

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);
        let curves: Vec<VolumeCurve> = objects
            .iter()
            .map(|o| MergeSplit.volume_curve(o, o.len() - 1))
            .collect();
        let k = n / 2; // 50% splits

        let mut cells = vec![Scale::label(n)];
        for dist in [
            DistributionAlgorithm::Optimal,
            DistributionAlgorithm::Greedy,
            DistributionAlgorithm::LaGreedy,
        ] {
            let (alloc, secs) = timed(|| dist.distribute(&curves, k));
            assert!(alloc.splits_used() <= k);
            cells.push(fmt_secs(secs));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 13 — CPU time, split distribution algorithms (50% splits, random datasets)",
        &["Dataset", "Optimal", "Greedy", "LAGreedy"],
        &rows,
    );
}
