//! Figure 13: CPU time of the split distribution algorithms (Optimal vs
//! Greedy vs LAGreedy) distributing 50% splits over the random datasets.
//!
//! Per-object volume curves (MergeSplit) are precomputed outside the
//! timed region — the paper measures distribution time ("the results are
//! stored" before distribution begins). The precompute fans out over
//! `--threads=auto|seq|N` (identical curves for every setting); its
//! wall-clock is reported in the build-stats lines.

use std::time::Duration;
use sti_bench::{fmt_secs, print_table, random_dataset, timed, Scale};
use sti_core::single::{MergeSplit, SingleObjectSplitter};
use sti_core::{map_chunked, BuildStats, DistributionAlgorithm};

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut stats_lines = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);
        let (curves, curve_secs) = timed(|| {
            map_chunked(&objects, scale.threads, |_, o| {
                MergeSplit.volume_curve(o, o.len() - 1)
            })
        });
        let k = n / 2; // 50% splits

        let mut cells = vec![Scale::label(n)];
        let mut distribute_secs = 0.0;
        for dist in [
            DistributionAlgorithm::Optimal,
            DistributionAlgorithm::Greedy,
            DistributionAlgorithm::LaGreedy,
        ] {
            let (alloc, secs) = timed(|| dist.distribute(&curves, k));
            assert!(alloc.splits_used() <= k);
            distribute_secs += secs;
            cells.push(fmt_secs(secs));
        }
        rows.push(cells);
        stats_lines.push(format!(
            "n={}: {}",
            Scale::label(n),
            BuildStats {
                workers: scale.threads.workers(),
                curve_time: Duration::from_secs_f64(curve_secs),
                distribute_time: Duration::from_secs_f64(distribute_secs),
                ..BuildStats::default()
            }
        ));
    }
    print_table(
        "Figure 13 — CPU time, split distribution algorithms (50% splits, random datasets)",
        &["Dataset", "Optimal", "Greedy", "LAGreedy"],
        &rows,
    );
    println!("\nbuild stats (curve precompute + all three distributions):");
    for line in &stats_lines {
        println!("  {line}");
    }
}
