//! Figure 12: total volume after optimally distributing 50% splits,
//! with per-object curves from DPSplit vs MergeSplit.
//!
//! The paper's point: MergeSplit's near-optimal single-object splits cost
//! almost nothing in final volume.
//!
//! Only volume *curves* are needed here (no cut reconstruction), so the
//! heavy per-object DP tables are dropped as soon as each curve is
//! extracted — this keeps the paper-scale runs within memory.

use sti_bench::{print_table, random_dataset, Scale};
use sti_core::single::{DpSplit, MergeSplit, SingleObjectSplitter};
use sti_core::{multi::distribute_optimal, VolumeCurve};

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for &n in &scale.sizes {
        let objects = random_dataset(n);
        let k = n / 2; // 50% splits
        let mut vols = Vec::new();
        for splitter in [&DpSplit as &dyn SingleObjectSplitter, &MergeSplit] {
            let curves: Vec<VolumeCurve> = objects
                .iter()
                .map(|o| splitter.volume_curve(o, o.len() - 1))
                .collect();
            vols.push(distribute_optimal(&curves, k).total_volume);
        }
        rows.push(vec![
            Scale::label(n),
            format!("{:.4}", vols[0]),
            format!("{:.4}", vols[1]),
            format!("{:+.2}%", (vols[1] / vols[0] - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Figure 12 — total volume, object split algorithms (50% splits, Optimal distribution)",
        &["Dataset", "DPSplit", "MergeSplit", "MergeSplit overhead"],
        &rows,
    );
}
