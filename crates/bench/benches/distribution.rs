//! Criterion micro-bench: split distribution (fig. 13 companion).
//!
//! Optimal (O(N·K·cap)) vs Greedy vs LAGreedy distributing a 50% budget
//! over precomputed MergeSplit curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sti_core::single::{MergeSplit, SingleObjectSplitter};
use sti_core::{DistributionAlgorithm, VolumeCurve};
use sti_datagen::RandomDatasetSpec;

fn curves(n: usize) -> Vec<VolumeCurve> {
    RandomDatasetSpec::paper(n)
        .generate()
        .iter()
        .map(|o| MergeSplit.volume_curve(o, o.len() - 1))
        .collect()
}

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribute_50pct");
    group.sample_size(10);
    for n in [250usize, 500, 1000] {
        let cs = curves(n);
        let k = n / 2;
        for dist in [
            DistributionAlgorithm::Optimal,
            DistributionAlgorithm::Greedy,
            DistributionAlgorithm::LaGreedy,
        ] {
            group.bench_with_input(BenchmarkId::new(dist.to_string(), n), &cs, |b, cs| {
                b.iter(|| dist.distribute(cs, k))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distribution);
criterion_main!(benches);
