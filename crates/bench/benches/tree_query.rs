//! Criterion micro-bench: query latency (wall time, complementing the
//! I/O counts the figure binaries report).
//!
//! Snapshot and small-range queries against the PPR-Tree (150% splits)
//! and the R\*-Tree (1% splits) over the same dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sti_bench::{build_index, random_dataset, split_records};
use sti_core::{DistributionAlgorithm, IndexBackend, SingleSplitAlgorithm, SplitBudget};
use sti_datagen::QuerySetSpec;

fn bench_queries(c: &mut Criterion) {
    let objects = random_dataset(1000);
    let ppr_recs = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(150.0),
    );
    let rstar_recs = split_records(
        &objects,
        SingleSplitAlgorithm::MergeSplit,
        DistributionAlgorithm::LaGreedy,
        SplitBudget::Percent(1.0),
    );
    let mut ppr = build_index(&ppr_recs, IndexBackend::PprTree);
    let mut rstar = build_index(&rstar_recs, IndexBackend::RStar);

    for (set_name, spec) in [
        ("snapshot_mixed", QuerySetSpec::mixed_snapshot()),
        ("range_small", QuerySetSpec::small_range()),
    ] {
        let queries = {
            let mut s = spec;
            s.cardinality = 100;
            s.generate()
        };
        let mut group = c.benchmark_group(set_name);
        group.bench_with_input(BenchmarkId::new("PPR-Tree", 1000), &queries, |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in qs {
                    ppr.reset_for_query();
                    hits += ppr.query(&q.area, &q.range).expect("mem query").len();
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("R*-Tree", 1000), &queries, |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in qs {
                    rstar.reset_for_query();
                    hits += rstar.query(&q.area, &q.range).expect("mem query").len();
                }
                hits
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
