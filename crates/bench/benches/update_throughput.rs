//! Criterion micro-bench: update throughput of the persistent
//! structures and the online splitter.
//!
//! The PPR-Tree amortizes version splits; the HR-Tree path-copies every
//! update; the online splitter is O(1) per observation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sti_core::online::{OnlineSplitConfig, OnlineSplitter};
use sti_geom::Rect2;
use sti_hrtree::{HrParams, HrTree};
use sti_pprtree::{PprParams, PprTree};

/// A deterministic churn workload: (id, rect, t, is_insert).
fn workload(n: usize) -> Vec<(u64, Rect2, u32, bool)> {
    let mut ops = Vec::with_capacity(2 * n);
    for i in 0..n as u64 {
        let x = (i as f64 * 0.61803).fract() * 0.9;
        let y = (i as f64 * 0.41421).fract() * 0.9;
        let r = Rect2::from_bounds(x, y, x + 0.02, y + 0.02);
        let t = (i as u32) / 4;
        ops.push((i, r, t, true));
        ops.push((i, r, t + 20, false));
    }
    ops.sort_by_key(|&(id, _, t, ins)| (t, !ins, id));
    ops
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistent_updates");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let ops = workload(n);
        group.bench_with_input(BenchmarkId::new("PPR-Tree", n), &ops, |b, ops| {
            b.iter(|| {
                let mut t = PprTree::new(PprParams::default());
                for &(id, r, at, ins) in ops {
                    if ins {
                        t.insert(id, r, at).unwrap();
                    } else {
                        t.delete(id, r, at).unwrap();
                    }
                }
                t.num_pages()
            })
        });
        group.bench_with_input(BenchmarkId::new("HR-Tree", n), &ops, |b, ops| {
            b.iter(|| {
                let mut t = HrTree::new(HrParams::default());
                for &(id, r, at, ins) in ops {
                    if ins {
                        t.insert(id, r, at).unwrap();
                    } else {
                        t.delete(id, r, at).unwrap();
                    }
                }
                t.num_pages()
            })
        });
    }
    group.finish();
}

fn bench_online_splitter(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_splitter");
    // One object observed for 100k instants: pure splitter overhead.
    group.bench_function("observe_100k", |b| {
        b.iter(|| {
            let mut s = OnlineSplitter::new(OnlineSplitConfig::default());
            let mut emitted = 0usize;
            for t in 0..100_000u32 {
                let x = (f64::from(t) * 0.0001).fract() * 0.9;
                let r = Rect2::from_bounds(x, 0.5, x + 0.01, 0.51);
                if s.observe(1, r, t).expect("contiguous stream").is_some() {
                    emitted += 1;
                }
            }
            emitted
        })
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_online_splitter);
criterion_main!(benches);
