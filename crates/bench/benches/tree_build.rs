//! Criterion micro-bench: index construction.
//!
//! PPR-Tree (time-ordered update stream) vs 3D R\*-Tree (random-order
//! inserts) over the same split record set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sti_bench::{random_dataset, split_records};
use sti_core::{
    DistributionAlgorithm, IndexBackend, IndexConfig, SingleSplitAlgorithm, SpatioTemporalIndex,
    SplitBudget,
};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [500usize, 1000] {
        let objects = random_dataset(n);
        let records = split_records(
            &objects,
            SingleSplitAlgorithm::MergeSplit,
            DistributionAlgorithm::LaGreedy,
            SplitBudget::Percent(50.0),
        );
        for backend in [IndexBackend::PprTree, IndexBackend::RStar] {
            group.bench_with_input(
                BenchmarkId::new(backend.to_string(), n),
                &records,
                |b, recs| b.iter(|| SpatioTemporalIndex::build(recs, &IndexConfig::paper(backend))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
