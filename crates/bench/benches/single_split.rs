//! Criterion micro-bench: single-object splitting (fig. 11 companion).
//!
//! Measures DPSplit (O(n²k)) against MergeSplit (O(n lg n)) computing
//! the full volume curve of one object as its lifetime grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sti_core::single::{DpSplit, MergeSplit, SingleObjectSplitter};
use sti_datagen::RandomDatasetSpec;
use sti_trajectory::RasterizedObject;

fn object_with_lifetime(n: u32) -> RasterizedObject {
    let spec = RandomDatasetSpec {
        lifetime: (n, n),
        seed: 1234,
        ..RandomDatasetSpec::paper(1)
    };
    spec.generate().pop().expect("one object")
}

fn bench_single_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_split_full_curve");
    for n in [25u32, 50, 100, 200] {
        let obj = object_with_lifetime(n);
        group.bench_with_input(BenchmarkId::new("DPSplit", n), &obj, |b, o| {
            b.iter(|| DpSplit.volume_curve(o, o.len() - 1))
        });
        group.bench_with_input(BenchmarkId::new("MergeSplit", n), &obj, |b, o| {
            b.iter(|| MergeSplit.volume_curve(o, o.len() - 1))
        });
    }
    group.finish();
}

fn bench_budgeted_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_split_k5_cuts");
    let obj = object_with_lifetime(100);
    group.bench_function("DPSplit", |b| b.iter(|| DpSplit.cuts(&obj, 5)));
    group.bench_function("MergeSplit", |b| b.iter(|| MergeSplit.cuts(&obj, 5)));
    group.finish();
}

criterion_group!(benches, bench_single_split, bench_budgeted_cuts);
criterion_main!(benches);
