//! Streaming bulk loader for the PPR-Tree.
//!
//! The incremental build replays one update at a time through
//! choose-subtree descent and version splits — faithful to the paper but
//! O(height) page I/O per update, which at millions of pieces means hours
//! of redundant reads. This module builds the same *kind* of structure
//! bottom-up and append-only, borrowing the Hilbert packing shape of
//! [`crate`]'s sibling `rstar::bulk` while respecting the partially
//! persistent invariants that plain R-Tree packers ignore:
//!
//! 1. **Order**: closed pieces are sorted by the Hilbert value of
//!    (MBR center, lifetime midpoint) — `hilbert3` over (x, y, t) — so
//!    that spatially and temporally close pieces land in the same leaf.
//!    The sort is external: pieces are spooled to sorted run files once a
//!    chunk limit is reached and k-way merged back, so the dataset is
//!    never resident in memory at once.
//! 2. **Grouping**: consecutive sorted pieces are grouped under a
//!    *concurrency cap* (`A_max = B/2`): the maximum number of group
//!    members alive at any instant stays below node capacity, which
//!    guarantees every packed node records fresh pieces (survivor
//!    re-posting cannot fill a node by itself). A piece that would
//!    breach the cap is *deferred* to seed the next group rather than
//!    cutting the current group short — cut-on-rejection makes groups a
//!    few instants wide, and such narrow groups never climb past the
//!    weak minimum `D` before their next death, cascading into
//!    near-empty pages.
//! 3. **Replay**: each group's births and deaths are replayed in time
//!    order through a chain of *windows* (physical nodes). A window
//!    closes exactly where the incremental tree would version-split:
//!    when a kill batch leaves fewer than `D` alive entries (the kills
//!    land at the close time, which the weak version condition exempts),
//!    or when recording one more birth would overflow the node. On
//!    close, still-alive members stay *frozen-alive* in the closed node
//!    — precisely what an incremental version split leaves behind — and
//!    are re-posted into the next window with `insertion = close`, so
//!    the window population persists across closes and recovers from
//!    transient dips below `D`; only a group's terminal decline carries
//!    its stragglers out to the next group.
//! 4. **Recursion**: each closed window emits a directory edge
//!    (`full_mbr`, `[start, close)`, page). Directory levels regroup
//!    edges by *space only* — Hilbert order of the edge centers, cut
//!    into regions that each span the whole timeline with a standing
//!    population of about `A_max` children, mirroring how incremental
//!    directory nodes partition space and persist — and pack level by
//!    level until the edges fit a root chain, whose window intervals
//!    become the [`RootSpan`] log.
//!
//! The result passes the same [`crate::check::validate`] as an
//! incrementally built tree, and the build is deterministic: the same
//! pieces in the same order produce byte-identical pages whether or not
//! the sort spilled to disk.

use crate::node::{PprEntry, PprNode, PprParams};
use crate::tree::{PprTree, RootSpan};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use sti_geom::{hilbert2, hilbert3, Rect2, Time, TimeInterval};
use sti_storage::{Page, PageId, PageStore, StorageError};

/// Upper bound on pieces per packing group. Groups are replayed in
/// memory; this caps the replay working set independently of the
/// concurrency cap. Larger groups span more of the timeline, so the
/// low-occupancy ramp at each group boundary amortizes over more full
/// capacity-closed pages.
const GROUP_MAX: usize = 512;

/// Upper bound on pieces deferred past the current group (they seed the
/// next one). When the backlog hits this, the group is flushed even if
/// it has room — the deferred pieces all landed on concurrency peaks,
/// so the group has saturated its cap.
const DEFER_MAX: usize = 128;

/// Default in-memory chunk size (records) before a sorted run is
/// spooled to disk. 64Ki × 56 B ≈ 3.5 MiB per chunk.
const DEFAULT_CHUNK: usize = 1 << 16;

/// Bytes per spooled sort record: key + rect + ptr + lifetime.
const RECORD_BYTES: usize = 8 + 32 + 8 + 4 + 4;

/// One closed input piece: a rectangle alive over `[insertion,
/// deletion)`. `deletion == TimeInterval::OPEN_END` marks a
/// still-alive piece.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BulkPiece {
    /// Spatial MBR of the piece.
    pub rect: Rect2,
    /// Object id (becomes the leaf entry's `ptr`).
    pub ptr: u64,
    /// Lifetime start (inclusive).
    pub insertion: Time,
    /// Lifetime end (exclusive), `TimeInterval::OPEN_END` while alive.
    pub deletion: Time,
}

impl BulkPiece {
    /// Half-open lifetime of the piece.
    pub fn lifetime(&self) -> TimeInterval {
        TimeInterval {
            start: self.insertion,
            end: self.deletion,
        }
    }

    fn contains_time(&self, t: Time) -> bool {
        self.insertion <= t && t < self.deletion
    }
}

/// The packing order: Hilbert value of (MBR center, lifetime midpoint
/// scaled by the evolution length). Still-alive pieces use their
/// insertion time as the midpoint.
fn hilbert_key(piece: &BulkPiece, max_time: Time) -> u64 {
    let c = piece.rect.center();
    let mid = if piece.deletion == TimeInterval::OPEN_END {
        piece.insertion
    } else {
        piece.insertion / 2 + piece.deletion / 2
    };
    hilbert3(c.x, c.y, f64::from(mid) / f64::from(max_time))
}

/// Why a bulk load failed.
#[derive(Debug)]
pub enum BulkError {
    /// Writing a packed page failed.
    Storage(StorageError),
    /// Reading or writing a sort spool file failed.
    Spool(std::io::Error),
    /// A piece had an empty lifetime or a non-finite rectangle.
    InvalidPiece {
        /// Object id of the offending piece.
        ptr: u64,
    },
    /// The root chain could not make progress: more pieces were alive at
    /// one instant than fit a root node. Unreachable through the capped
    /// group formation; kept as a typed error so replay stays total.
    RootOverflow {
        /// Alive entries that had to be carried.
        alive: usize,
    },
}

impl std::fmt::Display for BulkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulkError::Storage(e) => write!(f, "storage error: {e}"),
            BulkError::Spool(e) => write!(f, "sort spool error: {e}"),
            BulkError::InvalidPiece { ptr } => {
                write!(f, "piece {ptr} has an empty lifetime or non-finite rect")
            }
            BulkError::RootOverflow { alive } => {
                write!(f, "root chain stuck: {alive} concurrently alive entries")
            }
        }
    }
}

impl std::error::Error for BulkError {}

impl From<StorageError> for BulkError {
    fn from(e: StorageError) -> Self {
        BulkError::Storage(e)
    }
}

impl From<std::io::Error> for BulkError {
    fn from(e: std::io::Error) -> Self {
        BulkError::Spool(e)
    }
}

/// Counters from one bulk load, for `stidx build --bulk --scale-stats`
/// and the scale-tier benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BulkStats {
    /// Input pieces accepted by [`BulkLoader::push`].
    pub pieces: u64,
    /// Total pages written (all levels plus the root chain).
    pub pages_written: u64,
    /// Pages written at leaf level.
    pub leaf_pages: u64,
    /// Height of the tallest root (leaf = 0).
    pub levels: u32,
    /// Entries recorded across all written nodes (fresh + re-posted).
    pub entries_recorded: u64,
    /// `entries_recorded / (pages_written · B)` — page utilization.
    pub fill_factor: f64,
    /// Peak node-sized working set held in memory during the build
    /// (pending directory edges + the active group).
    pub peak_resident_pages: u64,
    /// Sorted runs spooled to disk (0 when the input fit one chunk).
    pub spilled_runs: u64,
}

/// One 56-byte sort record: Hilbert key plus the piece itself. The
/// total order used everywhere is `(key, ptr, insertion, deletion)` —
/// rect coordinates are excluded so the comparator is total without
/// trusting float ordering.
#[derive(Debug, Clone, Copy)]
struct SortRecord {
    key: u64,
    piece: BulkPiece,
}

type SortKey = (u64, u64, Time, Time);

impl SortRecord {
    fn order_key(&self) -> SortKey {
        (
            self.key,
            self.piece.ptr,
            self.piece.insertion,
            self.piece.deletion,
        )
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.piece.rect.lo.x.to_le_bytes());
        out.extend_from_slice(&self.piece.rect.lo.y.to_le_bytes());
        out.extend_from_slice(&self.piece.rect.hi.x.to_le_bytes());
        out.extend_from_slice(&self.piece.rect.hi.y.to_le_bytes());
        out.extend_from_slice(&self.piece.ptr.to_le_bytes());
        out.extend_from_slice(&self.piece.insertion.to_le_bytes());
        out.extend_from_slice(&self.piece.deletion.to_le_bytes());
    }

    fn decode(buf: &[u8; RECORD_BYTES]) -> Self {
        let f = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[i..i + 8]);
            b
        };
        let t = |i: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&buf[i..i + 4]);
            b
        };
        SortRecord {
            key: u64::from_le_bytes(f(0)),
            piece: BulkPiece {
                rect: Rect2::from_bounds(
                    f64::from_le_bytes(f(8)),
                    f64::from_le_bytes(f(16)),
                    f64::from_le_bytes(f(24)),
                    f64::from_le_bytes(f(32)),
                ),
                ptr: u64::from_le_bytes(f(40)),
                insertion: Time::from_le_bytes(t(48)),
                deletion: Time::from_le_bytes(t(52)),
            },
        }
    }
}

/// Streaming bulk loader: [`BulkLoader::push`] pieces in any order,
/// then [`BulkLoader::finish`] into a page store. Peak memory is one
/// sort chunk plus the pending directory edges — the dataset itself is
/// spooled to `spool_dir` in sorted runs.
#[derive(Debug)]
pub struct BulkLoader {
    params: PprParams,
    max_time: Time,
    spool_dir: PathBuf,
    chunk_cap: usize,
    chunk: Vec<SortRecord>,
    runs: Vec<PathBuf>,
    pieces: u64,
    alive: u64,
    max_seen: Time,
}

impl BulkLoader {
    /// Start a bulk load. `max_time` is the (approximate) largest
    /// timestamp in the input, used only to normalize lifetime midpoints
    /// into the Hilbert cube — an under-estimate degrades packing
    /// locality, never correctness. Spool files are created under
    /// `spool_dir` (created if missing) and removed by `finish`.
    ///
    /// # Panics
    /// If `params` fail their own [`PprParams::validate`].
    pub fn new(params: PprParams, max_time: Time, spool_dir: impl Into<PathBuf>) -> Self {
        params.validate();
        Self {
            params,
            max_time: max_time.max(1),
            spool_dir: spool_dir.into(),
            chunk_cap: DEFAULT_CHUNK,
            chunk: Vec::new(),
            runs: Vec::new(),
            pieces: 0,
            alive: 0,
            max_seen: 0,
        }
    }

    /// Override the in-memory sort chunk size (records); floored at 1024
    /// so spill tests stay cheap without pathological run counts.
    pub fn chunk_capacity(mut self, cap: usize) -> Self {
        self.chunk_cap = cap.max(1024);
        self
    }

    /// Add one piece.
    ///
    /// # Errors
    /// [`BulkError::InvalidPiece`] for an empty lifetime or non-finite
    /// rect; [`BulkError::Spool`] if spilling a sorted run fails.
    pub fn push(&mut self, piece: BulkPiece) -> Result<(), BulkError> {
        let r = &piece.rect;
        let finite =
            r.lo.x.is_finite() && r.lo.y.is_finite() && r.hi.x.is_finite() && r.hi.y.is_finite();
        if piece.insertion >= piece.deletion || !finite || r.lo.x > r.hi.x || r.lo.y > r.hi.y {
            return Err(BulkError::InvalidPiece { ptr: piece.ptr });
        }
        let key = hilbert_key(&piece, self.max_time);
        self.pieces += 1;
        if piece.deletion == TimeInterval::OPEN_END {
            self.alive += 1;
            self.max_seen = self.max_seen.max(piece.insertion);
        } else {
            self.max_seen = self.max_seen.max(piece.deletion);
        }
        self.chunk.push(SortRecord { key, piece });
        if self.chunk.len() >= self.chunk_cap {
            self.spill_run()?;
        }
        Ok(())
    }

    fn spill_run(&mut self) -> Result<(), BulkError> {
        self.chunk.sort_unstable_by_key(SortRecord::order_key);
        fs::create_dir_all(&self.spool_dir)?;
        let path = self.spool_dir.join(format!(
            "sti-bulk-{}-run{}.tmp",
            std::process::id(),
            self.runs.len()
        ));
        let mut w = BufWriter::new(fs::File::create(&path)?);
        let mut buf = Vec::with_capacity(RECORD_BYTES);
        for rec in &self.chunk {
            buf.clear();
            rec.encode(&mut buf);
            w.write_all(&buf)?;
        }
        w.flush()?;
        self.runs.push(path);
        self.chunk.clear();
        Ok(())
    }

    /// Sort, pack, and assemble the tree into `store` (append-only page
    /// writes). Returns the finished tree and the build counters.
    ///
    /// # Errors
    /// Any [`BulkError`]; spool runs are removed on success and left
    /// behind (under the caller's `spool_dir`) on failure.
    pub fn finish(mut self, store: PageStore) -> Result<(PprTree, BulkStats), BulkError> {
        let mut stats = BulkStats {
            pieces: self.pieces,
            ..BulkStats::default()
        };
        let mut stream = if self.runs.is_empty() {
            self.chunk.sort_unstable_by_key(SortRecord::order_key);
            SortedStream::Mem(std::mem::take(&mut self.chunk).into_iter())
        } else {
            if !self.chunk.is_empty() {
                self.spill_run()?;
            }
            stats.spilled_runs = self.runs.len() as u64;
            SortedStream::merge(&self.runs)?
        };

        let mut store = store;
        let fanout = self.params.max_entries;
        let a_max = (fanout / 2).max(1);
        let weak_min = self.params.weak_min();

        // Leaf pass: group the sorted stream, replay each group. Sub-`D`
        // survivors of a weak close are carried into the next group
        // (see `close_window`); cap-breaching pieces are deferred into
        // it (see `LevelPacker`).
        let mut edges: Vec<BulkPiece> = Vec::new();
        let mut packer = LevelPacker::new(0, weak_min, fanout, a_max);
        while let Some(piece) = stream.next()? {
            packer.push(piece, &mut store, &mut edges, &mut stats)?;
            let resident = (edges.len() + packer.resident()) as u64;
            stats.peak_resident_pages = stats.peak_resident_pages.max(resident);
        }
        packer.drain(&mut store, &mut edges, &mut stats)?;
        stats.leaf_pages = stats.pages_written;

        // Pack directory levels until the edges fit a root chain.
        // Directory edges are short-lived (every window closes within a
        // few instants), so unlike the leaf level there is no
        // space-and-time cell dense enough to keep `D` children alive at
        // once. The incremental tree solves this by making directory
        // nodes partition *space only* and persist across the whole
        // evolution; the packer mirrors that: edges are ordered by the
        // Hilbert value of their center alone and cut into regions whose
        // total lifetime mass sustains a standing population of about
        // `A_max` children, each region replayed as one timeline-spanning
        // group. A level whose edges are too sparse for even one region
        // to stay above the weak minimum (average concurrency below `D`)
        // is left to the root chain, which is exempt from the weak
        // condition — exactly how the incremental tree absorbs a
        // near-sequential history, as root log spans.
        let horizon = self.max_seen.max(1);
        let cc_cap = fanout.saturating_sub(weak_min + 1).max(1);
        let mut node_level = 1u32;
        let mut edge_level = 0u32;
        while edges.len() > fanout {
            if average_concurrency(&edges, horizon) < weak_min as f64 {
                break;
            }
            let before = edges.len();
            let regions = chunk_by_region(std::mem::take(&mut edges), horizon, a_max, cc_cap);
            let mut next: Vec<BulkPiece> = Vec::new();
            let mut carry: Vec<BulkPiece> = Vec::new();
            for mut region in regions {
                // Stragglers carried out of the previous region's
                // terminal decline join the (spatially adjacent) next
                // region; replay orders by time internally.
                region.append(&mut carry);
                replay_level(
                    &region,
                    node_level,
                    weak_min,
                    fanout,
                    &mut ReplaySinks {
                        store: &mut store,
                        stats: &mut stats,
                        carry: &mut carry,
                    },
                    &mut next,
                )?;
            }
            // A trailing carry replays alone; each round records at
            // least one death, so it strictly shrinks.
            while !carry.is_empty() {
                let region = std::mem::take(&mut carry);
                replay_level(
                    &region,
                    node_level,
                    weak_min,
                    fanout,
                    &mut ReplaySinks {
                        store: &mut store,
                        stats: &mut stats,
                        carry: &mut carry,
                    },
                    &mut next,
                )?;
            }
            stats.peak_resident_pages = stats.peak_resident_pages.max(next.len() as u64);
            edges = next;
            edge_level = node_level;
            node_level += 1;
            if edges.len() >= before {
                break;
            }
        }

        let roots = pack_roots(&edges, edge_level, fanout, &mut store, &mut stats)?;
        stats.levels = roots.iter().map(|s| s.level).max().unwrap_or(0);
        stats.fill_factor = if stats.pages_written == 0 {
            0.0
        } else {
            stats.entries_recorded as f64 / (stats.pages_written * fanout as u64) as f64
        };

        for path in &self.runs {
            let _ = fs::remove_file(path);
        }
        self.runs.clear();

        let tree = PprTree::assemble(
            store,
            self.params,
            roots,
            self.max_seen,
            self.alive,
            self.pieces,
        );
        Ok((tree, stats))
    }
}

/// Lifetime end clamped to the data horizon: still-open pieces count as
/// alive through `horizon` for sizing purposes.
fn clamped_end(p: &BulkPiece, horizon: Time) -> Time {
    p.deletion.min(horizon.saturating_add(1)).max(p.insertion)
}

/// Average number of pieces alive at one instant: total lifetime mass
/// over the occupied span. Sizes the directory regions and decides when
/// a level is too sparse to pack at all.
fn average_concurrency(pieces: &[BulkPiece], horizon: Time) -> f64 {
    let mut mass = 0u64;
    let mut lo = Time::MAX;
    let mut hi = 0;
    for p in pieces {
        let end = clamped_end(p, horizon);
        mass += u64::from(end - p.insertion);
        lo = lo.min(p.insertion);
        hi = hi.max(end);
    }
    if mass == 0 || hi <= lo {
        return 0.0;
    }
    mass as f64 / f64::from(hi - lo)
}

/// Bucketed timeline occupancy for region formation. Buckets are one
/// instant wide up to 4096 buckets, then coarsen; a piece counts in
/// every bucket its lifetime touches, so coarse buckets over-estimate
/// concurrency — the cap stays conservative, never violated.
struct Occupancy {
    lo: Time,
    width: u64,
    counts: Vec<usize>,
}

impl Occupancy {
    fn new(lo: Time, hi: Time) -> Self {
        let span = u64::from(hi.max(lo + 1) - lo);
        let n = span.min(4096);
        Self {
            lo,
            width: span.div_ceil(n),
            counts: vec![0; n as usize],
        }
    }

    fn clear(&mut self) {
        self.counts.fill(0);
    }

    fn buckets(&self, p: &BulkPiece, horizon: Time) -> std::ops::RangeInclusive<usize> {
        let first = u64::from(p.insertion.saturating_sub(self.lo)) / self.width;
        let last = u64::from(clamped_end(p, horizon).saturating_sub(self.lo)) / self.width;
        let top = self.counts.len().saturating_sub(1);
        (first as usize).min(top)..=(last as usize).min(top)
    }

    fn fits(&self, p: &BulkPiece, horizon: Time, cap: usize) -> bool {
        self.buckets(p, horizon)
            .all(|b| self.counts.get(b).is_some_and(|&c| c < cap))
    }

    fn add(&mut self, p: &BulkPiece, horizon: Time) {
        for b in self.buckets(p, horizon) {
            if let Some(c) = self.counts.get_mut(b) {
                *c += 1;
            }
        }
    }
}

/// Cut one directory level's edges into spatial regions. Edges are
/// ordered by the Hilbert value of their center (space only — each
/// region spans the whole timeline, like an incremental directory
/// node), then split once a region's lifetime mass would sustain about
/// `target_cc` concurrently alive children. `cc_cap` is a hard
/// per-instant ceiling, checked against bucketed occupancy: an edge
/// landing on a saturated instant spills to the next region, so replay
/// (which re-posts up to cap survivors plus a sub-`D` carry) can never
/// overflow a node.
fn chunk_by_region(
    mut edges: Vec<BulkPiece>,
    horizon: Time,
    target_cc: usize,
    cc_cap: usize,
) -> Vec<Vec<BulkPiece>> {
    edges.sort_unstable_by_key(|p| {
        let c = p.rect.center();
        (hilbert2(c.x, c.y), p.ptr, p.insertion, p.deletion)
    });
    let mut lo = Time::MAX;
    let mut hi = 0;
    for p in &edges {
        lo = lo.min(p.insertion);
        hi = hi.max(clamped_end(p, horizon));
    }
    let span = u64::from(hi.max(lo.saturating_add(1)) - lo);
    let target_mass = target_cc as u64 * span;

    let mut occ = Occupancy::new(lo, hi);
    let mut regions: Vec<Vec<BulkPiece>> = Vec::new();
    let mut cur: Vec<BulkPiece> = Vec::new();
    let mut cur_mass = 0u64;
    let mut spill: Vec<BulkPiece> = Vec::new();
    let admit = |p: BulkPiece,
                 occ: &mut Occupancy,
                 cur: &mut Vec<BulkPiece>,
                 cur_mass: &mut u64,
                 spill: &mut Vec<BulkPiece>| {
        if occ.fits(&p, horizon, cc_cap) {
            occ.add(&p, horizon);
            *cur_mass += u64::from(clamped_end(&p, horizon) - p.insertion);
            cur.push(p);
        } else {
            spill.push(p);
        }
    };

    for p in edges {
        admit(p, &mut occ, &mut cur, &mut cur_mass, &mut spill);
        if cur_mass >= target_mass {
            regions.push(std::mem::take(&mut cur));
            occ.clear();
            cur_mass = 0;
            // Spilled peak edges get first claim on the fresh region.
            for s in std::mem::take(&mut spill) {
                admit(s, &mut occ, &mut cur, &mut cur_mass, &mut spill);
            }
        }
    }
    // Drain the tail: every fresh region admits at least one spilled
    // edge (a lone piece never exceeds the cap), so this terminates.
    while !spill.is_empty() {
        for s in std::mem::take(&mut spill) {
            admit(s, &mut occ, &mut cur, &mut cur_mass, &mut spill);
        }
        if !spill.is_empty() {
            regions.push(std::mem::take(&mut cur));
            occ.clear();
            cur_mass = 0;
        }
    }
    if !cur.is_empty() {
        regions.push(cur);
    }
    regions
}

/// Group formation: admit consecutive sorted pieces while the group's
/// maximum concurrency (members alive at one instant) stays within
/// `a_max` and its size within [`GROUP_MAX`]. Concurrency is tracked
/// exactly: the maximum of a step function that rises only at
/// insertions is attained at some member's insertion time, so the
/// builder keeps, per member, the concurrency at that member's
/// insertion and updates it in O(group) per candidate.
#[derive(Debug)]
struct GroupBuilder {
    a_max: usize,
    members: Vec<BulkPiece>,
    cc_at_ins: Vec<usize>,
}

impl GroupBuilder {
    fn new(a_max: usize) -> Self {
        Self {
            a_max,
            members: Vec::new(),
            cc_at_ins: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.members.clear();
        self.cc_at_ins.clear();
    }

    fn try_add(&mut self, p: &BulkPiece) -> bool {
        if self.members.len() >= GROUP_MAX {
            return false;
        }
        let mut cc_p = 1usize;
        for m in &self.members {
            if m.contains_time(p.insertion) {
                cc_p += 1;
            }
        }
        if cc_p > self.a_max {
            return false;
        }
        for (m, &cc) in self.members.iter().zip(&self.cc_at_ins) {
            if p.contains_time(m.insertion) && cc + 1 > self.a_max {
                return false;
            }
        }
        self.commit(p, cc_p);
        true
    }

    /// Admit `p` unconditionally — used for carried-over survivors,
    /// which must land in the very next group. Carry batches are smaller
    /// than `D`, so the concurrency overshoot stays within the node
    /// capacity margin (`A_max + D < B` for the paper's parameters).
    fn force_add(&mut self, p: &BulkPiece) {
        let mut cc_p = 1usize;
        for m in &self.members {
            if m.contains_time(p.insertion) {
                cc_p += 1;
            }
        }
        self.commit(p, cc_p);
    }

    fn commit(&mut self, p: &BulkPiece, cc_p: usize) {
        for (m, cc) in self.members.iter().zip(self.cc_at_ins.iter_mut()) {
            if p.contains_time(m.insertion) {
                *cc += 1;
            }
        }
        self.members.push(*p);
        self.cc_at_ins.push(cc_p);
    }
}

/// Streams one level's pieces into groups, replaying each full group
/// and seeding its successor with carried survivors and deferred
/// pieces. Deferral is load-bearing: a cap-breaching piece is held for
/// the next group instead of ending the current one, so groups actually
/// reach [`GROUP_MAX`] members and a timeline span wide enough for
/// their windows to stay above the weak minimum between closes.
struct LevelPacker {
    level: u32,
    weak_min: usize,
    fanout: usize,
    group: GroupBuilder,
    deferred: Vec<BulkPiece>,
    carry: Vec<BulkPiece>,
}

impl LevelPacker {
    fn new(level: u32, weak_min: usize, fanout: usize, a_max: usize) -> Self {
        Self {
            level,
            weak_min,
            fanout,
            group: GroupBuilder::new(a_max),
            deferred: Vec::new(),
            carry: Vec::new(),
        }
    }

    /// Pieces buffered in memory (group members + deferral backlog).
    fn resident(&self) -> usize {
        self.group.members.len() + self.deferred.len()
    }

    /// Offer one piece; flushes the group when it or the deferral
    /// backlog is full.
    fn push(
        &mut self,
        p: BulkPiece,
        store: &mut PageStore,
        out: &mut Vec<BulkPiece>,
        stats: &mut BulkStats,
    ) -> Result<(), BulkError> {
        if !self.group.try_add(&p) {
            self.deferred.push(p);
        }
        if self.group.members.len() >= GROUP_MAX || self.deferred.len() >= DEFER_MAX {
            self.flush(store, out, stats)?;
        }
        Ok(())
    }

    /// Replay the current group; seed the successor with carried
    /// survivors, then re-offer the deferral backlog.
    fn flush(
        &mut self,
        store: &mut PageStore,
        out: &mut Vec<BulkPiece>,
        stats: &mut BulkStats,
    ) -> Result<(), BulkError> {
        let members = std::mem::take(&mut self.group.members);
        self.group.reset();
        if !members.is_empty() {
            replay_level(
                &members,
                self.level,
                self.weak_min,
                self.fanout,
                &mut ReplaySinks {
                    store,
                    stats,
                    carry: &mut self.carry,
                },
                out,
            )?;
        }
        for c in self.carry.drain(..) {
            self.group.force_add(&c);
        }
        let pending = std::mem::take(&mut self.deferred);
        let mut admitted = false;
        for p in pending {
            if self.group.try_add(&p) {
                admitted = true;
            } else {
                self.deferred.push(p);
            }
        }
        if !admitted && !self.deferred.is_empty() {
            // Progress guarantee: a backlog the carry-seeded successor
            // keeps rejecting would flush empty groups forever. Admit
            // the oldest piece by force — a one-piece cap overshoot,
            // well inside the `A_max + D < B` margin.
            let p = self.deferred.remove(0);
            self.group.force_add(&p);
        }
        Ok(())
    }

    /// Flush until the group, the backlog, and the carry are all empty.
    /// Terminates: every non-empty replay records at least one death
    /// (or closes open-ended), so the piece population strictly shrinks.
    fn drain(
        &mut self,
        store: &mut PageStore,
        out: &mut Vec<BulkPiece>,
        stats: &mut BulkStats,
    ) -> Result<(), BulkError> {
        while self.resident() > 0 {
            self.flush(store, out, stats)?;
        }
        Ok(())
    }
}

/// An open window of the replay: one physical node under construction.
struct Window {
    start: Time,
    node: PprNode,
    /// (piece index, entry index) of members still alive here.
    alive: Vec<(usize, usize)>,
}

/// Write `node` to a fresh page.
fn write_page(
    store: &mut PageStore,
    node: &PprNode,
    stats: &mut BulkStats,
) -> Result<PageId, BulkError> {
    let page = store.allocate()?;
    let mut buf = Page::zeroed();
    node.encode(&mut buf);
    store.write(page, buf.bytes().as_slice())?;
    stats.pages_written += 1;
    stats.entries_recorded += node.entries.len() as u64;
    Ok(page)
}

/// Close `w` at time `close` (or as a still-open node when `close ==
/// OPEN_END`), emit its edge, and return a successor window holding the
/// re-posted survivors. When fewer than `min_keep` survive, the
/// survivors go to `carry` instead: the caller passes `min_keep ==
/// usize::MAX` on a group's terminal decline, handing the stragglers to
/// the next group at this level — the bulk analogue of the incremental
/// strong-underflow sibling merge — and `0` everywhere else, so a
/// transient dip below the weak minimum keeps its population and
/// recovers instead of resetting to an empty window.
fn close_window(
    w: Window,
    close: Time,
    pieces: &[BulkPiece],
    min_keep: usize,
    sinks: &mut ReplaySinks<'_>,
    emit: &mut impl FnMut(Rect2, TimeInterval, PageId),
) -> Result<Option<Window>, BulkError> {
    let page = write_page(sinks.store, &w.node, sinks.stats)?;
    emit(
        w.node.full_mbr(),
        TimeInterval {
            start: w.start,
            end: close,
        },
        page,
    );
    if close == TimeInterval::OPEN_END || w.alive.is_empty() {
        return Ok(None);
    }
    if w.alive.len() < min_keep {
        for &(pi, _) in &w.alive {
            let Some(p) = pieces.get(pi) else {
                continue;
            };
            sinks.carry.push(BulkPiece {
                rect: p.rect,
                ptr: p.ptr,
                insertion: close,
                deletion: p.deletion,
            });
        }
        return Ok(None);
    }
    let mut next = Window {
        start: close,
        node: PprNode::new(w.node.level),
        alive: Vec::with_capacity(w.alive.len()),
    };
    for &(pi, _) in &w.alive {
        let Some(p) = pieces.get(pi) else {
            continue;
        };
        let idx = next.node.entries.len();
        next.node.entries.push(PprEntry {
            rect: p.rect,
            ptr: p.ptr,
            insertion: close,
            deletion: TimeInterval::OPEN_END,
        });
        next.alive.push((pi, idx));
    }
    Ok(Some(next))
}

/// The mutable sinks every replay pass threads through: the store the
/// nodes land in, the running build stats, and the carry list that
/// hands a group's terminal stragglers to the next group at its level.
struct ReplaySinks<'a> {
    store: &'a mut PageStore,
    stats: &'a mut BulkStats,
    carry: &'a mut Vec<BulkPiece>,
}

/// Replay one group's births and deaths through a window chain,
/// emitting one directory edge per window via `emit`. `weak_min == 0`
/// selects root mode: windows close only on capacity or when nothing is
/// alive (roots are exempt from the weak version condition).
fn replay_group(
    pieces: &[BulkPiece],
    node_level: u32,
    weak_min: usize,
    fanout: usize,
    sinks: &mut ReplaySinks<'_>,
    mut emit: impl FnMut(Rect2, TimeInterval, PageId),
) -> Result<(), BulkError> {
    // (time, kind, piece): deaths (kind 0) sort before births (kind 1)
    // at the same instant, so a kill batch is complete before any birth
    // decision at that time.
    let mut events: Vec<(Time, u8, usize)> = Vec::with_capacity(pieces.len() * 2);
    for (i, p) in pieces.iter().enumerate() {
        events.push((p.insertion, 1, i));
        if p.deletion != TimeInterval::OPEN_END {
            events.push((p.deletion, 0, i));
        }
    }
    events.sort_unstable();
    let close_min = weak_min.max(1);

    let mut window: Option<Window> = None;
    let mut births_done = 0usize;
    let mut i = 0usize;
    while let Some(&(t, _, _)) = events.get(i) {
        let mut any_death = false;
        while let Some(&(et, kind, pi)) = events.get(i) {
            if et != t || kind != 0 {
                break;
            }
            i += 1;
            any_death = true;
            if let Some(w) = window.as_mut() {
                if let Some(pos) = w.alive.iter().position(|&(p, _)| p == pi) {
                    let (_, ei) = w.alive.swap_remove(pos);
                    if let Some(e) = w.node.entries.get_mut(ei) {
                        e.deletion = t;
                    }
                }
            }
        }
        if any_death {
            let must_close = window.as_ref().is_some_and(|w| w.alive.len() < close_min);
            if must_close {
                // Kills at `t` land exactly at the close, which the weak
                // version condition exempts — same shape a version split
                // leaves behind. Survivors are re-posted into the
                // successor while this group still has births to come —
                // exporting them would reset the window population and
                // cascade into one near-empty page per death. Only the
                // terminal decline (no births left) carries them out.
                let keep = if births_done < pieces.len() {
                    0
                } else {
                    usize::MAX
                };
                if let Some(w) = window.take() {
                    window = close_window(w, t, pieces, keep, sinks, &mut emit)?;
                }
            }
        }
        while let Some(&(et, kind, pi)) = events.get(i) {
            if et != t || kind != 1 {
                break;
            }
            i += 1;
            births_done += 1;
            let Some(p) = pieces.get(pi) else {
                continue;
            };
            if window
                .as_ref()
                .is_some_and(|w| w.node.entries.len() >= fanout)
            {
                // Capacity close: a birth is arriving right now, so the
                // successor always keeps the survivors.
                if let Some(w) = window.take() {
                    window = close_window(w, t, pieces, 0, sinks, &mut emit)?;
                }
            }
            let w = window.get_or_insert_with(|| Window {
                start: t,
                node: PprNode::new(node_level),
                alive: Vec::new(),
            });
            if w.node.entries.len() >= fanout {
                // Survivor re-posting refilled the node: the concurrency
                // cap makes this unreachable below the root, and at the
                // root it means more simultaneous children than B.
                return Err(BulkError::RootOverflow {
                    alive: w.alive.len(),
                });
            }
            let idx = w.node.entries.len();
            w.node.entries.push(PprEntry {
                rect: p.rect,
                ptr: p.ptr,
                insertion: t,
                deletion: TimeInterval::OPEN_END,
            });
            w.alive.push((pi, idx));
        }
    }
    if let Some(w) = window.take() {
        close_window(
            w,
            TimeInterval::OPEN_END,
            pieces,
            weak_min,
            sinks,
            &mut emit,
        )?;
    }
    Ok(())
}

/// Replay a non-root group, appending the emitted edges to `out` as
/// pieces for the next level up.
fn replay_level(
    pieces: &[BulkPiece],
    node_level: u32,
    weak_min: usize,
    fanout: usize,
    sinks: &mut ReplaySinks<'_>,
    out: &mut Vec<BulkPiece>,
) -> Result<(), BulkError> {
    replay_group(
        pieces,
        node_level,
        weak_min,
        fanout,
        sinks,
        |rect, iv, page| {
            out.push(BulkPiece {
                rect,
                ptr: u64::from(page),
                insertion: iv.start,
                deletion: iv.end,
            });
        },
    )
}

/// Pack the final edges into the root chain. A single edge becomes a
/// [`RootSpan`] directly (that node *is* the root for its span);
/// otherwise the edges are replayed in root mode — close on capacity or
/// on the last death — and every window becomes one span.
fn pack_roots(
    edges: &[BulkPiece],
    edge_level: u32,
    fanout: usize,
    store: &mut PageStore,
    stats: &mut BulkStats,
) -> Result<Vec<RootSpan>, BulkError> {
    let mut roots: Vec<RootSpan> = Vec::new();
    match edges {
        [] => {}
        [only] => roots.push(RootSpan {
            interval: only.lifetime(),
            page: only.ptr as PageId,
            level: edge_level,
        }),
        many => {
            let level = edge_level + 1;
            // Root mode: `weak_min == 0` (roots are exempt), so nothing
            // is ever carried — the list stays empty by construction.
            let mut no_carry = Vec::new();
            replay_group(
                many,
                level,
                0,
                fanout,
                &mut ReplaySinks {
                    store,
                    stats,
                    carry: &mut no_carry,
                },
                |_, iv, page| {
                    roots.push(RootSpan {
                        interval: iv,
                        page,
                        level,
                    });
                },
            )?;
            debug_assert!(no_carry.is_empty());
            roots.sort_unstable_by_key(|s| s.interval.start);
        }
    }
    Ok(roots)
}

/// The sorted piece stream `finish` consumes: either the single sorted
/// in-memory chunk, or a k-way merge of spooled runs. Both paths use
/// the same total order, so the downstream build is byte-identical.
enum SortedStream {
    Mem(std::vec::IntoIter<SortRecord>),
    Merge {
        readers: Vec<RunReader>,
        heap: BinaryHeap<Reverse<HeapItem>>,
    },
}

struct RunReader {
    inner: BufReader<fs::File>,
}

impl RunReader {
    fn next(&mut self) -> Result<Option<SortRecord>, BulkError> {
        let mut buf = [0u8; RECORD_BYTES];
        match self.inner.read_exact(&mut buf) {
            Ok(()) => Ok(Some(SortRecord::decode(&buf))),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(BulkError::Spool(e)),
        }
    }
}

struct HeapItem {
    key: SortKey,
    run: usize,
    rec: SortRecord,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.run) == (other.key, other.run)
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.run).cmp(&(other.key, other.run))
    }
}

impl SortedStream {
    fn merge(runs: &[PathBuf]) -> Result<Self, BulkError> {
        let mut readers = Vec::with_capacity(runs.len());
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (i, path) in runs.iter().enumerate() {
            let mut r = RunReader {
                inner: BufReader::new(fs::File::open(path)?),
            };
            if let Some(rec) = r.next()? {
                heap.push(Reverse(HeapItem {
                    key: rec.order_key(),
                    run: i,
                    rec,
                }));
            }
            readers.push(r);
        }
        Ok(SortedStream::Merge { readers, heap })
    }

    fn next(&mut self) -> Result<Option<BulkPiece>, BulkError> {
        match self {
            SortedStream::Mem(it) => Ok(it.next().map(|r| r.piece)),
            SortedStream::Merge { readers, heap } => {
                let Some(Reverse(item)) = heap.pop() else {
                    return Ok(None);
                };
                if let Some(r) = readers.get_mut(item.run) {
                    if let Some(rec) = r.next()? {
                        heap.push(Reverse(HeapItem {
                            key: rec.order_key(),
                            run: item.run,
                            rec,
                        }));
                    }
                }
                Ok(Some(item.rec.piece))
            }
        }
    }
}
