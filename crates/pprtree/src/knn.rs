//! Historical k-nearest-neighbor search: "which objects were closest to
//! this point *at time t*?" — a natural companion to snapshot queries,
//! answered by a best-first MINDIST traversal of the ephemeral tree of
//! instant `t`.

use crate::tree::PprTree;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use sti_geom::{Point2, Time};
use sti_storage::StorageError;

#[derive(Debug, PartialEq)]
struct Pending {
    dist2: f64,
    /// `true` ⇒ `ptr` is a record id; `false` ⇒ a directory child page.
    is_record: bool,
    ptr: u64,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist2
            .total_cmp(&other.dist2)
            .then_with(|| self.ptr.cmp(&other.ptr))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PprTree {
    /// The `k` records alive at instant `t` nearest to `point`, as
    /// `(id, squared distance)` pairs ordered nearest-first.
    ///
    /// Only entries whose lifetime contains `t` are expanded, so the
    /// search runs over exactly the ephemeral R-Tree of that instant:
    /// cost is proportional to the alive population near `point`, not to
    /// the history length.
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries; the search
    /// is abandoned and the tree is unchanged. Shared: `&self`, so
    /// concurrent kNN searches and range queries may interleave freely.
    pub fn nearest_at(
        &self,
        point: Point2,
        t: Time,
        k: usize,
    ) -> Result<Vec<(u64, f64)>, StorageError> {
        let mut out = Vec::with_capacity(k);
        if k == 0 {
            return Ok(out);
        }
        let Some(span) = self.root_span_at(t) else {
            return Ok(out);
        };
        let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
        heap.push(Reverse(Pending {
            dist2: 0.0,
            is_record: false,
            ptr: u64::from(span.page),
        }));

        while let Some(Reverse(item)) = heap.pop() {
            if item.is_record {
                out.push((item.ptr, item.dist2));
                if out.len() == k {
                    break;
                }
                continue;
            }
            // stilint::allow(no_panic, "directory items carry allocate()-returned u32 page ids widened into the shared ptr field")
            let page = u32::try_from(item.ptr).expect("page id");
            let node = self.read_node_pub(page)?;
            for e in &node.entries {
                if !e.alive_at(t) {
                    continue;
                }
                heap.push(Reverse(Pending {
                    dist2: e.rect.min_dist2(&point),
                    is_record: node.is_leaf(),
                    ptr: e.ptr,
                }));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PprParams;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sti_geom::Rect2;

    fn build(seed: u64) -> (PprTree, Vec<(u64, Rect2, u32, u32)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = PprTree::new(PprParams {
            max_entries: 10,
            buffer_pages: 4,
            ..PprParams::default()
        });
        let mut records = Vec::new();
        for id in 0..300u64 {
            let x = rng.random::<f64>() * 0.9;
            let y = rng.random::<f64>() * 0.9;
            let r = Rect2::from_bounds(x, y, x + 0.03, y + 0.03);
            let start = rng.random_range(0..800u32);
            let end = start + rng.random_range(1..150u32);
            records.push((id, r, start, end));
        }
        let mut events: Vec<(u32, u8, usize)> = Vec::new();
        for (i, &(_, _, s, e)) in records.iter().enumerate() {
            events.push((s, 1, i));
            events.push((e, 0, i));
        }
        events.sort_unstable();
        for (t, kind, i) in events {
            let (id, r, ..) = records[i];
            if kind == 1 {
                tree.insert(id, r, t).unwrap();
            } else {
                tree.delete(id, r, t).unwrap();
            }
        }
        (tree, records)
    }

    fn brute(records: &[(u64, Rect2, u32, u32)], p: Point2, t: u32, k: usize) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = records
            .iter()
            .filter(|&&(_, _, s, e)| s <= t && t < e)
            .map(|&(id, r, ..)| (id, r.min_dist2(&p)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn matches_brute_force_across_time() {
        let (tree, records) = build(5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..25 {
            let p = Point2::new(rng.random::<f64>(), rng.random::<f64>());
            let t = rng.random_range(0..950u32);
            for k in [1usize, 4, 12] {
                let got = tree.nearest_at(p, t, k).unwrap();
                let want = brute(&records, p, t, k);
                assert_eq!(got.len(), want.len(), "t={t} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.1 - w.1).abs() < 1e-12,
                        "t={t} k={k}: {got:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn respects_time_travel() {
        // The nearest neighbor at t=5 can differ from t=500 because the
        // population changed; both must be historically correct.
        let (tree, records) = build(7);
        let p = Point2::new(0.5, 0.5);
        for t in [5u32, 250, 500, 900] {
            let got = tree.nearest_at(p, t, 3).unwrap();
            let want = brute(&records, p, t, 3);
            assert_eq!(got.len(), want.len(), "t={t}");
        }
    }

    #[test]
    fn empty_time_returns_nothing() {
        let mut tree = PprTree::new(PprParams {
            max_entries: 10,
            ..PprParams::default()
        });
        tree.insert(1, Rect2::from_bounds(0.1, 0.1, 0.2, 0.2), 100)
            .unwrap();
        assert!(tree
            .nearest_at(Point2::new(0.5, 0.5), 50, 3)
            .unwrap()
            .is_empty());
        assert_eq!(
            tree.nearest_at(Point2::new(0.5, 0.5), 100, 3)
                .unwrap()
                .len(),
            1
        );
    }
}
