//! The PPR-Tree proper: timestamped updates, version splits, and
//! historical queries.

use crate::node::{PprEntry, PprNode, PprParams};
use crate::split::key_split;
use std::collections::HashSet;
use std::sync::Arc;
use sti_geom::{Rect2, Time, TimeInterval};
use sti_obs::QueryStats;
use sti_storage::{
    BufferPolicy, CorruptReason, FaultStats, IoStats, Page, PageBackend, PageId, PageStore,
    ReadProbe, ReadaheadStats, RetryPolicy, ScratchPool, ShardedBuffer, StorageError,
};

/// Failure of a [`PprTree::delete`] call. The tree is left unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteError {
    /// No record with this id (and the given rectangle) is alive at the
    /// deletion time — it was never inserted, already deleted, or the
    /// rectangle does not exactly match the inserted one.
    NotFound {
        /// The id the caller asked to delete.
        id: u64,
        /// The requested deletion time.
        t: Time,
    },
    /// The underlying page store failed. The partial update was rolled
    /// back: pages, root log, clock and record counters all hold their
    /// pre-call values.
    Storage(StorageError),
}

impl From<StorageError> for DeleteError {
    fn from(e: StorageError) -> Self {
        DeleteError::Storage(e)
    }
}

impl std::fmt::Display for DeleteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeleteError::NotFound { id, t } => {
                write!(f, "no alive record {id} to delete at {t}")
            }
            DeleteError::Storage(e) => write!(f, "delete aborted by storage error: {e}"),
        }
    }
}

impl std::error::Error for DeleteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeleteError::NotFound { .. } => None,
            DeleteError::Storage(e) => Some(e),
        }
    }
}

/// One span of the root log: during `interval`, the ephemeral R-Tree was
/// rooted at `page` (a node of height `level`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootSpan {
    /// Time span this root covers.
    pub interval: TimeInterval,
    /// Root node page.
    pub page: PageId,
    /// Root node level (tree height during the span).
    pub level: u32,
}

/// Reusable query-time allocations. Queries used to build a fresh
/// `HashSet` / span list / traversal stack per call, which churned the
/// allocator across a measured batch (the paper's methodology runs
/// thousands of queries back to back); the tree keeps a pool of scratch
/// blocks ([`ScratchPool`]) so steady-state sequential queries allocate
/// nothing, while concurrent `&self` queries each take their own block
/// (a burst of N threads materializes at most N). Contents are cleared
/// at every query entry — they carry capacity, never data, between
/// calls. The scratch is returned to the pool even when a query aborts
/// on a storage error.
#[derive(Debug, Default)]
struct QueryScratch {
    /// Dedup set for interval queries.
    seen: HashSet<u64>,
    /// Root spans overlapping the query range.
    spans: Vec<RootSpan>,
    /// Descent stack for interval queries (page, clipped range).
    stack: Vec<(PageId, TimeInterval)>,
    /// Descent stack for snapshot queries.
    snap_stack: Vec<PageId>,
}

/// Copy a [`ReadProbe`]'s per-call I/O attribution into the I/O fields
/// of a [`QueryStats`] (queries are read-only, so `disk_writes` stays 0;
/// the traversal-side tallies are the query loop's own).
fn apply_probe(stats: &mut QueryStats, probe: &ReadProbe) {
    stats.disk_reads = probe.disk_reads;
    stats.buffer_hits = probe.buffer_hits;
    stats.io_retries = probe.io_retries;
    stats.io_faults_injected = probe.io_faults_injected;
    stats.checksum_failures = probe.checksum_failures;
}

/// Ops to apply to one node during bottom-up structure maintenance.
#[derive(Debug, Default)]
struct Ops {
    /// Entry indices whose `deletion` is stamped with the current time.
    kills: Vec<usize>,
    /// Entry index whose rect grows by the given rectangle.
    expand: Option<(usize, Rect2)>,
    /// New entries to append.
    adds: Vec<PprEntry>,
}

/// What a node hands its parent after ops were applied.
enum UpOps {
    /// Nothing further to do.
    Done,
    /// The parent's directory entry for this node must grow by this rect.
    Expand(Rect2),
    /// This node was version-split: the parent must kill its entry for
    /// this node (and possibly a sibling's) and add the replacements.
    Replace {
        /// Parent entry index of a sibling that was merged away, if any.
        kill_sibling: Option<usize>,
        /// Directory entries for the replacement node(s) (0, 1 or 2).
        adds: Vec<PprEntry>,
    },
}

/// A partially persistent R-Tree over simulated disk pages.
///
/// Updates must arrive in non-decreasing time order (the structure is
/// *partially* persistent: only the present is writable). Queries may ask
/// about any past instant or interval.
///
/// Every operation that touches the page store is fallible: updates run
/// inside a page-level undo transaction and roll back completely on
/// error (see DESIGN.md §6), so a failed `insert`/`delete` leaves the
/// tree exactly as it was.
///
/// ```
/// use sti_geom::{Rect2, TimeInterval};
/// use sti_pprtree::{PprParams, PprTree};
///
/// let mut tree = PprTree::new(PprParams::default());
/// let rect = Rect2::from_bounds(0.4, 0.4, 0.5, 0.5);
/// tree.insert(7, rect, 10).unwrap();
/// tree.delete(7, rect, 20).unwrap();
///
/// let mut hits = Vec::new();
/// tree.query_snapshot(&rect, 15, &mut hits).unwrap(); // alive at 15
/// assert_eq!(hits, vec![7]);
/// hits.clear();
/// tree.query_snapshot(&rect, 20, &mut hits).unwrap(); // half-open lifetime
/// assert!(hits.is_empty());
/// ```
pub struct PprTree {
    store: PageStore,
    params: PprParams,
    roots: Vec<RootSpan>,
    now: Time,
    alive_records: u64,
    total_posted: u64,
    scratch: ScratchPool<QueryScratch>,
    /// Interval-query readahead: when a directory node's children will
    /// *all* be visited, batch-fetch them under one store lock instead
    /// of one read per child (off by default — the paper's figures
    /// count individual page reads).
    readahead: bool,
    /// Tree metadata captured at [`PprTree::begin_batch`], restored by
    /// [`PprTree::rollback_batch`]. `None` outside a batch.
    batch: Option<BatchSnapshot>,
    /// Updates seen, for the debug-build check sampling schedule.
    #[cfg(debug_assertions)]
    debug_mutations: u64,
}

/// Tree metadata at the start of an open batch (the page-level state is
/// covered by the store's undo transaction; this covers everything the
/// store cannot see).
#[derive(Debug, Clone)]
struct BatchSnapshot {
    roots: Vec<RootSpan>,
    now: Time,
    alive_records: u64,
    total_posted: u64,
}

impl Clone for PprTree {
    /// Deep copy: independent pages, an independent backend, and a
    /// *private* buffer pool even if the original shared one (see
    /// [`PageStore::clone`]); the query scratch pool starts empty.
    fn clone(&self) -> Self {
        Self {
            store: self.store.clone(),
            params: self.params,
            roots: self.roots.clone(),
            now: self.now,
            alive_records: self.alive_records,
            total_posted: self.total_posted,
            scratch: ScratchPool::new(),
            readahead: self.readahead,
            batch: self.batch.clone(),
            #[cfg(debug_assertions)]
            debug_mutations: self.debug_mutations,
        }
    }
}

impl PprTree {
    /// Create an empty tree.
    pub fn new(params: PprParams) -> Self {
        params.validate();
        Self::from_store(PageStore::new(params.buffer_pages), params)
    }

    /// Create an empty tree over a caller-supplied page backend — in
    /// particular a [`sti_storage::FaultyBackend`], which is how the
    /// fault-injection suites drive every code path in this file.
    pub fn with_backend(params: PprParams, backend: Box<dyn PageBackend>) -> Self {
        params.validate();
        Self::from_store(
            PageStore::with_backend(backend, params.buffer_pages),
            params,
        )
    }

    /// Create an empty tree over `backend` whose page store shares
    /// `buffer` with other store versions, tagged `tag` (see
    /// [`PageStore::with_backend_shared`]). The ingest pipeline builds
    /// its two tree versions this way so the published reader and the
    /// committer's private tree compete for one pool — the paper's
    /// buffer budget — instead of silently doubling it.
    pub fn with_backend_shared(
        params: PprParams,
        backend: Box<dyn PageBackend>,
        buffer: Arc<ShardedBuffer>,
        tag: u32,
    ) -> Self {
        params.validate();
        Self::from_store(PageStore::with_backend_shared(backend, buffer, tag), params)
    }

    fn from_store(store: PageStore, params: PprParams) -> Self {
        Self {
            store,
            params,
            roots: Vec::new(),
            now: 0,
            alive_records: 0,
            total_posted: 0,
            scratch: ScratchPool::new(),
            readahead: false,
            batch: None,
            #[cfg(debug_assertions)]
            debug_mutations: 0,
        }
    }

    /// Construct a tree directly over already-written pages — the bulk
    /// loader's exit path (`crate::bulk`). The caller supplies the
    /// metadata that incremental updates would have accumulated; the
    /// result is indistinguishable from a tree built one update at a
    /// time and is validated by the same `check::validate`.
    pub(crate) fn assemble(
        store: PageStore,
        params: PprParams,
        roots: Vec<RootSpan>,
        now: Time,
        alive_records: u64,
        total_posted: u64,
    ) -> Self {
        params.validate();
        let mut tree = Self::from_store(store, params);
        tree.roots = roots;
        tree.now = now;
        tree.alive_records = alive_records;
        tree.total_posted = total_posted;
        tree
    }

    /// Handle to the underlying buffer pool, for sharing with another
    /// store version via [`PprTree::with_backend_shared`].
    pub fn share_buffer(&self) -> Arc<ShardedBuffer> {
        self.store.share_buffer()
    }

    /// The current clock (largest update time seen).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Records currently alive.
    pub fn alive_records(&self) -> u64 {
        self.alive_records
    }

    /// Logical records ever inserted.
    pub fn total_records(&self) -> u64 {
        self.total_posted
    }

    /// The root log (one span per consecutive part of the evolution).
    pub fn roots(&self) -> &[RootSpan] {
        &self.roots
    }

    /// Number of allocated pages (disk footprint, fig. 16).
    pub fn num_pages(&self) -> usize {
        self.store.num_pages()
    }

    /// Accumulated I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.store.stats()
    }

    /// Accumulated fault/retry counters from the backing store.
    pub fn fault_stats(&self) -> FaultStats {
        self.store.fault_stats()
    }

    /// Replace the retry budget for transient storage faults.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.store.set_retry_policy(policy);
    }

    /// Replace the buffer pool capacity (clears residency). The paper
    /// fixes this at 10 pages; the `ablation_buffer` bench sweeps it.
    pub fn set_buffer_capacity(&mut self, pages: usize) {
        self.store.set_buffer_capacity(pages);
    }

    /// Re-stripe the buffer pool across `shards` lock shards for
    /// concurrent readers (1 — the default — reproduces the paper's
    /// global-LRU figures exactly; see DESIGN.md §6).
    pub fn set_buffer_shards(&mut self, shards: usize) {
        self.store.set_buffer_shards(shards);
    }

    /// Switch the buffer pool eviction policy (LRU is the paper's
    /// default; 2Q resists one-shot interval scans — DESIGN.md §10).
    pub fn set_buffer_policy(&mut self, policy: BufferPolicy) {
        self.store.set_buffer_policy(policy);
    }

    /// Current buffer pool eviction policy.
    pub fn buffer_policy(&self) -> BufferPolicy {
        self.store.buffer_policy()
    }

    /// Enable or disable interval-query readahead (batch-fetching all
    /// children of a fully-matched directory node in one lock
    /// round-trip). Off by default.
    pub fn set_readahead(&mut self, on: bool) {
        self.readahead = on;
    }

    /// Whether interval-query readahead is enabled.
    pub fn readahead(&self) -> bool {
        self.readahead
    }

    /// Readahead effectiveness counters (hit = prefetched page later
    /// touched; wasted = evicted or invalidated untouched).
    pub fn readahead_stats(&self) -> ReadaheadStats {
        self.store.readahead_stats()
    }

    /// Probation evictions the 2Q policy absorbed while protected pages
    /// stayed resident (0 under LRU).
    pub fn scan_evictions_avoided(&self) -> u64 {
        self.store.scan_evictions_avoided()
    }

    /// Zero the I/O and fault counters without touching buffer
    /// residency. Shared: the counters are interior-mutable, so a bench
    /// can start a fresh accounting window between passes while other
    /// threads still hold `&self` for querying.
    pub fn reset_counters(&self) {
        self.store.reset_stats();
    }

    /// Empty the buffer pool (the paper's cold-buffer methodology).
    /// Exclusive on purpose, even though the pool could technically be
    /// cleared through `&self`: yanking residency out from under
    /// concurrent readers would silently distort their hit/miss
    /// attribution, so the borrow checker is made to prove there are
    /// none.
    pub fn clear_buffer(&mut self) {
        self.store.reset_buffer();
    }

    /// Reset I/O counters and the buffer pool (before each measured
    /// query, per the paper's methodology) — the union of
    /// [`PprTree::reset_counters`] and [`PprTree::clear_buffer`].
    /// Counters and residency both live inside the store's sharded
    /// buffer, so this cannot drift from the per-shard accounting that
    /// [`PprTree::io_stats`] sums.
    pub fn reset_for_query(&mut self) {
        self.reset_counters();
        self.clear_buffer();
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Open a multi-update batch: snapshot the tree metadata and start
    /// an outer store transaction, so every [`PprTree::insert`] /
    /// [`PprTree::delete`] until [`PprTree::commit_batch`] can be undone
    /// as a unit by [`PprTree::rollback_batch`]. The per-update
    /// transactions inside fold into this one (see
    /// [`PageStore::begin_txn`]), so a batch costs one metadata snapshot
    /// up front instead of a page-log copy per update.
    ///
    /// If an update fails mid-batch, its own rollback already undoes the
    /// *entire* page log (depth-counted transactions cannot partially
    /// unwind) but only restores metadata to just before that update —
    /// the caller **must** then call `rollback_batch` to restore the
    /// batch-start metadata before using the tree again.
    ///
    /// # Panics
    /// If a batch is already open (caller bug).
    pub fn begin_batch(&mut self) {
        assert!(self.batch.is_none(), "batch already open");
        self.batch = Some(BatchSnapshot {
            roots: self.roots.clone(),
            now: self.now,
            alive_records: self.alive_records,
            total_posted: self.total_posted,
        });
        self.store.begin_txn();
    }

    /// Make every update since [`PprTree::begin_batch`] permanent and
    /// discard the undo log.
    ///
    /// # Panics
    /// If no batch is open, or an update inside the batch failed without
    /// a subsequent [`PprTree::rollback_batch`] — committing a
    /// half-rolled-back batch would persist the torn metadata.
    pub fn commit_batch(&mut self) {
        assert!(self.batch.is_some(), "no batch open");
        assert!(
            self.store.txn_depth() == 1,
            "an update inside this batch failed; only rollback_batch is valid now"
        );
        self.store.commit_txn();
        self.batch = None;
        self.debug_check();
    }

    /// Undo every update since [`PprTree::begin_batch`]: pages via the
    /// store's undo log, metadata (root log, clock, record counters)
    /// from the batch snapshot. Also the mandatory recovery step after
    /// an update error inside a batch (the pages are already rolled back
    /// by then; this re-aligns the metadata).
    ///
    /// # Panics
    /// If no batch is open (caller bug).
    pub fn rollback_batch(&mut self) {
        assert!(self.batch.is_some(), "no batch open");
        let Some(snap) = self.batch.take() else {
            return;
        };
        // No-op if a failed update already tore the txn down.
        self.store.rollback_txn();
        self.roots = snap.roots;
        self.now = snap.now;
        self.alive_records = snap.alive_records;
        self.total_posted = snap.total_posted;
        self.debug_check();
    }

    /// Whether a batch transaction is currently open.
    pub fn in_batch(&self) -> bool {
        self.batch.is_some()
    }

    /// Insert a record alive from `t` (until a matching
    /// [`PprTree::delete`]).
    ///
    /// # Errors
    /// A [`StorageError`] if the page store fails; the update is rolled
    /// back and the tree (pages, root log, clock, counters) is unchanged.
    ///
    /// # Panics
    /// If `t` precedes an earlier update (partial persistence) or the
    /// rectangle is the empty sentinel — both are caller bugs, not I/O
    /// conditions, and are rejected before any page is touched.
    pub fn insert(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), StorageError> {
        assert!(!rect.is_empty(), "cannot index an empty rectangle");
        assert!(
            t >= self.now,
            "updates must be time-ordered: {t} < {}",
            self.now
        );
        let roots_before = self.roots.clone();
        let counters_before = (self.now, self.alive_records, self.total_posted);
        self.store.begin_txn();
        match self.insert_inner(id, rect, t) {
            Ok(()) => {
                self.store.commit_txn();
                self.debug_check();
                Ok(())
            }
            Err(e) => {
                self.store.rollback_txn();
                self.roots = roots_before;
                (self.now, self.alive_records, self.total_posted) = counters_before;
                Err(e)
            }
        }
    }

    fn insert_inner(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), StorageError> {
        self.advance(t);
        if self.current_root().is_none() {
            let page = self.store.allocate()?;
            self.write_node(page, &PprNode::new(0))?;
            self.roots.push(RootSpan {
                interval: TimeInterval::open(t),
                page,
                level: 0,
            });
        }
        let path = self.descend_for_insert(&rect)?;
        let ops = Ops {
            kills: Vec::new(),
            expand: None,
            adds: vec![PprEntry::alive(rect, id, t)],
        };
        self.propagate(&path, ops, t)?;
        self.alive_records += 1;
        self.total_posted += 1;
        Ok(())
    }

    /// Logically delete the alive record `(id, rect)` at time `t`;
    /// `rect` must be exactly the rectangle the record was inserted with
    /// (it locates the leaf *and* disambiguates when several alive
    /// records share an id).
    ///
    /// # Errors
    /// [`DeleteError::NotFound`] if no alive record `(id, rect)` exists,
    /// or [`DeleteError::Storage`] if the page store failed mid-update;
    /// either way the tree is unchanged (a failed update neither advances
    /// time nor leaves partial page writes — storage failures roll back).
    ///
    /// # Panics
    /// If `t` precedes an earlier update (partial persistence).
    pub fn delete(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), DeleteError> {
        let roots_before = self.roots.clone();
        let counters_before = (self.now, self.alive_records, self.total_posted);
        self.store.begin_txn();
        match self.delete_inner(id, rect, t) {
            Ok(()) => {
                self.store.commit_txn();
                self.debug_check();
                Ok(())
            }
            Err(e) => {
                self.store.rollback_txn();
                self.roots = roots_before;
                (self.now, self.alive_records, self.total_posted) = counters_before;
                Err(e)
            }
        }
    }

    fn delete_inner(&mut self, id: u64, rect: Rect2, t: Time) -> Result<(), DeleteError> {
        let Some((path, idx)) = self.locate_alive(id, &rect)? else {
            return Err(DeleteError::NotFound { id, t });
        };
        self.advance(t);
        let ops = Ops {
            kills: vec![idx],
            expand: None,
            adds: Vec::new(),
        };
        self.propagate(&path, ops, t)?;
        self.alive_records -= 1;
        Ok(())
    }

    /// Debug builds sanity-check the structure after updates: every
    /// mutation while the index is small, then a sample (the current-view
    /// walk is linear in the live tree, so checking each of `n` updates
    /// would make test workloads quadratic).
    #[cfg(debug_assertions)]
    fn debug_check(&mut self) {
        self.debug_mutations += 1;
        if self.store.num_pages() <= 64 || self.debug_mutations.is_multiple_of(64) {
            if let Err(violations) = crate::check::validate_current(self) {
                let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
                // stilint::allow(no_panic, "debug-only tripwire; release builds skip the check and the typed API is check::validate")
                panic!(
                    "PPR-Tree invariants broken after update at t={}:\n{}",
                    self.now,
                    lines.join("\n")
                );
            }
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check(&mut self) {}

    fn advance(&mut self, t: Time) {
        assert!(
            t >= self.now,
            "updates must be time-ordered: {t} < {}",
            self.now
        );
        self.now = t;
    }

    /// Root span covering instant `t`, if any (for traversals layered on
    /// the tree, e.g. the kNN search in [`crate::knn`]).
    pub(crate) fn root_span_at(&self, t: Time) -> Option<RootSpan> {
        self.roots
            .iter()
            .rev()
            .find(|s| s.interval.contains(t))
            .copied()
    }

    /// Node read with I/O accounting, for sibling modules.
    pub(crate) fn read_node_pub(&self, page: PageId) -> Result<PprNode, StorageError> {
        self.read_node(page)
    }

    /// The structural parameters the tree was built with.
    pub fn params(&self) -> &PprParams {
        &self.params
    }

    /// Read-only page store access for [`crate::check`] (which fetches
    /// pages with `peek`, outside the I/O accounting).
    pub(crate) fn store_ref(&self) -> &PageStore {
        &self.store
    }

    /// Deliberately desynchronize the record counter (sanitizer tests).
    #[cfg(test)]
    pub(crate) fn corrupt_alive_records_for_test(&mut self, n: u64) {
        self.alive_records = n;
    }

    /// Overwrite a page with garbage (sanitizer tests).
    #[cfg(test)]
    pub(crate) fn corrupt_page_for_test(&mut self, page: PageId) {
        let junk = vec![0xFFu8; 64];
        let _ = self.store.write(page, &junk);
    }

    fn current_root(&self) -> Option<RootSpan> {
        self.roots.last().copied().filter(|s| s.interval.is_open())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Snapshot query: ids of records alive at `t` whose rectangle
    /// intersects `area`. Equivalent to querying the ephemeral R-Tree of
    /// time `t`.
    ///
    /// Append contract: matches are *appended* to `out`; the vector is
    /// never cleared here, so a caller can accumulate several queries
    /// into one buffer (all three tree backends share this contract).
    ///
    /// Returns the [`QueryStats`] delta for this call: the store writes
    /// each read's cost into this call's [`ReadProbe`] as it happens
    /// (mirroring the global counters increment for increment), so
    /// summing the returned deltas over a batch reproduces the global
    /// [`IoStats`] delta exactly — even when other threads query the
    /// same tree concurrently.
    ///
    /// Shared: `&self`, so any number of threads may query one tree at
    /// once (mutation keeps `&mut self`, which the borrow checker
    /// prevents from overlapping with in-flight queries).
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries. The tree is
    /// unchanged (queries are read-only), but `out` may already hold the
    /// matches found before the failing read.
    pub fn query_snapshot(
        &self,
        area: &Rect2,
        t: Time,
        out: &mut Vec<u64>,
    ) -> Result<QueryStats, StorageError> {
        let mut stats = QueryStats::new();
        let mut probe = ReadProbe::new();
        let mut failed = None;
        if let Some(span) = self.root_span_at(t) {
            let mut scratch = self.scratch.take();
            let stack = &mut scratch.snap_stack;
            stack.clear();
            stack.push(span.page);
            while let Some(page) = stack.pop() {
                let node = match self.read_node_probed(page, &mut probe) {
                    Ok(n) => n,
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                };
                stats.nodes_visited += 1;
                for e in &node.entries {
                    stats.entries_scanned += 1;
                    if e.alive_at(t) && e.rect.intersects(area) {
                        if node.is_leaf() {
                            out.push(e.ptr);
                            stats.results += 1;
                        } else {
                            stack.push(e.child_page());
                        }
                    }
                }
            }
            // The scratch goes back even on the error path: capacity is
            // reusable, and an abandoned traversal must not poison the
            // next query.
            self.scratch.put(scratch);
        }
        if let Some(e) = failed {
            return Err(e);
        }
        apply_probe(&mut stats, &probe);
        Ok(stats)
    }

    /// Interval query: ids of records alive at any instant of `range`
    /// whose rectangle intersects `area`, de-duplicated (a record copied
    /// across version splits, or an object split into consecutive pieces
    /// under the same id, is reported once).
    ///
    /// The query range is *clipped* to each directory entry's lifetime on
    /// the way down: a closed node is authoritative only for its own time
    /// span — entries inside it keep their open `deletion` even when the
    /// record was deleted after the node was copied, so matching them
    /// against the unclipped range would resurrect dead records.
    ///
    /// Append contract: matches are *appended* to `out`; the vector is
    /// never cleared here, so a caller can accumulate several queries
    /// into one buffer (all three tree backends share this contract).
    /// Dedup applies to this call only — ids already in `out` from
    /// earlier queries may be appended again.
    ///
    /// Returns the [`QueryStats`] delta for this call (see
    /// [`PprTree::query_snapshot`]).
    ///
    /// Shared: `&self` — see [`PprTree::query_snapshot`].
    ///
    /// # Errors
    /// A [`StorageError`] if a page read fails after retries. The tree is
    /// unchanged, and nothing is appended to `out` for this call (dedup
    /// happens before results are released).
    pub fn query_interval(
        &self,
        area: &Rect2,
        range: &TimeInterval,
        out: &mut Vec<u64>,
    ) -> Result<QueryStats, StorageError> {
        let mut stats = QueryStats::new();
        let mut probe = ReadProbe::new();
        let mut scratch = self.scratch.take();
        let QueryScratch {
            seen, spans, stack, ..
        } = &mut scratch;
        seen.clear();
        spans.clear();
        stack.clear();
        spans.extend(
            self.roots
                .iter()
                .filter(|s| s.interval.overlaps(range))
                .copied(),
        );
        let mut failed = None;
        let mut ra_pages: Vec<PageId> = Vec::new();
        'roots: for span in spans.iter() {
            let Some(root_range) = span.interval.intersect(range) else {
                continue;
            };
            stack.push((span.page, root_range));
            while let Some((page, clipped)) = stack.pop() {
                let node = match self.read_node_probed(page, &mut probe) {
                    Ok(n) => n,
                    Err(e) => {
                        failed = Some(e);
                        break 'roots;
                    }
                };
                stats.nodes_visited += 1;
                let stack_base = stack.len();
                for e in &node.entries {
                    stats.entries_scanned += 1;
                    let Some(sub) = e.lifetime().intersect(&clipped) else {
                        continue;
                    };
                    if !e.rect.intersects(area) {
                        continue;
                    }
                    if node.is_leaf() {
                        seen.insert(e.ptr);
                    } else {
                        stack.push((e.child_page(), sub));
                    }
                }
                // Readahead heuristic: every child of this directory node
                // matched, so every one of them *will* be read — fetch the
                // batch now under one store lock. Partially-matched nodes
                // are left alone (prefetching unvisited siblings would be
                // guaranteed waste).
                if self.readahead && !node.is_leaf() && !node.entries.is_empty() {
                    let pushed = stack.get(stack_base..).unwrap_or(&[]);
                    if pushed.len() == node.entries.len() {
                        ra_pages.clear();
                        ra_pages.extend(pushed.iter().map(|(p, _)| *p));
                        if let Err(e) = self.store.prefetch(&ra_pages, &mut probe) {
                            failed = Some(e);
                            break 'roots;
                        }
                    }
                }
            }
        }
        if failed.is_none() {
            stats.dedup_candidates = seen.len() as u64;
            stats.results = stats.dedup_candidates;
            out.extend(seen.drain());
        }
        self.scratch.put(scratch);
        if let Some(e) = failed {
            return Err(e);
        }
        apply_probe(&mut stats, &probe);
        Ok(stats)
    }

    // ------------------------------------------------------------------
    // Structure maintenance
    // ------------------------------------------------------------------

    /// Node read with accounting but no per-call attribution (mutation
    /// paths report their cost via global-counter deltas, which exclusive
    /// `&mut self` access keeps race-free).
    fn read_node(&self, page: PageId) -> Result<PprNode, StorageError> {
        self.read_node_probed(page, &mut ReadProbe::new())
    }

    /// Node read attributing its I/O to `probe` (query paths).
    fn read_node_probed(
        &self,
        page: PageId,
        probe: &mut ReadProbe,
    ) -> Result<PprNode, StorageError> {
        let raw = self.store.read(page, probe)?;
        PprNode::decode(&raw).map_err(|_| StorageError::Corrupt {
            page,
            reason: CorruptReason::Decode,
        })
    }

    fn write_node(&mut self, page: PageId, node: &PprNode) -> Result<(), StorageError> {
        let mut buf = Page::zeroed();
        node.encode(&mut buf);
        self.store.write(page, &buf.bytes()[..])
    }

    /// Choose-subtree descent for insertion: among *alive* directory
    /// entries pick minimum area enlargement (ties: minimum area).
    fn descend_for_insert(&mut self, rect: &Rect2) -> Result<Path, StorageError> {
        // stilint::allow(no_panic, "insert creates a root before descending, so the root log is nonempty here")
        let root = self.current_root().expect("insert ensured a root");
        let mut page = root.page;
        let mut pages = vec![page];
        let mut entry_idx = Vec::new();
        loop {
            let node = self.read_node(page)?;
            if node.is_leaf() {
                return Ok(Path { pages, entry_idx });
            }
            let mut best: Option<(f64, f64, usize)> = None;
            for (i, e) in node.entries.iter().enumerate() {
                if !e.is_alive() {
                    continue;
                }
                let key = (e.rect.enlargement(rect), e.rect.area());
                if best.is_none_or(|(g, a, _)| (key.0, key.1) < (g, a)) {
                    best = Some((key.0, key.1, i));
                }
            }
            // stilint::allow(no_panic, "the weak version condition keeps every reachable directory node at >= D alive children; check::validate reports EmptyDirectory if this is ever violated")
            let (_, _, idx) = best.expect("alive directory node has an alive child");
            entry_idx.push(idx);
            page = node.entries[idx].child_page();
            pages.push(page);
        }
    }

    /// DFS for the leaf holding the alive record `id` whose rect equals
    /// (is contained in) `rect`; returns the path to that leaf plus the
    /// record's entry index within it.
    fn locate_alive(
        &mut self,
        id: u64,
        rect: &Rect2,
    ) -> Result<Option<(Path, usize)>, StorageError> {
        let Some(root) = self.current_root() else {
            return Ok(None);
        };
        let mut path = Path {
            pages: vec![root.page],
            entry_idx: Vec::new(),
        };
        Ok(self
            .locate_rec(root.page, id, rect, &mut path)?
            .map(|idx| (path, idx)))
    }

    fn locate_rec(
        &mut self,
        page: PageId,
        id: u64,
        rect: &Rect2,
        path: &mut Path,
    ) -> Result<Option<usize>, StorageError> {
        let node = self.read_node(page)?;
        if node.is_leaf() {
            return Ok(node
                .entries
                .iter()
                .position(|e| e.is_alive() && e.ptr == id && e.rect == *rect));
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.is_alive() && e.rect.contains_rect(rect) {
                path.entry_idx.push(i);
                path.pages.push(e.child_page());
                if let Some(idx) = self.locate_rec(e.child_page(), id, rect, path)? {
                    return Ok(Some(idx));
                }
                path.entry_idx.pop();
                path.pages.pop();
            }
        }
        Ok(None)
    }

    /// Apply `ops` to the node at the end of `path` and walk structural
    /// consequences up to the root.
    fn propagate(&mut self, path: &Path, mut ops: Ops, t: Time) -> Result<(), StorageError> {
        let mut i = path.pages.len() - 1;
        loop {
            let page = path.pages[i];
            let parent = if i > 0 {
                Some(ParentCtx {
                    page: path.pages[i - 1],
                    entry_idx: path.entry_idx[i - 1],
                })
            } else {
                None
            };
            let up = self.apply_ops(page, ops, t, parent.as_ref())?;
            match up {
                UpOps::Done => return Ok(()),
                UpOps::Expand(rect) => {
                    if i == 0 {
                        return Ok(());
                    }
                    ops = Ops {
                        kills: Vec::new(),
                        expand: Some((path.entry_idx[i - 1], rect)),
                        adds: Vec::new(),
                    };
                }
                UpOps::Replace { kill_sibling, adds } => {
                    if i == 0 {
                        self.replace_root(adds, t)?;
                        return Ok(());
                    }
                    let mut kills = vec![path.entry_idx[i - 1]];
                    if let Some(s) = kill_sibling {
                        kills.push(s);
                    }
                    ops = Ops {
                        kills,
                        expand: None,
                        adds,
                    };
                }
            }
            i -= 1;
        }
    }

    /// Apply kills/expands/adds to one node; version-split when the node
    /// is full or (for non-roots) the weak version condition breaks.
    fn apply_ops(
        &mut self,
        page: PageId,
        ops: Ops,
        t: Time,
        parent: Option<&ParentCtx>,
    ) -> Result<UpOps, StorageError> {
        let mut node = self.read_node(page)?;
        for &k in &ops.kills {
            debug_assert!(node.entries[k].is_alive(), "killing a dead entry");
            node.entries[k].deletion = t;
        }
        if let Some((idx, rect)) = ops.expand {
            node.entries[idx].rect.expand(&rect);
        }

        if node.entries.len() + ops.adds.len() <= self.params.max_entries {
            // Fits: apply in place.
            let mut grow = ops.expand.map(|(_, r)| r).unwrap_or(Rect2::EMPTY);
            for e in &ops.adds {
                grow.expand(&e.rect);
            }
            let alive = node.alive_count() + ops.adds.len();
            let is_root = parent.is_none();
            if !is_root && alive < self.params.weak_min() {
                // Weak version underflow: close this node and copy the
                // survivors (possibly merging with a sibling). The adds
                // must NOT be written into the closed node — it covers
                // history strictly before `t`, and a never-deleted copy
                // left behind would resurface in interval queries that
                // span the split.
                self.write_node(page, &node)?;
                let mut with_adds = node.clone();
                with_adds.entries.extend(ops.adds);
                return self.version_split(&with_adds, t, parent);
            }
            node.entries.extend(ops.adds);
            if is_root && !node.is_leaf() && alive == 0 {
                // Directory root lost its last child: close the current
                // evolution; a future insert starts a fresh root.
                self.write_node(page, &node)?;
                self.close_current_root(t);
                return Ok(UpOps::Done);
            }
            self.write_node(page, &node)?;
            if grow.is_empty() {
                return Ok(UpOps::Done);
            }
            return Ok(UpOps::Expand(grow));
        }

        // Node is full: persist the kills/expands historically, then
        // version-split with the pending adds folded into the copies.
        let adds = ops.adds;
        self.write_node(page, &node)?;
        let mut with_adds = node.clone();
        with_adds.entries.extend(adds);
        self.version_split(&with_adds, t, parent)
    }

    /// Copy the alive entries of `node` into fresh node(s) at time `t`,
    /// applying the strong version overflow / underflow rules. Returns
    /// the replacement directive for the parent.
    fn version_split(
        &mut self,
        node: &PprNode,
        t: Time,
        parent: Option<&ParentCtx>,
    ) -> Result<UpOps, StorageError> {
        let mut copies: Vec<PprEntry> = node
            .entries
            .iter()
            .filter(|e| e.is_alive())
            .map(|e| PprEntry { insertion: t, ..*e })
            .collect();

        if copies.is_empty() {
            return Ok(UpOps::Replace {
                kill_sibling: None,
                adds: Vec::new(),
            });
        }

        let svu = self.params.strong_underflow();
        let svo = self.params.strong_overflow();
        let mut kill_sibling = None;

        if copies.len() < svu {
            // Strong version underflow: merge with a version-split
            // sibling when one exists.
            if let Some(ctx) = parent {
                if let Some((sib_idx, sib_page)) = self.pick_sibling(ctx, node)? {
                    let sib = self.read_node(sib_page)?;
                    debug_assert_eq!(sib.level, node.level, "merge across levels");
                    copies.extend(
                        sib.entries
                            .iter()
                            .filter(|e| e.is_alive())
                            .map(|e| PprEntry { insertion: t, ..*e }),
                    );
                    kill_sibling = Some(sib_idx);
                }
                // No alive sibling: fall through and create the sparse
                // copy anyway — the weak condition is best-effort when the
                // parent has a single alive child.
            }
        }

        let groups: Vec<Vec<PprEntry>> = if copies.len() > svo {
            let (g1, g2) = key_split(copies, svu);
            vec![g1, g2]
        } else {
            vec![copies]
        };

        let mut adds = Vec::with_capacity(groups.len());
        for g in groups {
            assert!(
                g.len() <= self.params.max_entries,
                "version split overflowed a node"
            );
            let new_node = PprNode {
                level: node.level,
                entries: g,
            };
            let new_page = self.store.allocate()?;
            let rect = new_node.full_mbr();
            self.write_node(new_page, &new_node)?;
            adds.push(PprEntry::alive(rect, u64::from(new_page), t));
        }
        Ok(UpOps::Replace { kill_sibling, adds })
    }

    /// Choose an alive sibling of the entry `ctx.entry_idx` in the parent,
    /// preferring the one whose MBR is closest (smallest union area) to
    /// the underflowing node.
    fn pick_sibling(
        &mut self,
        ctx: &ParentCtx,
        node: &PprNode,
    ) -> Result<Option<(usize, PageId)>, StorageError> {
        let parent = self.read_node(ctx.page)?;
        let my_rect = node.alive_mbr();
        let mut best: Option<(f64, usize, PageId)> = None;
        for (i, e) in parent.entries.iter().enumerate() {
            if i == ctx.entry_idx || !e.is_alive() {
                continue;
            }
            // Any alive sibling is safe: the combined copies are at most
            // (svu − 1) + B entries, and when that exceeds svo the key
            // split's min-fill bound (svu each, checked by
            // `PprParams::validate`) caps each half below B.
            let key = if my_rect.is_empty() {
                e.rect.area()
            } else {
                my_rect.union(&e.rect).area()
            };
            if best.is_none_or(|(b, _, _)| key < b) {
                best = Some((key, i, e.child_page()));
            }
        }
        Ok(best.map(|(_, i, p)| (i, p)))
    }

    /// Install replacements for a version-split root.
    fn replace_root(&mut self, adds: Vec<PprEntry>, t: Time) -> Result<(), StorageError> {
        // stilint::allow(no_panic, "only called from propagate while the current root overflows, so a current root exists")
        let old = self.current_root().expect("a root was being split");
        self.close_current_root(t);
        match adds.len() {
            0 => {}
            1 => {
                self.roots.push(RootSpan {
                    interval: TimeInterval::open(t),
                    page: adds[0].child_page(),
                    level: old.level,
                });
            }
            2 => {
                let new_root = PprNode {
                    level: old.level + 1,
                    entries: adds,
                };
                let page = self.store.allocate()?;
                self.write_node(page, &new_root)?;
                self.roots.push(RootSpan {
                    interval: TimeInterval::open(t),
                    page,
                    level: old.level + 1,
                });
            }
            // stilint::allow(no_panic, "apply_version_split emits at most two replacement nodes (copy + optional key-split sibling)")
            n => unreachable!("version split produced {n} nodes"),
        }
        Ok(())
    }

    fn close_current_root(&mut self, t: Time) {
        // stilint::allow(no_panic, "callers close the root only after current_root() returned Some")
        let span = self.roots.last_mut().expect("root exists");
        debug_assert!(span.interval.is_open());
        span.interval.end = t;
        if span.interval.is_empty() {
            // Root that was opened and closed at the same instant covers
            // no queryable time; drop it from the log.
            self.roots.pop();
        }
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Save the whole index (pages + parameters + root log) to a file.
    ///
    /// The save is atomic and epoch-stamped: the image is written to a
    /// temp sibling, synced, then renamed over `path`, so a crash at any
    /// point leaves either the previous complete file or the new one
    /// (see [`sti_storage::persist`]).
    pub fn save_to_file(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let meta_u32 = |n: usize, what: &str| {
            u32::try_from(n).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("{what} too large for the index file format: {n}"),
                )
            })
        };
        let mut meta = vec![0u8; 1 + 4 + 8 * 3 + 4 + 4 + 8 + 8 + 4 + self.roots.len() * 16];
        {
            let mut w = sti_storage::ByteWriter::new(&mut meta);
            w.put_u8(b'P'); // backend tag: partially persistent R-Tree
            w.put_u32(meta_u32(self.params.max_entries, "max_entries")?);
            w.put_f64(self.params.p_version);
            w.put_f64(self.params.p_svo);
            w.put_f64(self.params.p_svu);
            w.put_u32(meta_u32(self.params.buffer_pages, "buffer_pages")?);
            w.put_u32(self.now);
            w.put_u64(self.alive_records);
            w.put_u64(self.total_posted);
            w.put_u32(meta_u32(self.roots.len(), "root log length")?);
            for r in &self.roots {
                w.put_u32(r.interval.start);
                w.put_u32(r.interval.end);
                w.put_u32(r.page);
                w.put_u32(r.level);
            }
        }
        self.store.save_to(path, &meta)
    }

    /// Load an index previously written by [`PprTree::save_to_file`].
    ///
    /// Fails closed: any checksum, magic, epoch or structural mismatch in
    /// the file is a typed error before a single page is trusted.
    pub fn open_file(path: &std::path::Path) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let bad = |m: &'static str| Error::new(ErrorKind::InvalidData, m);
        // Buffer capacity is re-read from the metadata below; load with a
        // placeholder first.
        let (mut store, meta) = PageStore::load_from(path, 0)?;
        let mut r = sti_storage::ByteReader::new(&meta);
        match r.get_u8().map_err(|_| bad("backend tag"))? {
            b'P' => {}
            b'R' => return Err(bad("this file holds an R*-Tree, not a PPR-Tree")),
            _ => return Err(bad("unknown index backend tag")),
        }
        let mut take = |what: &'static str| r.get_u32().map_err(move |_| bad(what));
        let max_entries = take("max_entries")? as usize;
        let mut rf = |what: &'static str| r.get_f64().map_err(move |_| bad(what));
        let p_version = rf("p_version")?;
        let p_svo = rf("p_svo")?;
        let p_svu = rf("p_svu")?;
        let params = PprParams {
            max_entries,
            p_version,
            p_svo,
            p_svu,
            buffer_pages: r.get_u32().map_err(|_| bad("buffer_pages"))? as usize,
        };
        params.validate();
        store.set_buffer_capacity(params.buffer_pages);
        let now = r.get_u32().map_err(|_| bad("now"))?;
        let alive_records = r.get_u64().map_err(|_| bad("alive"))?;
        let total_posted = r.get_u64().map_err(|_| bad("total"))?;
        let count = r.get_u32().map_err(|_| bad("root count"))? as usize;
        let mut roots = Vec::with_capacity(count);
        for _ in 0..count {
            let start = r.get_u32().map_err(|_| bad("root start"))?;
            let end = r.get_u32().map_err(|_| bad("root end"))?;
            let page = r.get_u32().map_err(|_| bad("root page"))?;
            let level = r.get_u32().map_err(|_| bad("root level"))?;
            if end < start || (page as usize) >= store.num_pages() {
                return Err(bad("corrupt root span"));
            }
            roots.push(RootSpan {
                interval: TimeInterval { start, end },
                page,
                level,
            });
        }
        Ok(Self {
            store,
            params,
            roots,
            now,
            alive_records,
            total_posted,
            scratch: ScratchPool::new(),
            readahead: false,
            batch: None,
            #[cfg(debug_assertions)]
            debug_mutations: 0,
        })
    }

    /// Panic unless every structural invariant holds (test aid).
    ///
    /// Delegates to [`crate::check::validate`], which walks the whole
    /// history — root log, MBR containment, lifetime nesting, weak
    /// version condition, record accounting — and returns typed
    /// [`crate::check::Violation`]s; this wrapper only turns them into a
    /// panic for `assert!`-style test call sites.
    #[doc(hidden)]
    pub fn validate(&self) {
        if let Err(violations) = crate::check::validate(self) {
            let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            // stilint::allow(no_panic, "test-only wrapper; the typed API is check::validate")
            panic!("PPR-Tree invariant check failed:\n{}", lines.join("\n"));
        }
    }
}

/// Root-to-leaf path recorded during descent.
struct Path {
    /// Node pages, root first.
    pages: Vec<PageId>,
    /// `entry_idx[i]` = index within `pages[i]` of the entry pointing to
    /// `pages[i + 1]`.
    entry_idx: Vec<usize>,
}

/// Parent context for sibling selection during merges.
struct ParentCtx {
    page: PageId,
    entry_idx: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sti_storage::{FaultKind, FaultPlan, FaultyBackend, MemBackend, ScheduledFault};

    fn small_params() -> PprParams {
        // B = 10: D = ceil(2.2) = 3, svo = 8, svu = 4; svo+1 ≥ 2·svu ✓
        PprParams {
            max_entries: 10,
            p_version: 0.22,
            p_svo: 0.8,
            p_svu: 0.4,
            buffer_pages: 4,
        }
    }

    fn rect(x: f64, y: f64) -> Rect2 {
        Rect2::from_bounds(x, y, x + 0.02, y + 0.02)
    }

    /// Naive shadow structure for cross-checking queries.
    struct Shadow {
        records: Vec<(u64, Rect2, Time, Time)>,
    }

    impl Shadow {
        fn snapshot(&self, area: &Rect2, t: Time) -> Vec<u64> {
            let mut v: Vec<u64> = self
                .records
                .iter()
                .filter(|(_, r, s, e)| *s <= t && t < *e && r.intersects(area))
                .map(|&(id, ..)| id)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        }

        fn interval(&self, area: &Rect2, range: &TimeInterval) -> Vec<u64> {
            let mut v: Vec<u64> = self
                .records
                .iter()
                .filter(|(_, r, s, e)| {
                    TimeInterval::new(*s, *e).overlaps(range) && r.intersects(area)
                })
                .map(|&(id, ..)| id)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        }
    }

    #[test]
    fn empty_tree_answers_nothing() {
        let t = PprTree::new(small_params());
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        assert!(out.is_empty());
        t.query_interval(&Rect2::UNIT, &TimeInterval::new(0, 100), &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(t.roots().len(), 0);
    }

    #[test]
    fn single_record_lifecycle() {
        let mut t = PprTree::new(small_params());
        let r = rect(0.5, 0.5);
        t.insert(1, r, 10).unwrap();
        t.delete(1, r, 20).unwrap();
        assert_eq!(t.alive_records(), 0);
        assert_eq!(t.total_records(), 1);

        let mut out = Vec::new();
        t.query_snapshot(&r, 15, &mut out).unwrap();
        assert_eq!(out, vec![1]);
        out.clear();
        t.query_snapshot(&r, 9, &mut out).unwrap();
        assert!(out.is_empty());
        out.clear();
        t.query_snapshot(&r, 20, &mut out).unwrap(); // half-open lifetime
        assert!(out.is_empty());
        out.clear();
        t.query_interval(&r, &TimeInterval::new(0, 100), &mut out)
            .unwrap();
        assert_eq!(out, vec![1]);
    }

    /// Build a deterministic tree with inserts and deletes for the
    /// interleaving / accounting tests below.
    fn populated_tree() -> PprTree {
        let mut t = PprTree::new(small_params());
        for i in 0..120u32 {
            t.insert(
                u64::from(i),
                rect(0.008 * f64::from(i % 100), 0.009 * f64::from(i % 90)),
                i,
            )
            .unwrap();
        }
        for i in (0..60u32).step_by(3) {
            t.delete(
                u64::from(i),
                rect(0.008 * f64::from(i % 100), 0.009 * f64::from(i % 90)),
                120 + i,
            )
            .unwrap();
        }
        t
    }

    /// Satellite regression: scratch reuse must not leak state between
    /// queries. Interleaving snapshot and interval queries (and running
    /// each twice) returns exactly what a fresh tree returns per query.
    #[test]
    fn interleaved_queries_match_fresh_queries() {
        let areas = [
            Rect2::UNIT,
            Rect2::from_bounds(0.0, 0.0, 0.3, 0.3),
            Rect2::from_bounds(0.2, 0.1, 0.7, 0.8),
            Rect2::from_bounds(0.9, 0.9, 1.0, 1.0),
        ];
        let times: [Time; 3] = [5, 60, 150];
        let ranges = [
            TimeInterval::new(0, 40),
            TimeInterval::new(50, 130),
            TimeInterval::new(0, 500),
        ];

        // Expected answers, each from a fresh tree (no shared scratch).
        let mut expected_snap = Vec::new();
        for area in &areas {
            for &t in &times {
                let fresh = populated_tree();
                let mut out = Vec::new();
                fresh.query_snapshot(area, t, &mut out).unwrap();
                out.sort_unstable();
                expected_snap.push(out);
            }
        }
        let mut expected_int = Vec::new();
        for area in &areas {
            for range in &ranges {
                let fresh = populated_tree();
                let mut out = Vec::new();
                fresh.query_interval(area, range, &mut out).unwrap();
                out.sort_unstable();
                expected_int.push(out);
            }
        }

        // One tree, queries interleaved and repeated.
        let tree = populated_tree();
        for round in 0..2 {
            let mut si = 0;
            let mut ii = 0;
            for area in &areas {
                for &t in &times {
                    let mut out = Vec::new();
                    tree.query_snapshot(area, t, &mut out).unwrap();
                    out.sort_unstable();
                    assert_eq!(out, expected_snap[si], "snapshot {si} round {round}");
                    si += 1;
                    // Interleave an interval query between snapshots.
                    if ii < expected_int.len() {
                        let mut out = Vec::new();
                        tree.query_interval(
                            &areas[ii % areas.len()],
                            &ranges[ii % ranges.len()],
                            &mut out,
                        )
                        .unwrap();
                        out.sort_unstable();
                        let fresh = populated_tree();
                        let mut want = Vec::new();
                        fresh
                            .query_interval(
                                &areas[ii % areas.len()],
                                &ranges[ii % ranges.len()],
                                &mut want,
                            )
                            .unwrap();
                        want.sort_unstable();
                        assert_eq!(out, want, "interleaved interval {ii} round {round}");
                        ii += 1;
                    }
                }
            }
        }
    }

    /// Queries append to `out` without clearing it.
    #[test]
    fn queries_append_without_clearing() {
        let t = populated_tree();
        let mut out = vec![u64::MAX];
        t.query_snapshot(&Rect2::UNIT, 50, &mut out).unwrap();
        assert_eq!(out[0], u64::MAX);
        let before = out.len();
        t.query_interval(&Rect2::UNIT, &TimeInterval::new(0, 20), &mut out)
            .unwrap();
        assert!(out.len() > before);
        assert_eq!(out[0], u64::MAX);
    }

    /// Per-query deltas reported by `QueryStats` reconcile with the
    /// global store counters, and traversal tallies are populated.
    #[test]
    fn query_stats_reconcile_with_global_counters() {
        let t = populated_tree();
        let base = t.io_stats();
        let mut sum = QueryStats::new();
        let mut out = Vec::new();
        for i in 0..10u32 {
            let area = Rect2::from_bounds(0.0, 0.0, 0.1 * f64::from(i % 9), 1.0);
            let s1 = t.query_snapshot(&area, 30 + i, &mut out).unwrap();
            let s2 = t
                .query_interval(&area, &TimeInterval::new(i, 90 + i), &mut out)
                .unwrap();
            assert_eq!(
                s1.results as usize + s2.results as usize + sum.results as usize,
                out.len()
            );
            assert!(s1.nodes_visited >= 1);
            assert!(s1.entries_scanned >= s1.results);
            assert_eq!(s2.dedup_candidates, s2.results);
            assert_eq!(s1.io_faults_injected, 0, "no fault injector attached");
            sum += s1;
            sum += s2;
        }
        let now = t.io_stats();
        assert_eq!(sum.disk_reads, now.reads - base.reads);
        assert_eq!(sum.buffer_hits, now.buffer_hits - base.buffer_hits);
        assert_eq!(sum.disk_writes, now.writes - base.writes);
        assert_eq!(sum.disk_writes, 0, "queries are read-only");
        assert_eq!(sum.io_retries, 0, "no faults, no retries");
        assert_eq!(sum.checksum_failures, 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut t = PprTree::new(small_params());
        t.insert(1, rect(0.1, 0.1), 10).unwrap();
        let _ = t.insert(2, rect(0.2, 0.2), 5);
    }

    #[test]
    fn deleting_missing_record_is_an_error_and_leaves_tree_intact() {
        let mut t = PprTree::new(small_params());
        t.insert(1, rect(0.1, 0.1), 10).unwrap();
        assert_eq!(
            t.delete(99, rect(0.1, 0.1), 11),
            Err(DeleteError::NotFound { id: 99, t: 11 })
        );
        // Wrong rectangle is also not found, and the real record stays.
        assert!(t.delete(1, rect(0.5, 0.5), 11).is_err());
        assert_eq!(t.alive_records(), 1);
        t.delete(1, rect(0.1, 0.1), 11).unwrap();
        assert_eq!(t.alive_records(), 0);
    }

    #[test]
    fn version_split_preserves_history() {
        // Fill one leaf beyond capacity; the old state must stay
        // queryable at old timestamps.
        let mut t = PprTree::new(small_params());
        for i in 0..30u64 {
            t.insert(i, rect(0.01 * i as f64, 0.0), i as Time).unwrap();
        }
        t.validate();
        let mut out = Vec::new();
        // At time 5, exactly records 0..=5 are alive.
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        out.sort_unstable();
        assert_eq!(out, (0..=5).collect::<Vec<u64>>());
        // At time 29 all 30 are alive.
        out.clear();
        t.query_snapshot(&Rect2::UNIT, 29, &mut out).unwrap();
        assert_eq!(out.len(), 30);
    }

    #[test]
    fn mass_deletion_triggers_weak_underflow_handling() {
        let mut t = PprTree::new(small_params());
        for i in 0..40u64 {
            t.insert(i, rect(0.02 * (i % 20) as f64, 0.1 * (i / 20) as f64), 0)
                .unwrap();
        }
        // Delete most of them, forcing weak underflows and merges.
        for i in 0..36u64 {
            t.delete(
                i,
                rect(0.02 * (i % 20) as f64, 0.1 * (i / 20) as f64),
                10 + i as Time,
            )
            .unwrap();
        }
        t.validate();
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 60, &mut out).unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![36, 37, 38, 39]);
        // History intact: at t=5 all 40 alive.
        out.clear();
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut t = PprTree::new(small_params());
        for i in 0..8u64 {
            t.insert(i, rect(0.1 * i as f64, 0.0), 0).unwrap();
        }
        for i in 0..8u64 {
            t.delete(i, rect(0.1 * i as f64, 0.0), 10).unwrap();
        }
        assert_eq!(t.alive_records(), 0);
        // New evolution after a gap.
        t.insert(100, rect(0.5, 0.5), 50).unwrap();
        t.validate();
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 30, &mut out).unwrap();
        assert!(out.is_empty(), "gap between evolutions must be empty");
        out.clear();
        t.query_snapshot(&Rect2::UNIT, 50, &mut out).unwrap();
        assert_eq!(out, vec![100]);
        out.clear();
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn interval_query_deduplicates_copies() {
        let mut t = PprTree::new(small_params());
        // One long-lived record that will be copied by version splits
        // caused by churning neighbors.
        let target = rect(0.5, 0.5);
        t.insert(999, target, 0).unwrap();
        for round in 0u64..20 {
            let tt = 1 + round as Time * 2;
            for j in 0..5u64 {
                t.insert(round * 10 + j, rect(0.01 * j as f64, 0.9), tt)
                    .unwrap();
            }
            for j in 0..5u64 {
                t.delete(round * 10 + j, rect(0.01 * j as f64, 0.9), tt + 1)
                    .unwrap();
            }
        }
        t.validate();
        let mut out = Vec::new();
        t.query_interval(&target, &TimeInterval::new(0, 100), &mut out)
            .unwrap();
        assert_eq!(
            out,
            vec![999],
            "the surviving record is reported exactly once"
        );
    }

    #[test]
    fn randomized_against_shadow() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut tree = PprTree::new(small_params());
        let mut shadow = Shadow {
            records: Vec::new(),
        };
        let mut alive: Vec<(u64, Rect2)> = Vec::new();
        let mut next_id = 0u64;

        for t in 0..300u32 {
            // A few births.
            for _ in 0..rng.random_range(0..4) {
                let r = rect(rng.random::<f64>() * 0.9, rng.random::<f64>() * 0.9);
                tree.insert(next_id, r, t).unwrap();
                shadow.records.push((next_id, r, t, TimeInterval::OPEN_END));
                alive.push((next_id, r));
                next_id += 1;
            }
            // A few deaths.
            for _ in 0..rng.random_range(0..3) {
                if alive.is_empty() {
                    break;
                }
                let k = rng.random_range(0..alive.len());
                let (id, r) = alive.swap_remove(k);
                tree.delete(id, r, t).unwrap();
                let rec = shadow
                    .records
                    .iter_mut()
                    .find(|(i, ..)| *i == id)
                    .expect("exists");
                rec.3 = t;
            }
        }
        tree.validate();

        // Snapshot checks across the whole evolution.
        for t in (0..300).step_by(13) {
            let area = Rect2::from_bounds(0.2, 0.2, 0.7, 0.7);
            let mut got = Vec::new();
            tree.query_snapshot(&area, t, &mut got).unwrap();
            got.sort_unstable();
            assert_eq!(got, shadow.snapshot(&area, t), "snapshot at {t}");
        }
        // Interval checks.
        for start in (0..280).step_by(31) {
            let range = TimeInterval::new(start, start + 17);
            let area = Rect2::from_bounds(0.1, 0.1, 0.6, 0.8);
            let mut got = Vec::new();
            tree.query_interval(&area, &range, &mut got).unwrap();
            got.sort_unstable();
            assert_eq!(got, shadow.interval(&area, &range), "interval at {range}");
        }
    }

    #[test]
    fn snapshot_io_scales_with_alive_not_history() {
        // Insert 60 churning generations; at any instant only ~10 alive.
        let mut t = PprTree::new(small_params());
        let mut clock: Time = 0;
        for gen in 0..60u64 {
            for j in 0..10u64 {
                t.insert(gen * 100 + j, rect(0.05 * j as f64, 0.3), clock)
                    .unwrap();
            }
            clock += 5;
            for j in 0..10u64 {
                t.delete(gen * 100 + j, rect(0.05 * j as f64, 0.3), clock)
                    .unwrap();
            }
        }
        let pages = t.num_pages();
        assert!(pages > 30, "history should occupy many pages, got {pages}");
        t.reset_for_query();
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 7, &mut out).unwrap();
        let io = t.io_stats().reads;
        assert_eq!(out.len(), 10);
        assert!(
            io <= 8,
            "snapshot must touch only the ephemeral tree of its instant ({io} reads, {pages} pages)"
        );
    }

    #[test]
    fn roots_partition_time() {
        let mut t = PprTree::new(small_params());
        for i in 0..200u64 {
            t.insert(i, rect(0.004 * i as f64, 0.004 * i as f64), i as Time)
                .unwrap();
        }
        let roots = t.roots();
        assert!(!roots.is_empty());
        for w in roots.windows(2) {
            assert_eq!(
                w[0].interval.end, w[1].interval.start,
                "root spans must be consecutive"
            );
        }
        assert!(roots.last().expect("nonempty").interval.is_open());
    }

    /// A permanent write fault mid-insert rolls the whole update back:
    /// pages, root log, clock and counters all keep their prior values,
    /// and the structure still validates.
    #[test]
    fn failed_insert_rolls_back_completely() {
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 40,
            kind: FaultKind::Fail { transient: false },
        }]);
        let backend = FaultyBackend::new(Box::new(MemBackend::new()), plan);
        let mut t = PprTree::with_backend(small_params(), Box::new(backend));
        t.set_retry_policy(RetryPolicy::no_retry());

        let mut i = 0u64;
        let err = loop {
            match t.insert(i, rect(0.03 * (i % 25) as f64, 0.2), i as Time) {
                Ok(()) => {
                    i += 1;
                    assert!(i < 10_000, "fault never fired");
                }
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StorageError::Injected { .. }), "{err:?}");
        assert_eq!(t.alive_records(), i, "failed insert must not count");
        assert_eq!(t.now(), i.saturating_sub(1) as Time, "clock rolled back");
        t.validate();

        // The tree keeps working once the fault has passed.
        t.insert(i, rect(0.03 * (i % 25) as f64, 0.2), i as Time)
            .unwrap();
        assert_eq!(t.alive_records(), i + 1);
        t.validate();
    }

    /// Transient faults are absorbed by the store's retry loop: the
    /// update succeeds and the retries surface in the fault counters.
    #[test]
    fn transient_faults_are_invisible_to_updates() {
        let plan = FaultPlan::new(vec![
            ScheduledFault {
                at_op: 3,
                kind: FaultKind::Fail { transient: true },
            },
            ScheduledFault {
                at_op: 9,
                kind: FaultKind::Fail { transient: true },
            },
        ]);
        let backend = FaultyBackend::new(Box::new(MemBackend::new()), plan);
        let mut t = PprTree::with_backend(small_params(), Box::new(backend));
        for i in 0..20u64 {
            t.insert(i, rect(0.04 * (i % 20) as f64, 0.4), i as Time)
                .unwrap();
        }
        t.validate();
        let fs = t.fault_stats();
        assert_eq!(fs.io_faults_injected, 2);
        assert_eq!(fs.io_retries, 2);
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 19, &mut out).unwrap();
        assert_eq!(out.len(), 20);
    }

    /// A failing read mid-query surfaces a typed error, and the very next
    /// query (fault exhausted) works on untouched state.
    #[test]
    fn failed_query_is_typed_and_recoverable() {
        let t = populated_tree();
        let pages = t.num_pages();
        // Rebuild over a faulty backend that dies on an early read.
        let plan = FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::Fail { transient: false },
        }]);
        let backend = FaultyBackend::new(Box::new(MemBackend::new()), plan);
        let mut ft = PprTree::with_backend(small_params(), Box::new(backend));
        ft.set_retry_policy(RetryPolicy::no_retry());
        let err = ft
            .insert(1, rect(0.1, 0.1), 0)
            .expect_err("fault on op 1 must surface");
        assert!(matches!(err, StorageError::Injected { .. }));
        // After the plan is exhausted everything works again.
        ft.insert(1, rect(0.1, 0.1), 0).unwrap();
        let mut out = Vec::new();
        ft.query_snapshot(&Rect2::UNIT, 0, &mut out).unwrap();
        assert_eq!(out, vec![1]);
        assert!(pages > 0);
    }

    /// Current-view snapshot of everything `rollback_batch` must restore.
    fn meta(t: &PprTree) -> (Vec<RootSpan>, Time, u64, u64, usize) {
        (
            t.roots().to_vec(),
            t.now(),
            t.alive_records(),
            t.total_records(),
            t.num_pages(),
        )
    }

    #[test]
    fn committed_batch_is_permanent_and_queryable() {
        let mut t = PprTree::new(small_params());
        for i in 0..10u64 {
            t.insert(i, rect(0.05 * i as f64, 0.1), i as Time).unwrap();
        }
        t.begin_batch();
        assert!(t.in_batch());
        for i in 10..30u64 {
            t.insert(i, rect(0.03 * (i - 10) as f64, 0.5), 10 + i as Time)
                .unwrap();
        }
        t.delete(3, rect(0.05 * 3.0, 0.1), 45).unwrap();
        t.commit_batch();
        assert!(!t.in_batch());
        assert_eq!(t.alive_records(), 29);
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 45, &mut out).unwrap();
        assert_eq!(out.len(), 29);
        t.validate();
    }

    #[test]
    fn rolled_back_batch_restores_everything() {
        let mut t = PprTree::new(small_params());
        for i in 0..10u64 {
            t.insert(i, rect(0.05 * i as f64, 0.1), i as Time).unwrap();
        }
        let before = meta(&t);
        t.begin_batch();
        for i in 10..40u64 {
            t.insert(i, rect(0.02 * (i - 10) as f64, 0.5), 10 + i as Time)
                .unwrap();
        }
        t.delete(2, rect(0.05 * 2.0, 0.1), 60).unwrap();
        t.rollback_batch();
        assert_eq!(meta(&t), before);
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 9, &mut out).unwrap();
        assert_eq!(out.len(), 10);
        t.validate();
    }

    /// A storage fault mid-batch rolls the page log back immediately;
    /// `rollback_batch` then re-aligns the metadata, and the tree is the
    /// batch-start tree.
    #[test]
    fn faulted_batch_recovers_to_batch_start() {
        let backend = FaultyBackend::new(
            Box::new(MemBackend::new()),
            FaultPlan::new(vec![ScheduledFault {
                at_op: 60,
                kind: FaultKind::Fail { transient: false },
            }]),
        );
        let mut t = PprTree::with_backend(small_params(), Box::new(backend));
        t.set_retry_policy(RetryPolicy::no_retry());
        for i in 0..6u64 {
            t.insert(i, rect(0.05 * i as f64, 0.1), i as Time).unwrap();
        }
        let before = meta(&t);
        t.begin_batch();
        let mut failed = false;
        for i in 6..40u64 {
            if t.insert(i, rect(0.02 * (i - 6) as f64, 0.5), 6 + i as Time)
                .is_err()
            {
                failed = true;
                break;
            }
        }
        assert!(failed, "the scheduled fault must fire inside the batch");
        t.rollback_batch();
        assert_eq!(meta(&t), before);
        let mut out = Vec::new();
        t.query_snapshot(&Rect2::UNIT, 5, &mut out).unwrap();
        assert_eq!(out.len(), 6);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "only rollback_batch is valid")]
    fn committing_a_faulted_batch_is_rejected() {
        let backend = FaultyBackend::new(
            Box::new(MemBackend::new()),
            FaultPlan::new(vec![ScheduledFault {
                at_op: 10,
                kind: FaultKind::Fail { transient: false },
            }]),
        );
        let mut t = PprTree::with_backend(small_params(), Box::new(backend));
        t.set_retry_policy(RetryPolicy::no_retry());
        t.begin_batch();
        let mut hit = false;
        for i in 0..30u64 {
            if t.insert(i, rect(0.03 * i as f64, 0.2), i as Time).is_err() {
                hit = true;
                break;
            }
        }
        assert!(hit, "fault must fire");
        t.commit_batch();
    }

    /// Two trees sharing one pool keep distinct residency (tagged keys)
    /// and pool-wide counters.
    #[test]
    fn shared_buffer_trees_do_not_alias_pages() {
        let mut a = PprTree::new(small_params());
        let mut b = PprTree::with_backend_shared(
            small_params(),
            Box::new(MemBackend::new()),
            a.share_buffer(),
            1,
        );
        for i in 0..20u64 {
            a.insert(i, rect(0.04 * i as f64, 0.1), i as Time).unwrap();
            b.insert(1000 + i, rect(0.04 * i as f64, 0.8), i as Time)
                .unwrap();
        }
        let mut out = Vec::new();
        a.query_snapshot(&Rect2::UNIT, 19, &mut out).unwrap();
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|&id| id < 1000));
        out.clear();
        b.query_snapshot(&Rect2::UNIT, 19, &mut out).unwrap();
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|&id| id >= 1000));
        a.validate();
        b.validate();
    }
}
