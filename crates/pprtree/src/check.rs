//! Runtime invariant sanitizer for [`PprTree`].
//!
//! [`validate`] walks the *entire* history (every root span, alive and
//! dead edges) and [`validate_current`] walks only the current ephemeral
//! tree (alive edges of the open root span). Both are read-only: node
//! pages are fetched with [`sti_storage::PageStore::peek`], so running a
//! check never perturbs the paper's I/O accounting or buffer residency.
//!
//! The checked invariants, with the paper sections that motivate them
//! (Hadjieleftheriou et al., *Efficient Indexing of Spatiotemporal
//! Objects*, EDBT 2002; the PPR-Tree inherits them from the MVB-Tree of
//! Becker et al.):
//!
//! - **Root log** (§4.1): spans are ordered and non-overlapping (gaps are
//!   legal — times when no record was alive), only the final span may be
//!   open, closed spans are non-empty, and no span reaches past the
//!   clock.
//! - **Structure**: every reachable page is allocated, not on the free
//!   list, and decodes as a node of the level its parent expects; fanout
//!   never exceeds the page capacity `B`.
//! - **MBR containment** (R-Tree invariant, §2): a directory entry's
//!   rectangle contains every child entry whose lifetime intersects the
//!   directory entry's lifetime. Dead edges are checked against the
//!   child's state *during* the edge — a child copied onward by a version
//!   split keeps growing, and that growth is covered by the successor
//!   edge, not the frozen one.
//! - **Lifetime nesting**: entry lifetimes are well-formed half-open
//!   intervals stamped no later than the clock; no entry predates its
//!   node's first reference or is killed after the node's close.
//! - **Weak version condition** (§4.1): at every kill event strictly
//!   before a non-root node's close, the node retains at least
//!   `D = ceil(p_version * B)` alive entries. The condition is enforced
//!   by `apply_ops` *at update events*, so copies created sparse by the
//!   best-effort merge path (no alive sibling) are legal until the next
//!   kill touches them.
//! - **Duplicate-alive** (update semantics, §4.2): one leaf never holds
//!   two entries for the same `(id, rect)` with overlapping lifetimes.
//! - **Record accounting**: the alive-entry count over the current
//!   ephemeral tree equals [`PprTree::alive_records`].

use std::collections::{HashMap, HashSet};
use std::fmt;

use sti_geom::{Time, TimeInterval};
use sti_storage::PageId;

use crate::node::PprNode;
use crate::tree::{PprTree, RootSpan};

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// Root-log spans out of order, overlapping, empty, or open mid-log.
    RootLog,
    /// An update or span timestamp lies beyond the tree clock.
    ClockSkew,
    /// A directory entry points at an unallocated page.
    DanglingChild,
    /// A reachable page sits on the free list.
    FreedPageReachable,
    /// A reachable page does not decode as a PPR-Tree node.
    UnreadableNode,
    /// A node's stored level differs from what its parent expects.
    LevelMismatch,
    /// More entries than the page capacity `B`.
    Overfull,
    /// A reachable directory node with no alive children.
    EmptyDirectory,
    /// A directory entry's rectangle fails to cover a child entry that
    /// was alive while the directory entry was.
    MbrContainment,
    /// An entry lifetime is inverted, predates its node, or outlives it.
    LifetimeNesting,
    /// Alive-entry count dropped below the weak minimum `D` at a kill
    /// event that did not close the node.
    WeakVersion,
    /// Two leaf entries for the same record with overlapping lifetimes.
    DuplicateAlive,
    /// Alive leaf entries do not sum to [`PprTree::alive_records`].
    AliveCountMismatch,
}

impl ViolationKind {
    /// Short diagnostic tag.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::RootLog => "root_log",
            ViolationKind::ClockSkew => "clock_skew",
            ViolationKind::DanglingChild => "dangling_child",
            ViolationKind::FreedPageReachable => "freed_page_reachable",
            ViolationKind::UnreadableNode => "unreadable_node",
            ViolationKind::LevelMismatch => "level_mismatch",
            ViolationKind::Overfull => "overfull",
            ViolationKind::EmptyDirectory => "empty_directory",
            ViolationKind::MbrContainment => "mbr_containment",
            ViolationKind::LifetimeNesting => "lifetime_nesting",
            ViolationKind::WeakVersion => "weak_version",
            ViolationKind::DuplicateAlive => "duplicate_alive",
            ViolationKind::AliveCountMismatch => "alive_count_mismatch",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant, located on a page when one is involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending page, or `None` for tree-level findings.
    pub page: Option<PageId>,
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics (entry indices, timestamps, bounds).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.page {
            Some(p) => write!(f, "page {p}: [{}] {}", self.kind, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

/// Summary statistics from a clean check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReport {
    /// Spans in the root log.
    pub root_spans: usize,
    /// Unique node pages decoded.
    pub nodes: usize,
    /// Entries inspected across those nodes.
    pub entries: usize,
    /// Alive records counted over the current ephemeral tree.
    pub alive_records: u64,
    /// Height of the current ephemeral tree (levels; 0 when no root is
    /// open).
    pub height: u32,
    /// Allocated pages in the store.
    pub pages: usize,
    /// Pages on the free list.
    pub free_pages: usize,
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} root span(s), {} node(s) / {} entrie(s) checked; \
             alive={}, height={}, {} page(s) ({} free)",
            self.root_spans,
            self.nodes,
            self.entries,
            self.alive_records,
            self.height,
            self.pages,
            self.free_pages
        )
    }
}

/// Check every invariant over the full history: all root spans, alive
/// *and* dead edges. This is what `stidx check` and the test-only
/// [`PprTree::validate`] run.
pub fn validate(tree: &PprTree) -> Result<CheckReport, Vec<Violation>> {
    run(tree, Mode::FullHistory)
}

/// Check only the current ephemeral tree (alive edges of the open root
/// span) plus the root log and record accounting. Cheap enough to run
/// after individual updates; the debug builds of
/// [`PprTree::insert`]/[`PprTree::delete`] call this on a sampling
/// schedule.
pub fn validate_current(tree: &PprTree) -> Result<CheckReport, Vec<Violation>> {
    run(tree, Mode::CurrentAlive)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    FullHistory,
    CurrentAlive,
}

fn run(tree: &PprTree, mode: Mode) -> Result<CheckReport, Vec<Violation>> {
    let mut c = Checker {
        tree,
        mode,
        max_entries: tree.params().max_entries,
        weak_min: tree.params().weak_min(),
        now: tree.now(),
        violations: Vec::new(),
        nodes: HashMap::new(),
        span_refs: HashMap::new(),
        processed: HashSet::new(),
        root_pages: HashSet::new(),
        entries_seen: 0,
    };
    c.check_root_log();
    match mode {
        Mode::FullHistory => {
            for span in tree.roots().to_vec() {
                c.walk_span(&span);
            }
        }
        Mode::CurrentAlive => {
            if let Some(span) = open_span(tree) {
                c.walk_span(&span);
            }
        }
    }
    let lifetimes = c.compute_lifetimes();
    c.check_containment(&lifetimes);
    c.check_weak_condition(&lifetimes);
    c.reconcile_alive();
    c.finish()
}

fn open_span(tree: &PprTree) -> Option<RootSpan> {
    tree.roots()
        .last()
        .copied()
        .filter(|s| s.interval.is_open())
}

/// Half-open interval intersection test.
fn intervals_overlap(a: &TimeInterval, b: &TimeInterval) -> bool {
    a.start.max(b.start) < a.end.min(b.end)
}

/// Half-open interval intersection, `None` when empty.
fn clip(a: &TimeInterval, b: &TimeInterval) -> Option<TimeInterval> {
    let start = a.start.max(b.start);
    let end = a.end.min(b.end);
    (start < end).then_some(TimeInterval { start, end })
}

/// Grow `hull` to cover `iv`.
fn hull_into(hull: &mut Option<TimeInterval>, iv: TimeInterval) {
    *hull = Some(match hull {
        None => iv,
        Some(h) => TimeInterval {
            start: h.start.min(iv.start),
            end: h.end.max(iv.end),
        },
    });
}

struct Checker<'a> {
    tree: &'a PprTree,
    mode: Mode,
    max_entries: usize,
    weak_min: usize,
    now: Time,
    violations: Vec<Violation>,
    /// Decode cache; `None` marks a page that failed to load (already
    /// reported).
    nodes: HashMap<PageId, Option<PprNode>>,
    /// Root-log references per page, the seeds of the lifetime
    /// computation.
    span_refs: HashMap<PageId, Vec<TimeInterval>>,
    /// Pages whose node-level checks already ran (spans share subtrees).
    processed: HashSet<PageId>,
    /// Pages that serve as a root in some span (exempt from the weak
    /// version condition).
    root_pages: HashSet<PageId>,
    entries_seen: usize,
}

impl Checker<'_> {
    fn report(&mut self, page: Option<PageId>, kind: ViolationKind, detail: String) {
        self.violations.push(Violation { page, kind, detail });
    }

    /// Decode a page through the cache, reporting dangling/unreadable
    /// pages exactly once.
    fn load(&mut self, page: PageId) -> Option<PprNode> {
        if let Some(cached) = self.nodes.get(&page) {
            return cached.clone();
        }
        let decoded = match self.tree.store_ref().peek(page) {
            None => {
                self.report(
                    Some(page),
                    ViolationKind::DanglingChild,
                    format!(
                        "page beyond the {}-page store",
                        self.tree.store_ref().num_pages()
                    ),
                );
                None
            }
            Some(raw) => match PprNode::decode(&raw) {
                Ok(node) => Some(node),
                Err(e) => {
                    self.report(
                        Some(page),
                        ViolationKind::UnreadableNode,
                        format!("node decode failed: {e}"),
                    );
                    None
                }
            },
        };
        self.nodes.insert(page, decoded.clone());
        decoded
    }

    fn check_root_log(&mut self) {
        let roots = self.tree.roots();
        let n = roots.len();
        for (i, s) in roots.iter().enumerate() {
            if s.interval.is_open() {
                if i + 1 != n {
                    self.report(
                        Some(s.page),
                        ViolationKind::RootLog,
                        format!("span {i} is open but not final"),
                    );
                }
                if s.interval.start > self.now {
                    self.report(
                        Some(s.page),
                        ViolationKind::ClockSkew,
                        format!(
                            "span {i} opens at {} but the clock is {}",
                            s.interval.start, self.now
                        ),
                    );
                }
            } else {
                if s.interval.is_empty() {
                    self.report(
                        Some(s.page),
                        ViolationKind::RootLog,
                        format!(
                            "span {i} is closed and empty ([{}, {}))",
                            s.interval.start, s.interval.end
                        ),
                    );
                }
                if s.interval.end > self.now {
                    self.report(
                        Some(s.page),
                        ViolationKind::ClockSkew,
                        format!(
                            "span {i} closes at {} but the clock is {}",
                            s.interval.end, self.now
                        ),
                    );
                }
            }
        }
        for (i, w) in roots.windows(2).enumerate() {
            // Gaps are legal (the tree emptied, then a later insert opened
            // a fresh span); overlap or disorder is not.
            if w[1].interval.start < w[0].interval.end {
                self.report(
                    Some(w[1].page),
                    ViolationKind::RootLog,
                    format!(
                        "span {} starts at {} before span {} ends at {}",
                        i + 1,
                        w[1].interval.start,
                        i,
                        w[0].interval.end
                    ),
                );
            }
        }
    }

    /// Walk one span's subtree. In [`Mode::CurrentAlive`] only alive
    /// edges are followed; in [`Mode::FullHistory`] dead edges are walked
    /// too, so every historical node is reached.
    fn walk_span(&mut self, span: &RootSpan) {
        self.root_pages.insert(span.page);
        self.span_refs
            .entry(span.page)
            .or_default()
            .push(span.interval);
        let mut visited: HashSet<PageId> = HashSet::new();
        let mut stack: Vec<(PageId, u32)> = vec![(span.page, span.level)];
        while let Some((page, expected_level)) = stack.pop() {
            if !visited.insert(page) {
                continue;
            }
            let Some(node) = self.load(page) else {
                continue;
            };
            if self.processed.insert(page) {
                self.check_node(page, &node, expected_level);
            }
            if node.is_leaf() {
                continue;
            }
            for e in &node.entries {
                if self.mode == Mode::CurrentAlive && !e.is_alive() {
                    continue;
                }
                stack.push((e.child_page(), node.level - 1));
            }
        }
    }

    /// Node-local checks plus per-edge checks against each child. Runs
    /// once per unique page even when several spans share the subtree.
    fn check_node(&mut self, page: PageId, node: &PprNode, expected_level: u32) {
        self.entries_seen += node.entries.len();
        if self.tree.store_ref().is_free(page) {
            self.report(
                Some(page),
                ViolationKind::FreedPageReachable,
                "reachable page is on the free list".to_string(),
            );
        }
        if node.level != expected_level {
            self.report(
                Some(page),
                ViolationKind::LevelMismatch,
                format!("node level {} where {expected_level} expected", node.level),
            );
        }
        if node.entries.len() > self.max_entries {
            self.report(
                Some(page),
                ViolationKind::Overfull,
                format!(
                    "{} entries exceed capacity {}",
                    node.entries.len(),
                    self.max_entries
                ),
            );
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.insertion > e.deletion {
                self.report(
                    Some(page),
                    ViolationKind::LifetimeNesting,
                    format!(
                        "entry {i} has inverted lifetime [{}, {})",
                        e.insertion, e.deletion
                    ),
                );
            }
            if e.insertion > self.now {
                self.report(
                    Some(page),
                    ViolationKind::ClockSkew,
                    format!(
                        "entry {i} inserted at {} but the clock is {}",
                        e.insertion, self.now
                    ),
                );
            }
            if !e.is_alive() && e.deletion > self.now {
                self.report(
                    Some(page),
                    ViolationKind::ClockSkew,
                    format!(
                        "entry {i} deleted at {} but the clock is {}",
                        e.deletion, self.now
                    ),
                );
            }
        }
        if node.is_leaf() {
            self.check_duplicate_alive(page, node);
        }
    }

    /// One leaf must never hold two entries for the same `(id, rect)`
    /// with overlapping lifetimes — `delete` would be ambiguous.
    fn check_duplicate_alive(&mut self, page: PageId, node: &PprNode) {
        for (i, a) in node.entries.iter().enumerate() {
            for (j, b) in node.entries.iter().enumerate().skip(i + 1) {
                if a.ptr == b.ptr
                    && a.rect == b.rect
                    && intervals_overlap(&a.lifetime(), &b.lifetime())
                {
                    self.report(
                        Some(page),
                        ViolationKind::DuplicateAlive,
                        format!(
                            "entries {i} and {j} duplicate record {} over \
                             overlapping lifetimes",
                            a.ptr
                        ),
                    );
                }
            }
        }
    }

    /// Compute each node's lifetime as an interval hull, walking the
    /// version DAG top-down by level. A node lives over the union of its
    /// referencing-edge windows, where an edge's window is the entry's
    /// lifetime *clipped to the parent node's own lifetime* — an
    /// open-ended entry frozen inside a closed parent stops being an edge
    /// the instant the parent closes (its role passes to the re-stamped
    /// copy), and children of a closed root die with the span even though
    /// nothing ever killed their entries.
    fn compute_lifetimes(&mut self) -> HashMap<PageId, TimeInterval> {
        let mut life: HashMap<PageId, Option<TimeInterval>> = HashMap::new();
        for (page, spans) in &self.span_refs {
            for iv in spans {
                hull_into(life.entry(*page).or_default(), *iv);
            }
        }
        // Edges always point from level L+1 to level L, so processing
        // pages by decreasing level sees every parent before its children.
        let mut order: Vec<(u32, PageId)> = self
            .nodes
            .iter()
            .filter_map(|(p, n)| n.as_ref().map(|n| (n.level, *p)))
            .collect();
        order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, page) in order {
            let Some(Some(pl)) = life.get(&page).copied() else {
                continue;
            };
            let Some(Some(node)) = self.nodes.get(&page) else {
                continue;
            };
            if node.is_leaf() {
                continue;
            }
            for e in &node.entries {
                if self.mode == Mode::CurrentAlive && !e.is_alive() {
                    continue;
                }
                if let Some(w) = clip(&pl, &e.lifetime()) {
                    hull_into(life.entry(e.child_page()).or_default(), w);
                }
            }
        }
        life.into_iter()
            .filter_map(|(p, l)| l.map(|l| (p, l)))
            .collect()
    }

    /// MBR containment over effective edge windows: a directory entry's
    /// rectangle must cover every child entry whose lifetime intersects
    /// the window. Dead edges are checked against the child's state
    /// *during* the edge only — a child copied onward by a version split
    /// keeps growing, and that growth is covered by the successor edge,
    /// not the frozen one.
    fn check_containment(&mut self, life: &HashMap<PageId, TimeInterval>) {
        let mut pages: Vec<PageId> = self.nodes.keys().copied().collect();
        pages.sort_unstable();
        for page in pages {
            let Some(Some(node)) = self.nodes.get(&page).cloned() else {
                continue;
            };
            if node.is_leaf() {
                continue;
            }
            let Some(pl) = life.get(&page).copied() else {
                continue;
            };
            for (i, e) in node.entries.iter().enumerate() {
                if self.mode == Mode::CurrentAlive && !e.is_alive() {
                    continue;
                }
                let Some(w) = clip(&pl, &e.lifetime()) else {
                    continue;
                };
                let child_page = e.child_page();
                let Some(Some(child)) = self.nodes.get(&child_page).cloned() else {
                    continue;
                };
                for (j, ce) in child.entries.iter().enumerate() {
                    // Only the *final* rect of an entry is stored, and
                    // directory entries keep growing while their node
                    // lives — growth after this edge closed belongs to
                    // the successor edge. The final rect is only
                    // meaningful against this window when it froze
                    // within it: leaf rects are immutable, and a killed
                    // directory entry stops growing at its kill. An open
                    // window (the current spine) subsumes all growth.
                    let frozen = child.is_leaf() || ce.lifetime().end <= w.end;
                    if frozen
                        && intervals_overlap(&w, &ce.lifetime())
                        && !e.rect.contains_rect(&ce.rect)
                    {
                        self.report(
                            Some(page),
                            ViolationKind::MbrContainment,
                            format!(
                                "entry {i} ({:?}, effective [{}, {})) does not \
                                 cover page {child_page} entry {j} ({:?}, \
                                 lifetime [{}, {}))",
                                e.rect,
                                w.start,
                                w.end,
                                ce.rect,
                                ce.lifetime().start,
                                ce.lifetime().end
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Weak version condition, evaluated at kill events: for every
    /// non-root node and every distinct kill time `tk` strictly before
    /// the node's close, at least `D` entries are alive at `tk`.
    /// `apply_ops` closes a node the instant an update leaves it below
    /// `D`, so the only legal sub-`D` states begin at a node's creation
    /// (best-effort sparse copies) and carry no kill event of their own.
    ///
    /// [`Mode::FullHistory`] additionally pins entry lifetimes inside the
    /// node's own lifetime; the alive-only edge set of
    /// [`Mode::CurrentAlive`] over-estimates creation times (a copied
    /// edge is re-stamped while the child's entries are not), so those
    /// bounds are skipped there.
    fn check_weak_condition(&mut self, life: &HashMap<PageId, TimeInterval>) {
        let mut pages: Vec<PageId> = self.nodes.keys().copied().collect();
        pages.sort_unstable();
        for page in pages {
            let Some(Some(node)) = self.nodes.get(&page).cloned() else {
                continue;
            };
            let Some(l) = life.get(&page).copied() else {
                continue;
            };
            let (creation, close) = (l.start, l.end);
            let is_root = self.root_pages.contains(&page);
            if self.mode == Mode::FullHistory && !is_root {
                for (i, e) in node.entries.iter().enumerate() {
                    if e.insertion < creation {
                        self.report(
                            Some(page),
                            ViolationKind::LifetimeNesting,
                            format!(
                                "entry {i} inserted at {} before the node's \
                                 first reference at {creation}",
                                e.insertion
                            ),
                        );
                    }
                    if !e.is_alive() && e.deletion > close {
                        self.report(
                            Some(page),
                            ViolationKind::LifetimeNesting,
                            format!(
                                "entry {i} killed at {} after the node closed \
                                 at {close}",
                                e.deletion
                            ),
                        );
                    }
                }
            }
            if is_root {
                continue;
            }
            let mut kill_times: Vec<Time> = node
                .entries
                .iter()
                .filter(|e| !e.is_alive())
                .map(|e| e.deletion)
                .filter(|&tk| tk >= creation && tk < close)
                .collect();
            kill_times.sort_unstable();
            kill_times.dedup();
            for tk in kill_times {
                let alive = node.entries.iter().filter(|e| e.alive_at(tk)).count();
                if alive < self.weak_min {
                    self.report(
                        Some(page),
                        ViolationKind::WeakVersion,
                        format!(
                            "{alive} alive entries after the kill at {tk} \
                             (weak minimum {}, node open until {close})",
                            self.weak_min
                        ),
                    );
                }
            }
        }
    }

    /// Walk the current ephemeral tree (alive edges only) and reconcile
    /// the alive-entry count with the tree's record counter. Also the
    /// natural place to spot an alive directory with no alive children.
    fn reconcile_alive(&mut self) {
        let Some(span) = open_span(self.tree) else {
            if self.tree.alive_records() != 0 {
                self.report(
                    None,
                    ViolationKind::AliveCountMismatch,
                    format!(
                        "no open root span but alive_records={}",
                        self.tree.alive_records()
                    ),
                );
            }
            return;
        };
        let mut alive: u64 = 0;
        let mut visited: HashSet<PageId> = HashSet::new();
        let mut stack = vec![span.page];
        while let Some(page) = stack.pop() {
            if !visited.insert(page) {
                continue;
            }
            let Some(node) = self.load(page) else {
                continue;
            };
            if node.is_leaf() {
                alive += node.alive_count() as u64;
                continue;
            }
            if node.alive_count() == 0 {
                self.report(
                    Some(page),
                    ViolationKind::EmptyDirectory,
                    "alive directory node with no alive children".to_string(),
                );
            }
            for e in &node.entries {
                if e.is_alive() {
                    stack.push(e.child_page());
                }
            }
        }
        if alive != self.tree.alive_records() {
            self.report(
                None,
                ViolationKind::AliveCountMismatch,
                format!(
                    "{alive} alive leaf entries but alive_records={}",
                    self.tree.alive_records()
                ),
            );
        }
    }

    fn finish(mut self) -> Result<CheckReport, Vec<Violation>> {
        if self.violations.is_empty() {
            let store = self.tree.store_ref();
            Ok(CheckReport {
                root_spans: self.tree.roots().len(),
                nodes: self.nodes.len(),
                entries: self.entries_seen,
                alive_records: self.tree.alive_records(),
                height: open_span(self.tree).map_or(0, |s| s.level + 1),
                pages: store.num_pages(),
                free_pages: store.free_pages(),
            })
        } else {
            // Traversal order depends on hash iteration; sort for
            // deterministic output (a repo-wide requirement).
            self.violations.sort_by(|a, b| {
                (a.page, a.kind, a.detail.as_str()).cmp(&(b.page, b.kind, b.detail.as_str()))
            });
            Err(self.violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PprParams;
    use sti_geom::Rect2;

    fn small_params() -> PprParams {
        // B = 10: D = ceil(2.2) = 3, svo = 8, svu = 4; svo+1 ≥ 2·svu ✓
        PprParams {
            max_entries: 10,
            p_version: 0.22,
            p_svo: 0.8,
            p_svu: 0.4,
            buffer_pages: 4,
        }
    }

    fn rect(i: u64) -> Rect2 {
        let x = (i % 10) as f64 * 0.08;
        let y = (i / 10 % 10) as f64 * 0.08;
        Rect2::from_bounds(x, y, x + 0.05, y + 0.05)
    }

    #[test]
    fn empty_tree_is_clean() {
        let tree = PprTree::new(small_params());
        let report = validate(&tree).expect("empty tree must validate");
        assert_eq!(report.root_spans, 0);
        assert_eq!(report.nodes, 0);
        assert_eq!(report.alive_records, 0);
        assert_eq!(report.height, 0);
    }

    #[test]
    fn grown_tree_full_history_is_clean() {
        let mut tree = PprTree::new(small_params());
        for i in 0..200u64 {
            tree.insert(i, rect(i), i as u32 + 1).unwrap();
        }
        for i in (0..200u64).step_by(3) {
            tree.delete(i, rect(i), 300 + i as u32)
                .expect("alive record");
        }
        let report = validate(&tree).expect("grown tree must validate");
        assert!(report.root_spans >= 1);
        assert!(report.nodes > 1, "tree should have split");
        assert_eq!(report.alive_records, tree.alive_records());
        let current = validate_current(&tree).expect("current view must validate");
        assert_eq!(current.alive_records, report.alive_records);
        assert!(current.nodes <= report.nodes);
    }

    #[test]
    fn emptied_tree_with_gap_is_clean() {
        let mut tree = PprTree::new(small_params());
        for i in 0..20u64 {
            tree.insert(i, rect(i), 10).unwrap();
        }
        for i in 0..20u64 {
            tree.delete(i, rect(i), 20).expect("alive record");
        }
        // Gap in the root log, then a fresh evolution.
        tree.insert(99, rect(3), 50).unwrap();
        let report = validate(&tree).expect("gapped root log is legal");
        assert_eq!(report.alive_records, 1);
    }

    #[test]
    fn corrupted_counter_is_reported() {
        let mut tree = PprTree::new(small_params());
        for i in 0..50u64 {
            tree.insert(i, rect(i), i as u32 + 1).unwrap();
        }
        tree.corrupt_alive_records_for_test(7);
        let violations = validate(&tree).expect_err("corruption must be caught");
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::AliveCountMismatch));
        assert!(validate_current(&tree).is_err());
    }

    #[test]
    fn corrupted_page_is_reported() {
        let mut tree = PprTree::new(small_params());
        for i in 0..120u64 {
            tree.insert(i, rect(i), i as u32 + 1).unwrap();
        }
        tree.corrupt_page_for_test(tree.roots()[tree.roots().len() - 1].page);
        let violations = validate(&tree).expect_err("clobbered root must be caught");
        assert!(!violations.is_empty());
    }

    #[test]
    fn violations_and_report_render() {
        let v = Violation {
            page: Some(3),
            kind: ViolationKind::WeakVersion,
            detail: "2 alive entries".to_string(),
        };
        assert_eq!(v.to_string(), "page 3: [weak_version] 2 alive entries");
        let v2 = Violation {
            page: None,
            kind: ViolationKind::AliveCountMismatch,
            detail: "x".to_string(),
        };
        assert!(v2.to_string().starts_with("[alive_count_mismatch]"));
        let mut tree = PprTree::new(small_params());
        tree.insert(1, rect(1), 5).unwrap();
        let report = validate(&tree).expect("clean");
        let text = report.to_string();
        assert!(text.contains("root span"));
        assert!(text.contains("alive=1"));
    }
}
