//! 2D R\*-style key split for strong version overflows.

use crate::node::PprEntry;
use sti_geom::Rect2;

/// Spatially split an overflowing set of *alive* entries into two groups,
/// using the R\*-Tree topological split adapted to 2D: choose the axis
/// with the smallest margin sum over all legal distributions, then the
/// distribution with minimum overlap (ties by minimum combined area).
///
/// Used when a version split produces a copy with more than
/// `P_svo · B` alive entries; `min_entries` should be the strong version
/// underflow bound so neither half starts life sparse.
pub fn key_split(entries: Vec<PprEntry>, min_entries: usize) -> (Vec<PprEntry>, Vec<PprEntry>) {
    let n = entries.len();
    assert!(
        n >= 2 * min_entries,
        "cannot key-split {n} entries with min fill {min_entries}"
    );

    let k_range = 1..=(n - 2 * min_entries + 1);

    let sorted_by = |axis: usize, by_upper: bool| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            let (ra, rb) = (&entries[a].rect, &entries[b].rect);
            let key = |r: &Rect2| {
                let (lo, hi) = if axis == 0 {
                    (r.lo.x, r.hi.x)
                } else {
                    (r.lo.y, r.hi.y)
                };
                if by_upper {
                    (hi, lo)
                } else {
                    (lo, hi)
                }
            };
            let (ka, kb) = (key(ra), key(rb));
            ka.0.total_cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
        });
        idx
    };

    let sweep = |order: &[usize]| -> (Vec<Rect2>, Vec<Rect2>) {
        let mut prefix = Vec::with_capacity(n);
        let mut acc = Rect2::EMPTY;
        for &i in order {
            acc.expand(&entries[i].rect);
            prefix.push(acc);
        }
        let mut suffix = vec![Rect2::EMPTY; n];
        let mut acc = Rect2::EMPTY;
        for (pos, &i) in order.iter().enumerate().rev() {
            acc.expand(&entries[i].rect);
            suffix[pos] = acc;
        }
        (prefix, suffix)
    };

    // ChooseSplitAxis over the two spatial axes.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..2 {
        let mut margin_sum = 0.0;
        for by_upper in [false, true] {
            let order = sorted_by(axis, by_upper);
            let (prefix, suffix) = sweep(&order);
            for k in k_range.clone() {
                let split_at = min_entries - 1 + k;
                margin_sum += prefix[split_at - 1].margin() + suffix[split_at].margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex.
    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None;
    for by_upper in [false, true] {
        let order = sorted_by(best_axis, by_upper);
        let (prefix, suffix) = sweep(&order);
        for k in k_range.clone() {
            let split_at = min_entries - 1 + k;
            let bb1 = prefix[split_at - 1];
            let bb2 = suffix[split_at];
            let overlap = bb1.overlap_area(&bb2);
            let area = bb1.area() + bb2.area();
            let better = match &best {
                None => true,
                Some((o, a, _, _)) => (overlap, area) < (*o, *a),
            };
            if better {
                best = Some((overlap, area, order.clone(), split_at));
            }
        }
    }

    // stilint::allow(no_panic, "k_range is nonempty whenever n >= 2*min_entries (asserted on entry), so the distribution loop always ran")
    let (_, _, order, split_at) = best.expect("at least one distribution");
    let g1 = order[..split_at].iter().map(|&i| entries[i]).collect();
    let g2 = order[split_at..].iter().map(|&i| entries[i]).collect();
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sti_geom::TimeInterval;

    fn e(x: f64, y: f64, s: f64, ptr: u64) -> PprEntry {
        PprEntry {
            rect: Rect2::from_bounds(x, y, x + s, y + s),
            ptr,
            insertion: 0,
            deletion: TimeInterval::OPEN_END,
        }
    }

    #[test]
    fn separates_two_clusters() {
        let mut entries = Vec::new();
        for i in 0..5 {
            entries.push(e(0.01 * i as f64, 0.0, 0.02, i));
        }
        for i in 0..5 {
            entries.push(e(0.9 + 0.01 * i as f64, 0.0, 0.02, 100 + i));
        }
        let (g1, g2) = key_split(entries, 2);
        let near1 = g1.iter().all(|e| e.ptr < 100);
        let near2 = g2.iter().all(|e| e.ptr < 100);
        assert!(near1 ^ near2);
        assert_eq!(g1.len() + g2.len(), 10);
    }

    #[test]
    fn splits_along_y_when_y_spreads() {
        let entries: Vec<PprEntry> = (0..8).map(|i| e(0.5, i as f64 * 0.1, 0.01, i)).collect();
        let (g1, g2) = key_split(entries, 2);
        let bb1 = g1.iter().fold(Rect2::EMPTY, |a, x| a.union(&x.rect));
        let bb2 = g2.iter().fold(Rect2::EMPTY, |a, x| a.union(&x.rect));
        assert_eq!(bb1.overlap_area(&bb2), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot key-split")]
    fn rejects_underfull() {
        let _ = key_split(vec![e(0.0, 0.0, 0.1, 1); 3], 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn preserves_entries_and_min_fill(
            boxes in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64, 0.001..0.1f64), 6..50),
        ) {
            let min_fill = 1 + boxes.len() / 5;
            let entries: Vec<PprEntry> = boxes
                .iter()
                .enumerate()
                .map(|(i, &(x, y, s))| e(x, y, s, i as u64))
                .collect();
            let n = entries.len();
            let (g1, g2) = key_split(entries, min_fill);
            prop_assert_eq!(g1.len() + g2.len(), n);
            prop_assert!(g1.len() >= min_fill && g2.len() >= min_fill);
            let mut ids: Vec<u64> = g1.iter().chain(&g2).map(|e| e.ptr).collect();
            ids.sort_unstable();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
