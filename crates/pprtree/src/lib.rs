//! A partially persistent R-Tree (PPR-Tree).
//!
//! Conceptually the PPR-Tree records the evolution of an "ephemeral" 2D
//! R-Tree under a stream of timestamped insertions and deletions, so a
//! historical query about time `t` behaves as if a dedicated R-Tree for
//! time `t` existed — while the physical storage stays *linear* in the
//! number of changes (the multi-version approach of Kumar, Tsotras &
//! Faloutsos, which the paper adopts in §II-B).
//!
//! Mechanics implemented here:
//!
//! * every leaf/directory entry carries `insertion-time` / `deletion-time`
//!   lifetime fields;
//! * updates only touch the *current* state; full (dead) nodes are
//!   **version-split**: their alive entries are copied to a fresh node and
//!   the old node is closed in its parent;
//! * **strong version overflow** (`alive > P_svo · B`) key-splits the copy
//!   spatially (R\*-style 2D split); **strong version underflow**
//!   (`alive < P_svu · B`) merges the copy with a version-split sibling;
//! * the **weak version condition** (`alive ≥ D = P_version · B` for
//!   every non-root node) is restored after deletions by the same
//!   version-split machinery, keeping the records alive at any instant
//!   clustered in few pages;
//! * a root log maps each time instant to the root (and height) of its
//!   ephemeral tree.
//!
//! Nodes live in a paged [`sti_storage::PageStore`], so query I/O with the
//! paper's 10-page LRU buffer is measured faithfully. Paper parameters:
//! `B = 50`, `P_version = 0.22`, `P_svo = 0.8`, `P_svu = 0.4`.

pub mod bulk;
pub mod check;
pub mod knn;
pub mod node;
pub mod split;
pub mod tree;

pub use bulk::{BulkError, BulkLoader, BulkPiece, BulkStats};
pub use check::{CheckReport, Violation, ViolationKind};
pub use node::{PprEntry, PprNode, PprParams};
pub use tree::{DeleteError, PprTree, RootSpan};
