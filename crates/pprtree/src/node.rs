//! PPR-Tree nodes, entries, parameters, and page serialization.

use sti_geom::{Rect2, Time, TimeInterval};
use sti_storage::{ByteReader, ByteWriter, CodecError, Page, PAGE_SIZE};

/// Tuning parameters of the PPR-Tree. Defaults are the paper's §V setup.
#[derive(Debug, Clone, Copy)]
pub struct PprParams {
    /// Maximum entries per node (`B`). Paper: 50.
    pub max_entries: usize,
    /// Weak version condition: a non-root node must hold at least
    /// `D = ceil(p_version · B)` alive entries. Paper: 0.22.
    pub p_version: f64,
    /// Strong version overflow: a version-split copy holding more than
    /// `floor(p_svo · B)` alive entries is key-split. Paper: 0.8.
    pub p_svo: f64,
    /// Strong version underflow: a copy holding fewer than
    /// `ceil(p_svu · B)` alive entries is merged with a sibling.
    /// Paper: 0.4.
    pub p_svu: f64,
    /// Buffer pool capacity in pages. Paper: 10.
    pub buffer_pages: usize,
}

impl Default for PprParams {
    fn default() -> Self {
        Self {
            max_entries: 50,
            p_version: 0.22,
            p_svo: 0.8,
            p_svu: 0.4,
            buffer_pages: 10,
        }
    }
}

impl PprParams {
    /// `D`: minimum alive entries for a non-root node to be alive.
    pub fn weak_min(&self) -> usize {
        ((self.p_version * self.max_entries as f64).ceil() as usize).max(1)
    }

    /// Strong version overflow threshold (alive counts above this
    /// key-split).
    pub fn strong_overflow(&self) -> usize {
        (self.p_svo * self.max_entries as f64).floor() as usize
    }

    /// Strong version underflow threshold (alive counts below this merge).
    pub fn strong_underflow(&self) -> usize {
        (self.p_svu * self.max_entries as f64).ceil() as usize
    }

    /// Validate thresholds: `D ≤ svu ≤ svo ≤ B` and the node fits a page.
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries too small");
        assert!(
            PprNode::encoded_size(self.max_entries) <= PAGE_SIZE,
            "{} entries do not fit a {PAGE_SIZE}-byte page",
            self.max_entries
        );
        let (d, svu, svo) = (
            self.weak_min(),
            self.strong_underflow(),
            self.strong_overflow(),
        );
        assert!(
            d <= svu,
            "weak_min {d} must not exceed strong_underflow {svu}"
        );
        assert!(
            svu < svo,
            "strong_underflow {svu} must be below strong_overflow {svo}"
        );
        assert!(
            svo <= self.max_entries,
            "strong_overflow exceeds node capacity"
        );
        // A key split must be able to give each half at least svu alive
        // entries: svo + 1 ≥ 2·svu.
        assert!(
            svo + 1 >= 2 * svu,
            "overflow split cannot satisfy underflow bound"
        );
    }
}

/// One PPR-Tree entry. In a leaf (`level == 0`) `ptr` is the object id;
/// in a directory node it is the child page id. The lifetime says when
/// the record/child existed in the *ephemeral* R-Tree's evolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprEntry {
    /// Spatial MBR: the record's rectangle, or the union of everything
    /// inserted into the child during this entry's lifetime.
    pub rect: Rect2,
    /// Object id (leaf) or child page id (directory).
    pub ptr: u64,
    /// Time the entry entered this node.
    pub insertion: Time,
    /// Time the entry was (logically) deleted; `TimeInterval::OPEN_END`
    /// while alive.
    pub deletion: Time,
}

impl PprEntry {
    /// A still-alive entry starting at `t`.
    pub fn alive(rect: Rect2, ptr: u64, t: Time) -> Self {
        Self {
            rect,
            ptr,
            insertion: t,
            deletion: TimeInterval::OPEN_END,
        }
    }

    /// True while no deletion time is recorded.
    pub fn is_alive(&self) -> bool {
        self.deletion == TimeInterval::OPEN_END
    }

    /// The entry's lifetime interval.
    pub fn lifetime(&self) -> TimeInterval {
        TimeInterval {
            start: self.insertion,
            end: self.deletion,
        }
    }

    /// True if the entry existed at instant `t`.
    pub fn alive_at(&self, t: Time) -> bool {
        self.insertion <= t && t < self.deletion
    }

    /// Child page id (directory entries only).
    pub fn child_page(&self) -> sti_storage::PageId {
        // stilint::allow(no_panic, "directory entries are built exclusively from allocate()-returned u32 page ids widened into the shared ptr field")
        sti_storage::PageId::try_from(self.ptr).expect("directory entry holds a page id")
    }

    const ENCODED: usize = 4 * 8 + 8 + 4 + 4; // rect + ptr + 2 times
}

/// One PPR-Tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct PprNode {
    /// Height above the leaves (0 = leaf).
    pub level: u32,
    /// Entries, append-only within the node; deletions only stamp
    /// `deletion` times.
    pub entries: Vec<PprEntry>,
}

impl PprNode {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of alive entries.
    pub fn alive_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_alive()).count()
    }

    /// Clone out the alive entries.
    pub fn alive_entries(&self) -> Vec<PprEntry> {
        self.entries
            .iter()
            .filter(|e| e.is_alive())
            .copied()
            .collect()
    }

    /// Union of the alive entries' rectangles.
    pub fn alive_mbr(&self) -> Rect2 {
        let mut m = Rect2::EMPTY;
        for e in &self.entries {
            if e.is_alive() {
                m.expand(&e.rect);
            }
        }
        m
    }

    /// Union of all entries' rectangles (alive and dead) — what a parent
    /// directory entry must cover.
    pub fn full_mbr(&self) -> Rect2 {
        let mut m = Rect2::EMPTY;
        for e in &self.entries {
            m.expand(&e.rect);
        }
        m
    }

    /// Bytes needed to encode a node of `n` entries.
    pub fn encoded_size(n: usize) -> usize {
        4 + 2 + n * PprEntry::ENCODED
    }

    /// Serialize into a page buffer, zeroing the tail.
    pub fn encode(&self, page: &mut Page) {
        assert!(
            Self::encoded_size(self.entries.len()) <= PAGE_SIZE,
            "node too large for page"
        );
        let buf = page.bytes_mut();
        let mut w = ByteWriter::new(&mut buf[..]);
        w.put_u32(self.level);
        // stilint::allow(no_panic, "the encoded_size assert above bounds entries by the page capacity, far below u16::MAX")
        w.put_u16(u16::try_from(self.entries.len()).expect("entry count fits u16"));
        for e in &self.entries {
            w.put_f64(e.rect.lo.x);
            w.put_f64(e.rect.lo.y);
            w.put_f64(e.rect.hi.x);
            w.put_f64(e.rect.hi.y);
            w.put_u64(e.ptr);
            w.put_u32(e.insertion);
            w.put_u32(e.deletion);
        }
        let pos = w.position();
        buf[pos..].fill(0);
    }

    /// Deserialize from a page.
    pub fn decode(page: &Page) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(&page.bytes()[..]);
        let level = r.get_u32()?;
        let count = r.get_u16()? as usize;
        if Self::encoded_size(count) > PAGE_SIZE {
            return Err(CodecError::InvalidValue(
                "entry count exceeds page capacity",
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let lx = r.get_f64()?;
            let ly = r.get_f64()?;
            let hx = r.get_f64()?;
            let hy = r.get_f64()?;
            if lx > hx || ly > hy {
                return Err(CodecError::InvalidValue("reversed rectangle in node entry"));
            }
            let ptr = r.get_u64()?;
            let insertion = r.get_u32()?;
            let deletion = r.get_u32()?;
            if insertion > deletion {
                return Err(CodecError::InvalidValue("entry deleted before insertion"));
            }
            entries.push(PprEntry {
                rect: Rect2::from_bounds(lx, ly, hx, hy),
                ptr,
                insertion,
                deletion,
            });
        }
        Ok(Self { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: f64, ptr: u64, ins: Time, del: Time) -> PprEntry {
        PprEntry {
            rect: Rect2::from_bounds(v, v, v + 0.1, v + 0.1),
            ptr,
            insertion: ins,
            deletion: del,
        }
    }

    #[test]
    fn paper_parameters() {
        let p = PprParams::default();
        p.validate();
        assert_eq!(p.weak_min(), 11); // ceil(0.22 * 50)
        assert_eq!(p.strong_overflow(), 40); // floor(0.8 * 50)
        assert_eq!(p.strong_underflow(), 20); // ceil(0.4 * 50)
    }

    #[test]
    #[should_panic(expected = "strong_underflow")]
    fn rejects_inverted_thresholds() {
        PprParams {
            p_svu: 0.9,
            ..PprParams::default()
        }
        .validate();
    }

    #[test]
    fn entry_lifetime_logic() {
        let e = PprEntry::alive(Rect2::UNIT, 7, 10);
        assert!(e.is_alive());
        assert!(e.alive_at(10));
        assert!(e.alive_at(1_000_000));
        assert!(!e.alive_at(9));
        let dead = PprEntry { deletion: 20, ..e };
        assert!(!dead.is_alive());
        assert!(dead.alive_at(19));
        assert!(!dead.alive_at(20));
        assert_eq!(dead.lifetime(), TimeInterval::new(10, 20));
    }

    #[test]
    fn alive_counting_and_mbrs() {
        let node = PprNode {
            level: 0,
            entries: vec![
                entry(0.0, 1, 0, 5),
                entry(0.5, 2, 0, TimeInterval::OPEN_END),
            ],
        };
        assert_eq!(node.alive_count(), 1);
        assert_eq!(node.alive_entries().len(), 1);
        // alive MBR covers only the alive entry
        assert!(!node
            .alive_mbr()
            .contains_point(&sti_geom::Point2::new(0.05, 0.05)));
        // full MBR covers both
        assert!(node
            .full_mbr()
            .contains_point(&sti_geom::Point2::new(0.05, 0.05)));
    }

    #[test]
    fn fifty_entries_fit_a_page() {
        assert!(PprNode::encoded_size(50) <= PAGE_SIZE);
        assert!(PprNode::encoded_size(85) <= PAGE_SIZE);
        assert!(PprNode::encoded_size(86) > PAGE_SIZE);
    }

    #[test]
    fn encode_decode_round_trip() {
        let node = PprNode {
            level: 2,
            entries: (0..50)
                .map(|i| {
                    entry(
                        i as f64 * 0.01,
                        i,
                        i as Time,
                        if i % 2 == 0 {
                            TimeInterval::OPEN_END
                        } else {
                            900
                        },
                    )
                })
                .collect(),
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        assert_eq!(PprNode::decode(&page).unwrap(), node);
    }

    #[test]
    fn decode_rejects_inverted_lifetime() {
        let node = PprNode {
            level: 0,
            entries: vec![entry(0.1, 1, 50, TimeInterval::OPEN_END)],
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        // Corrupt deletion (last 4 bytes of the entry) to 10 < insertion 50.
        let off = 4 + 2 + PprEntry::ENCODED - 4;
        page.bytes_mut()[off..off + 4].copy_from_slice(&10u32.to_le_bytes());
        assert!(matches!(
            PprNode::decode(&page),
            Err(CodecError::InvalidValue(_))
        ));
    }
}
