//! Bulk-loader oracles: a bulk-loaded tree must answer exactly like an
//! incrementally built one (both backends), pass the full-history
//! sanitizer, and build deterministically whether or not the external
//! sort spilled to disk.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::PathBuf;
use sti_geom::{Rect2, TimeInterval};
use sti_pprtree::{check, BulkLoader, BulkPiece, PprParams, PprTree};
use sti_storage::{FileBackend, PageStore};

fn params() -> PprParams {
    PprParams {
        max_entries: 12,
        buffer_pages: 8,
        ..PprParams::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sti-bulk-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Random closed pieces in the unit square; a sprinkle of still-open
/// lifetimes when `with_open`.
fn random_pieces(seed: u64, n: usize, with_open: bool) -> Vec<BulkPiece> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.random::<f64>() * 0.9;
            let y = rng.random::<f64>() * 0.9;
            let ins = rng.random_range(0..150u32);
            let deletion = if with_open && rng.random_range(0..10u32) == 0 {
                TimeInterval::OPEN_END
            } else {
                ins + rng.random_range(1..=40u32)
            };
            BulkPiece {
                rect: Rect2::from_bounds(x, y, x + 0.05, y + 0.05),
                ptr: i as u64,
                insertion: ins,
                deletion,
            }
        })
        .collect()
}

fn bulk_build(pieces: &[BulkPiece], store: PageStore, tag: &str) -> PprTree {
    let dir = scratch_dir(tag);
    let mut loader = BulkLoader::new(params(), 200, &dir);
    for p in pieces {
        loader.push(*p).unwrap();
    }
    let (tree, stats) = loader.finish(store).unwrap();
    assert_eq!(stats.pieces, pieces.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
    tree
}

/// Replay the same pieces through the incremental update path, in time
/// order (the PPR-Tree only accepts non-decreasing update times).
fn incremental_build(pieces: &[BulkPiece]) -> PprTree {
    let mut events: Vec<(u32, u8, usize)> = Vec::new();
    for (i, p) in pieces.iter().enumerate() {
        events.push((p.insertion, 0, i));
        if p.deletion != TimeInterval::OPEN_END {
            events.push((p.deletion, 1, i));
        }
    }
    events.sort_unstable();
    let mut tree = PprTree::new(params());
    for (t, kind, i) in events {
        let p = &pieces[i];
        if kind == 0 {
            tree.insert(p.ptr, p.rect, t).unwrap();
        } else {
            tree.delete(p.ptr, p.rect, t).unwrap();
        }
    }
    tree
}

fn snapshot(tree: &PprTree, area: &Rect2, t: u32) -> Vec<u64> {
    let mut v = Vec::new();
    tree.query_snapshot(area, t, &mut v).unwrap();
    v.sort_unstable();
    v
}

fn interval(tree: &PprTree, area: &Rect2, range: &TimeInterval) -> Vec<u64> {
    let mut v = Vec::new();
    tree.query_interval(area, range, &mut v).unwrap();
    v.sort_unstable();
    v
}

fn assert_equivalent(bulk: &PprTree, incr: &PprTree) {
    let areas = [
        Rect2::from_bounds(0.0, 0.0, 1.0, 1.0),
        Rect2::from_bounds(0.2, 0.1, 0.8, 0.9),
        Rect2::from_bounds(0.0, 0.0, 0.4, 0.4),
        Rect2::from_bounds(0.55, 0.55, 0.7, 0.7),
    ];
    for area in &areas {
        for t in (0..200).step_by(13) {
            assert_eq!(
                snapshot(bulk, area, t),
                snapshot(incr, area, t),
                "snapshot diverged at t={t} area={area:?}"
            );
        }
        for start in (0..180).step_by(19) {
            let range = TimeInterval::new(start, start + 1 + (start % 31));
            assert_eq!(
                interval(bulk, area, &range),
                interval(incr, area, &range),
                "interval diverged at {range} area={area:?}"
            );
        }
    }
}

fn assert_valid(tree: &PprTree) {
    if let Err(violations) = check::validate(tree) {
        let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        panic!("bulk tree broke invariants:\n{}", lines.join("\n"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bulk_matches_incremental_mem_backend(seed in any::<u64>(), n in 50usize..300) {
        let pieces = random_pieces(seed, n, true);
        let bulk = bulk_build(&pieces, PageStore::new(params().buffer_pages), "mem");
        assert_valid(&bulk);
        let incr = incremental_build(&pieces);
        assert_equivalent(&bulk, &incr);
        prop_assert_eq!(bulk.total_records(), pieces.len() as u64);
        prop_assert_eq!(bulk.alive_records(), incr.alive_records());
    }

    #[test]
    fn bulk_matches_incremental_file_backend(seed in any::<u64>(), n in 50usize..200) {
        let pieces = random_pieces(seed, n, false);
        let dir = scratch_dir("fb");
        let path = dir.join(format!("tree-{seed}-{n}.pages"));
        let backend = FileBackend::create(&path).unwrap();
        let store = PageStore::with_backend(Box::new(backend), params().buffer_pages);
        let bulk = bulk_build(&pieces, store, "fb");
        assert_valid(&bulk);
        let incr = incremental_build(&pieces);
        assert_equivalent(&bulk, &incr);
        drop(bulk);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The spilled (external-sort) path and the in-memory path must produce
/// byte-identical trees: same pieces, same pages, same saved file.
#[test]
fn spilled_and_in_memory_builds_are_byte_identical() {
    let pieces = random_pieces(77, 2200, true);
    let dir = scratch_dir("det");

    let in_mem = bulk_build(&pieces, PageStore::new(8), "det-mem");
    let mut loader = BulkLoader::new(params(), 200, &dir).chunk_capacity(1024);
    for p in &pieces {
        loader.push(*p).unwrap();
    }
    let (spilled, stats) = loader.finish(PageStore::new(8)).unwrap();
    assert!(stats.spilled_runs >= 2, "test must exercise the merge path");
    assert_valid(&spilled);

    let a = dir.join("a.idx");
    let b = dir.join("b.idx");
    let mut in_mem = in_mem;
    let mut spilled = spilled;
    in_mem.save_to_file(&a).unwrap();
    spilled.save_to_file(&b).unwrap();
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "external sort changed the packed tree"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_single_piece_edge_cases() {
    let dir = scratch_dir("edge");
    let (tree, stats) = BulkLoader::new(params(), 10, &dir)
        .finish(PageStore::new(4))
        .unwrap();
    assert_eq!(stats.pages_written, 0);
    assert_eq!(tree.total_records(), 0);
    assert_valid(&tree);

    let mut loader = BulkLoader::new(params(), 10, &dir);
    loader
        .push(BulkPiece {
            rect: Rect2::from_bounds(0.1, 0.1, 0.2, 0.2),
            ptr: 42,
            insertion: 3,
            deletion: 8,
        })
        .unwrap();
    let (tree, stats) = loader.finish(PageStore::new(4)).unwrap();
    assert_eq!(stats.pages_written, 1);
    assert_valid(&tree);
    assert_eq!(
        snapshot(&tree, &Rect2::from_bounds(0.0, 0.0, 1.0, 1.0), 5),
        vec![42]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_empty_lifetimes_and_non_finite_rects() {
    let dir = scratch_dir("rej");
    let mut loader = BulkLoader::new(params(), 10, &dir);
    let bad_time = BulkPiece {
        rect: Rect2::from_bounds(0.0, 0.0, 0.1, 0.1),
        ptr: 1,
        insertion: 5,
        deletion: 5,
    };
    assert!(loader.push(bad_time).is_err());
    let bad_rect = BulkPiece {
        rect: Rect2 {
            lo: sti_geom::Point2 {
                x: f64::NAN,
                y: 0.0,
            },
            hi: sti_geom::Point2 { x: 0.1, y: 0.1 },
        },
        ptr: 2,
        insertion: 0,
        deletion: 5,
    };
    assert!(loader.push(bad_rect).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Big-tier smoke: a million-piece build on `FileBackend` completes
/// with bounded memory and passes the sanitizer. Gated so default
/// `cargo test` stays fast — run with `STI_SCALE=big cargo test -p
/// sti-pprtree --release -- --ignored big_tier`.
#[test]
#[ignore = "big tier; set STI_SCALE=big and run with --ignored"]
fn big_tier_million_piece_bulk_build() {
    if std::env::var("STI_SCALE").as_deref() != Ok("big") {
        eprintln!("skipping: STI_SCALE != big");
        return;
    }
    let dir = scratch_dir("big");
    let path = dir.join("big.pages");
    let store = PageStore::with_backend(
        Box::new(FileBackend::create(&path).unwrap()),
        PprParams::default().buffer_pages,
    );
    let mut rng = StdRng::seed_from_u64(0xb16);
    let mut loader = BulkLoader::new(PprParams::default(), 1000, &dir);
    // `STI_BIG_N` shrinks the run for quick local iteration; CI and the
    // acceptance criterion use the one-million default.
    let n: u64 = std::env::var("STI_BIG_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    for i in 0..n {
        let x = rng.random::<f64>() * 0.99;
        let y = rng.random::<f64>() * 0.99;
        let ins = rng.random_range(0..990u32);
        loader
            .push(BulkPiece {
                rect: Rect2::from_bounds(x, y, x + 0.004, y + 0.004),
                ptr: i,
                insertion: ins,
                deletion: ins + rng.random_range(1..=10u32),
            })
            .unwrap();
    }
    let (tree, stats) = loader.finish(store).unwrap();
    assert_eq!(stats.pieces, n);
    assert!(stats.spilled_runs > 0, "1M pieces must spill");
    assert!(stats.fill_factor > 0.3, "fill factor {}", stats.fill_factor);
    assert_valid(&tree);
    drop(tree);
    let _ = std::fs::remove_dir_all(&dir);
}
