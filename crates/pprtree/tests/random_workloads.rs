//! Property-based workload testing: arbitrary seeded update streams,
//! snapshot and interval queries cross-checked against a naive shadow.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_geom::{Rect2, TimeInterval};
use sti_pprtree::tree::DeleteError;
use sti_pprtree::{check, PprParams, PprTree};

struct Shadow {
    records: Vec<(u64, Rect2, u32, u32)>,
}

impl Shadow {
    fn snapshot(&self, area: &Rect2, t: u32) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|(_, r, s, e)| *s <= t && t < *e && r.intersects(area))
            .map(|&(id, ..)| id)
            .collect();
        v.sort_unstable();
        v
    }

    fn interval(&self, area: &Rect2, range: &TimeInterval) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|(_, r, s, e)| TimeInterval::new(*s, *e).overlaps(range) && r.intersects(area))
            .map(|&(id, ..)| id)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

fn run_workload(seed: u64, max_entries: usize, churn: u32) -> (PprTree, Shadow) {
    let params = PprParams {
        max_entries,
        buffer_pages: 4,
        ..PprParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = PprTree::new(params);
    let mut shadow = Shadow {
        records: Vec::new(),
    };
    let mut alive: Vec<(u64, Rect2)> = Vec::new();
    let mut next = 0u64;
    for t in 0..200u32 {
        for _ in 0..rng.random_range(0..=churn) {
            let x = rng.random::<f64>() * 0.9;
            let y = rng.random::<f64>() * 0.9;
            let r = Rect2::from_bounds(x, y, x + 0.05, y + 0.05);
            tree.insert(next, r, t).unwrap();
            shadow.records.push((next, r, t, u32::MAX));
            alive.push((next, r));
            next += 1;
        }
        for _ in 0..rng.random_range(0..=churn) {
            if alive.is_empty() {
                break;
            }
            let k = rng.random_range(0..alive.len());
            let (id, r) = alive.swap_remove(k);
            tree.delete(id, r, t).unwrap();
            shadow
                .records
                .iter_mut()
                .find(|(i, ..)| *i == id)
                .expect("recorded")
                .3 = t;
        }
    }
    (tree, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshots_match_shadow(seed in any::<u64>(), cap in prop::sample::select(vec![9usize, 10, 12, 14, 15, 17, 19, 20, 22, 24])) {
        let (tree, shadow) = run_workload(seed, cap, 3);
        tree.validate();
        for t in (0..200).step_by(17) {
            let area = Rect2::from_bounds(0.2, 0.1, 0.8, 0.9);
            let mut got = Vec::new();
            tree.query_snapshot(&area, t, &mut got).unwrap();
            got.sort_unstable();
            prop_assert_eq!(got, shadow.snapshot(&area, t), "t={}", t);
        }
    }

    #[test]
    fn intervals_match_shadow(seed in any::<u64>(), cap in prop::sample::select(vec![9usize, 10, 12, 14, 15, 17, 19, 20, 22, 24])) {
        let (tree, shadow) = run_workload(seed, cap, 2);
        for start in (0..180).step_by(23) {
            let range = TimeInterval::new(start, start + 1 + (start % 29));
            let area = Rect2::from_bounds(0.0, 0.0, 0.6, 0.6);
            let mut got = Vec::new();
            tree.query_interval(&area, &range, &mut got).unwrap();
            got.sort_unstable();
            prop_assert_eq!(got, shadow.interval(&area, &range), "range={}", range);
        }
    }

    /// The offline sanitizer accepts every tree a random insert/delete
    /// interleaving can produce — the full history (all root spans, dead
    /// edges included), not just the current view.
    #[test]
    fn full_history_check_passes_after_random_interleavings(
        seed in any::<u64>(),
        cap in prop::sample::select(vec![9usize, 12, 15, 20, 24]),
    ) {
        let (tree, _) = run_workload(seed, cap, 3);
        if let Err(violations) = check::validate(&tree) {
            let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            prop_assert!(false, "invariants broken:\n{}", lines.join("\n"));
        }
    }

    #[test]
    fn storage_is_linear_in_changes(seed in any::<u64>()) {
        // The multi-version property: pages grow linearly with the number
        // of updates (here: generously bounded), never quadratically.
        let (tree, shadow) = run_workload(seed, 10, 3);
        let updates = shadow.records.len() * 2; // each record: insert + delete
        let entries_capacity = tree.num_pages() * 10;
        prop_assert!(
            entries_capacity <= updates.max(1) * 8,
            "storage blow-up: {} pages for {} updates",
            tree.num_pages(),
            updates
        );
    }
}

/// Two alive records with the same id but different rectangles must be
/// individually deletable — the rect disambiguates.
#[test]
fn same_id_different_rects_delete_the_right_one() {
    let params = PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..PprParams::default()
    };
    let mut tree = PprTree::new(params);
    let a = Rect2::from_bounds(0.1, 0.1, 0.15, 0.15);
    let b = Rect2::from_bounds(0.8, 0.8, 0.85, 0.85);
    tree.insert(7, a, 0).unwrap();
    tree.insert(7, b, 0).unwrap();
    // Kill the FAR one; the near one must survive.
    tree.delete(7, b, 10).unwrap();
    let mut out = Vec::new();
    tree.query_snapshot(&a, 10, &mut out).unwrap();
    assert_eq!(out, vec![7], "record (7, a) must still be alive");
    out.clear();
    tree.query_snapshot(&b, 10, &mut out).unwrap();
    assert!(out.is_empty(), "record (7, b) must be gone");
    tree.delete(7, a, 20).unwrap();
    out.clear();
    tree.query_snapshot(&Rect2::UNIT, 20, &mut out).unwrap();
    assert!(out.is_empty());
}

/// A failed delete is a typed error and leaves the tree completely
/// unchanged: no clock advance, no page allocation, no root-log change.
#[test]
fn delete_not_found_is_typed_and_leaves_tree_unchanged() {
    let params = PprParams {
        max_entries: 10,
        buffer_pages: 4,
        ..PprParams::default()
    };
    let mut tree = PprTree::new(params);

    // Empty tree: nothing to delete.
    assert_eq!(
        tree.delete(1, Rect2::UNIT, 0),
        Err(DeleteError::NotFound { id: 1, t: 0 })
    );

    let r = Rect2::from_bounds(0.1, 0.1, 0.2, 0.2);
    tree.insert(1, r, 3).unwrap();
    let roots_before = tree.roots().to_vec();
    let pages_before = tree.num_pages();
    let now_before = tree.now();

    // Unknown id, and known id with a non-matching rectangle.
    let other = Rect2::from_bounds(0.5, 0.5, 0.6, 0.6);
    assert_eq!(
        tree.delete(99, r, 7),
        Err(DeleteError::NotFound { id: 99, t: 7 })
    );
    assert_eq!(
        tree.delete(1, other, 7),
        Err(DeleteError::NotFound { id: 1, t: 7 })
    );

    assert_eq!(tree.roots(), &roots_before[..]);
    assert_eq!(tree.num_pages(), pages_before);
    assert_eq!(
        tree.now(),
        now_before,
        "failed delete must not advance time"
    );
    assert_eq!(tree.alive_records(), 1);
    assert!(check::validate(&tree).is_ok());

    // The record is still deletable after the failures.
    tree.delete(1, r, 7).unwrap();
    assert_eq!(tree.alive_records(), 0);
    assert!(check::validate(&tree).is_ok());
}
