//! Fuzzing the PPR-Tree node decoder: arbitrary or bit-flipped page
//! bytes must produce `Err` or a structurally sane node — never a panic.

use proptest::prelude::*;
use sti_pprtree::PprNode;
use sti_storage::{Page, PAGE_SIZE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..PAGE_SIZE)) {
        let mut page = Page::zeroed();
        page.fill_from(&bytes);
        let _ = PprNode::decode(&page);
    }

    #[test]
    fn bitflip_on_valid_page_never_panics(
        seed_entries in 1usize..50,
        flip_byte in 0usize..PAGE_SIZE,
        flip_bit in 0u8..8,
    ) {
        use sti_geom::{Rect2, TimeInterval};
        use sti_pprtree::PprEntry;
        let node = PprNode {
            level: 0,
            entries: (0..seed_entries)
                .map(|i| {
                    let v = i as f64 * 0.01;
                    PprEntry {
                        rect: Rect2::from_bounds(v, v, v + 0.05, v + 0.05),
                        ptr: i as u64,
                        insertion: i as u32,
                        deletion: if i % 2 == 0 { TimeInterval::OPEN_END } else { 500 },
                    }
                })
                .collect(),
        };
        let mut page = Page::zeroed();
        node.encode(&mut page);
        page.bytes_mut()[flip_byte] ^= 1 << flip_bit;
        if let Ok(decoded) = PprNode::decode(&page) {
            prop_assert!(decoded.entries.len() <= 85);
            for e in &decoded.entries {
                prop_assert!(e.rect.lo.x <= e.rect.hi.x);
                prop_assert!(e.rect.lo.y <= e.rect.hi.y);
                prop_assert!(e.insertion <= e.deletion);
            }
        }
    }
}
