//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace's benches use —
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — as a simple walltime harness with no
//! dependencies. Statistical machinery (outlier detection, HTML
//! reports) is intentionally absent; each benchmark reports the median
//! of its sample means.
//!
//! `cargo bench -- --test` (the CI smoke mode) runs every closure once
//! and reports nothing, exactly like the real crate.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from hoisting or
/// deleting the computation producing `x`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Things accepted where a benchmark name is expected (`&str` or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Test mode: run the closure once, skip measurement.
    test_only: bool,
    /// Mean seconds per iteration of the latest sample.
    last_sample: f64,
}

impl Bencher {
    /// Time `f`, called in a loop.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_only {
            black_box(f());
            self.last_sample = 0.0;
            return;
        }
        // Warm up once, then scale the iteration count to ~50ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.05 / once).ceil() as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_sample = start.elapsed().as_secs_f64() / iters as f64;
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_only: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for a single-shot smoke run; any
        // other argument (e.g. cargo's own `--bench`) is ignored.
        let test_only = std::env::args().any(|a| a == "--test");
        Self {
            test_only,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Configure the default sample count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.default_sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.default_sample_size;
        run_one(self.test_only, "", &id.into_id(), sample_size, f);
    }
}

/// A named group; see [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = Some(n);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let n = self.samples();
        run_one(self.criterion.test_only, &self.name, &id.into_id(), n, f);
    }

    /// Benchmark a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let n = self.samples();
        run_one(
            self.criterion.test_only,
            &self.name,
            &id.into_id(),
            n,
            |b| f(b, input),
        );
    }

    /// Close the group (a no-op; results print as they complete).
    pub fn finish(self) {}

    fn samples(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }
}

fn run_one(
    test_only: bool,
    group: &str,
    id: &str,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher {
        test_only,
        last_sample: 0.0,
    };
    if test_only {
        f(&mut b);
        println!("{full}: test mode, ran once");
        return;
    }
    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| {
            f(&mut b);
            b.last_sample
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    println!(
        "{full}: median {} ({} samples)",
        fmt_time(median),
        sample_size
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn harness_runs_closures() {
        let mut c = Criterion {
            test_only: true,
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0;
        group.sample_size(2).bench_function("count", |b| {
            b.iter(|| ());
            calls += 1;
        });
        group.bench_with_input("with_input", &41, |b, &x| {
            b.iter(|| x + 1);
            calls += 1;
        });
        group.finish();
        assert_eq!(calls, 2, "test mode still invokes each benchmark once");
    }
}
