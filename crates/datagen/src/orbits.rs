//! Orbiting bodies: the introduction's "planetary movements" motivation.
//!
//! Bodies revolve around randomly placed centers. Circular motion is the
//! worst case for single-MBR approximation — the bounding box of a whole
//! revolution is the full orbit square regardless of the body's size —
//! and a nasty case for greedy split distribution: half an orbit gains
//! little, quarters gain a lot (a natural fig.-4 monotonicity violation).

use crate::TIME_EXTENT;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_geom::{Point2, Rect2, Time};
use sti_trajectory::RasterizedObject;

/// Specification of an orbital dataset.
#[derive(Debug, Clone)]
pub struct OrbitDatasetSpec {
    /// Number of bodies.
    pub num_bodies: usize,
    /// Evolution length in instants.
    pub time_extent: Time,
    /// Lifetime bounds in instants (inclusive).
    pub lifetime: (u32, u32),
    /// Orbit radius bounds as fractions of the space (inclusive).
    pub radius: (f64, f64),
    /// Revolution period bounds in instants (inclusive).
    pub period: (u32, u32),
    /// Body side extent bounds (inclusive).
    pub extent: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl OrbitDatasetSpec {
    /// A reasonable default configuration for `n` bodies.
    pub fn standard(n: usize) -> Self {
        Self {
            num_bodies: n,
            time_extent: TIME_EXTENT,
            lifetime: (20, 100),
            radius: (0.02, 0.15),
            period: (20, 120),
            extent: (0.002, 0.01),
            seed: 0x5eed_0003,
        }
    }

    /// Generate the rasterized bodies. Segment boundaries are recorded at
    /// quarter-revolution marks (where the dominant motion axis flips),
    /// giving the piecewise baseline a fair representation.
    pub fn generate(&self) -> Vec<RasterizedObject> {
        assert!(self.lifetime.0 >= 1 && self.lifetime.0 <= self.lifetime.1);
        assert!(self.lifetime.1 < self.time_extent);
        assert!(self.period.0 >= 4);
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.num_bodies)
            .map(|id| {
                let life = rng.random_range(self.lifetime.0..=self.lifetime.1);
                let start: Time = rng.random_range(0..=(self.time_extent - life));
                let r = rng.random_range(self.radius.0..=self.radius.1);
                let period = rng.random_range(self.period.0..=self.period.1);
                let phase = rng.random_range(0.0..std::f64::consts::TAU);
                let clockwise = rng.random_bool(0.5);
                let w = rng.random_range(self.extent.0..=self.extent.1);
                let margin = r + w;
                let cx = rng.random_range(margin..=(1.0 - margin));
                let cy = rng.random_range(margin..=(1.0 - margin));

                let omega =
                    std::f64::consts::TAU / f64::from(period) * if clockwise { -1.0 } else { 1.0 };
                let rects: Vec<Rect2> = (0..life)
                    .map(|tau| {
                        let a = phase + omega * f64::from(tau);
                        Rect2::centered(Point2::new(cx + r * a.cos(), cy + r * a.sin()), w, w)
                    })
                    .collect();
                // Boundaries at quarter periods (interior only).
                let quarter = (period / 4).max(1);
                let boundaries: Vec<usize> = (1..life)
                    .filter(|t| t % quarter == 0)
                    .map(|t| t as usize)
                    .collect();
                RasterizedObject::with_boundaries(id as u64, start, rects, boundaries)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_stay_in_the_unit_square() {
        for o in OrbitDatasetSpec::standard(200).generate() {
            for i in 0..o.len() {
                assert!(
                    Rect2::UNIT.contains_rect(&o.rect(i)),
                    "body {} escapes",
                    o.id()
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = OrbitDatasetSpec::standard(50).generate();
        let b = OrbitDatasetSpec::standard(50).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn full_revolution_wastes_most_of_the_orbit_square() {
        // A body that completes about one revolution has an unsplit MBR
        // ≈ the whole orbit square; pieces short enough to cover less
        // than a quarter arc must reclaim well over half the volume.
        let spec = OrbitDatasetSpec {
            lifetime: (80, 100),
            period: (80, 100),
            ..OrbitDatasetSpec::standard(40)
        };
        let objs = spec.generate();
        let mut improved = 0;
        for o in &objs {
            let whole = o.unsplit_volume();
            let n = o.len();
            let cuts: Vec<usize> = (1..8).map(|i| i * n / 8).collect();
            if o.volume_for_cuts(&cuts) < whole * 0.6 {
                improved += 1;
            }
        }
        assert!(
            improved > objs.len() / 2,
            "only {improved} orbits benefit from splits"
        );
    }

    #[test]
    fn orbits_produce_nonmonotone_gain_curves() {
        use sti_trajectory::RasterizedObject;
        // One split of a full circle barely helps (two half-moons still
        // span the diameter); the paper's Claim 1 fails — exactly what
        // LAGreedy exists for. Verify at least some bodies show
        // gain(2) > gain(1).
        let spec = OrbitDatasetSpec {
            lifetime: (80, 100),
            period: (80, 100),
            ..OrbitDatasetSpec::standard(60)
        };
        let objs: Vec<RasterizedObject> = spec.generate();
        let mut violations = 0;
        for o in &objs {
            let v0 = o.unsplit_volume();
            let v1 = o.volume_for_cuts(&[o.len() / 2]);
            let v2 = o.volume_for_cuts(&[o.len() / 3, 2 * o.len() / 3]);
            let g1 = v0 - v1;
            let g2 = v1 - v2;
            if g2 > g1 * 1.05 {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "expected some monotonicity violations among orbits"
        );
    }
}
