//! Snapshot and range query sets (Table II).

use crate::TIME_EXTENT;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_geom::{Rect2, Time, TimeInterval};

/// One topological query: "find all objects that appear in `area` during
/// `range`". Snapshot queries have `range.len() == 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Spatial query window.
    pub area: Rect2,
    /// Temporal window (half-open instants).
    pub range: TimeInterval,
}

impl Query {
    /// True for single-instant (snapshot) queries.
    pub fn is_snapshot(&self) -> bool {
        self.range.len() == 1
    }
}

/// Specification of one of Table II's query sets.
#[derive(Debug, Clone)]
pub struct QuerySetSpec {
    /// Display name ("Tiny", "Small", …).
    pub name: &'static str,
    /// Number of queries (paper: 1000).
    pub cardinality: usize,
    /// Query-side extents as *percentages* of the space side (inclusive
    /// range). Table II's "Extents (%)".
    pub extent_pct: (f64, f64),
    /// Duration bounds in instants (inclusive). (1, 1) for snapshots.
    pub duration: (u32, u32),
    /// Evolution length queries are drawn from.
    pub time_extent: Time,
    /// RNG seed.
    pub seed: u64,
}

impl QuerySetSpec {
    fn new(name: &'static str, extent_pct: (f64, f64), duration: (u32, u32), seed: u64) -> Self {
        Self {
            name,
            cardinality: 1000,
            extent_pct,
            duration,
            time_extent: TIME_EXTENT,
            seed,
        }
    }

    /// Tiny snapshot queries: extents 0.01–0.1%, duration 1.
    pub fn tiny_snapshot() -> Self {
        Self::new("Tiny", (0.01, 0.1), (1, 1), q_seed(1))
    }

    /// Small snapshot queries: extents 0.1–1%, duration 1.
    pub fn small_snapshot() -> Self {
        Self::new("Small", (0.1, 1.0), (1, 1), q_seed(2))
    }

    /// Mixed snapshot queries: extents 0.1–5%, duration 1.
    pub fn mixed_snapshot() -> Self {
        Self::new("Mixed", (0.1, 5.0), (1, 1), q_seed(3))
    }

    /// Large snapshot queries: extents 1–5%, duration 1.
    pub fn large_snapshot() -> Self {
        Self::new("Large", (1.0, 5.0), (1, 1), q_seed(4))
    }

    /// Small range queries: extents 0.1–1%, duration 1–10.
    pub fn small_range() -> Self {
        Self::new("Small", (0.1, 1.0), (1, 10), q_seed(5))
    }

    /// Medium range queries: extents 0.1–1%, duration 10–50.
    pub fn medium_range() -> Self {
        Self::new("Medium", (0.1, 1.0), (10, 50), q_seed(6))
    }

    /// Generate the query set.
    pub fn generate(&self) -> Vec<Query> {
        assert!(self.extent_pct.0 > 0.0 && self.extent_pct.0 <= self.extent_pct.1);
        assert!(self.duration.0 >= 1 && self.duration.0 <= self.duration.1);
        assert!(self.duration.1 <= self.time_extent);
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.cardinality)
            .map(|_| {
                let w = rng.random_range(self.extent_pct.0..=self.extent_pct.1) / 100.0;
                let h = rng.random_range(self.extent_pct.0..=self.extent_pct.1) / 100.0;
                let x = rng.random_range(0.0..=(1.0 - w));
                let y = rng.random_range(0.0..=(1.0 - h));
                let dur = rng.random_range(self.duration.0..=self.duration.1);
                let start: Time = rng.random_range(0..=(self.time_extent - dur));
                Query {
                    area: Rect2::from_bounds(x, y, x + w, y + h),
                    range: TimeInterval::new(start, start + dur),
                }
            })
            .collect()
    }
}

/// Distinct stable seed per built-in query set.
fn q_seed(k: u64) -> u64 {
    0x5eed_0100 + k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sets_have_duration_one() {
        for spec in [
            QuerySetSpec::tiny_snapshot(),
            QuerySetSpec::small_snapshot(),
            QuerySetSpec::mixed_snapshot(),
            QuerySetSpec::large_snapshot(),
        ] {
            let qs = spec.generate();
            assert_eq!(qs.len(), 1000);
            assert!(
                qs.iter().all(Query::is_snapshot),
                "{} not snapshots",
                spec.name
            );
        }
    }

    #[test]
    fn extents_and_durations_in_range() {
        let spec = QuerySetSpec::medium_range();
        for q in spec.generate() {
            assert!(q.area.width() >= 0.001 - 1e-12 && q.area.width() <= 0.01 + 1e-12);
            assert!(q.area.height() >= 0.001 - 1e-12 && q.area.height() <= 0.01 + 1e-12);
            let d = q.range.len();
            assert!((10..=50).contains(&(d as u32)));
            assert!(q.range.end <= TIME_EXTENT);
            assert!(Rect2::UNIT.contains_rect(&q.area));
        }
    }

    #[test]
    fn deterministic_and_distinct_seeds() {
        let a = QuerySetSpec::small_snapshot().generate();
        let b = QuerySetSpec::small_snapshot().generate();
        assert_eq!(a, b);
        let c = QuerySetSpec::tiny_snapshot().generate();
        assert_ne!(a[0], c[0], "different sets use different seeds");
    }

    #[test]
    fn large_queries_are_larger_than_tiny() {
        let tiny: f64 = QuerySetSpec::tiny_snapshot()
            .generate()
            .iter()
            .map(|q| q.area.area())
            .sum();
        let large: f64 = QuerySetSpec::large_snapshot()
            .generate()
            .iter()
            .map(|q| q.area.area())
            .sum();
        assert!(large > tiny * 100.0);
    }
}
