//! The uniform "random moving rectangles" datasets.

use crate::TIME_EXTENT;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_geom::{Point2, Rect2, Time};
use sti_trajectory::RasterizedObject;

/// Specification of a random dataset, defaulted to the paper's §V
/// parameters: lifetimes uniform in 1..=100 instants within a
/// 1000-instant evolution, movement approximated by 1–10 polynomial
/// segments of degree 1 or 2 with random coefficients, movements
/// normalized into the unit square, rectangle extents uniform in
/// 0.1%–1% of the space per side.
#[derive(Debug, Clone)]
pub struct RandomDatasetSpec {
    /// Number of objects (paper: 10k / 30k / 50k / 80k).
    pub num_objects: usize,
    /// Evolution length in instants.
    pub time_extent: Time,
    /// Lifetime bounds (inclusive).
    pub lifetime: (u32, u32),
    /// Polynomial segment count bounds (inclusive).
    pub segments: (u32, u32),
    /// Rectangle side extents as fractions of the space (inclusive).
    pub extent: (f64, f64),
    /// Largest per-instant speed along each axis (fraction of the space
    /// per instant). Segment velocities are uniform in `±max_velocity`.
    pub max_velocity: f64,
    /// Largest per-instant² acceleration for degree-2 segments.
    pub max_acceleration: f64,
    /// RNG seed: same seed, same dataset.
    pub seed: u64,
}

impl RandomDatasetSpec {
    /// The paper's configuration for `n` objects.
    pub fn paper(n: usize) -> Self {
        Self {
            num_objects: n,
            time_extent: TIME_EXTENT,
            lifetime: (1, 100),
            segments: (1, 10),
            extent: (0.001, 0.01),
            max_velocity: 0.004,
            max_acceleration: 0.0002,
            seed: 0x5eed_0001,
        }
    }

    /// The big scale tier: the same motion model at production-like
    /// cardinality — short lifetimes (churn) and fewer segments per
    /// object, so a million objects stay a few million leaf pieces.
    /// Used by `--scale=big` in datagen, `stidx`, and `sti-bench`.
    pub fn big(n: usize) -> Self {
        Self {
            num_objects: n,
            lifetime: (2, 10),
            segments: (1, 3),
            seed: 0x5eed_0b16,
            ..Self::paper(n)
        }
    }

    /// Generate the dataset. Objects are produced rasterized (one
    /// rectangle per alive instant) with segment boundaries recorded for
    /// the piecewise baseline. Object ids are `0..num_objects`.
    pub fn generate(&self) -> Vec<RasterizedObject> {
        self.iter().collect()
    }

    /// Generate the dataset one object at a time — same objects as
    /// [`RandomDatasetSpec::generate`] (one shared RNG stream), without
    /// materializing the whole dataset. The big tier writes straight to
    /// disk through this.
    ///
    /// # Panics
    /// If the lifetime/segment bounds are empty or exceed the evolution.
    pub fn iter(&self) -> impl Iterator<Item = RasterizedObject> + '_ {
        assert!(self.lifetime.0 >= 1 && self.lifetime.0 <= self.lifetime.1);
        assert!(self.segments.0 >= 1 && self.segments.0 <= self.segments.1);
        assert!(
            self.lifetime.1 < self.time_extent,
            "lifetime exceeds evolution"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.num_objects).map(move |id| self.generate_object(id as u64, &mut rng))
    }

    fn generate_object(&self, id: u64, rng: &mut StdRng) -> RasterizedObject {
        let life = rng.random_range(self.lifetime.0..=self.lifetime.1);
        let start: Time = rng.random_range(0..=(self.time_extent - life));
        let w = rng.random_range(self.extent.0..=self.extent.1);
        let h = rng.random_range(self.extent.0..=self.extent.1);

        // Partition the lifetime into 1..=segments pieces (each ≥ 1
        // instant) and give each piece a random degree-1/2 polynomial
        // motion in local time.
        let nseg = rng
            .random_range(self.segments.0..=self.segments.1)
            .min(life);
        let mut cut_points: Vec<u32> = (0..nseg - 1).map(|_| rng.random_range(1..life)).collect();
        cut_points.sort_unstable();
        cut_points.dedup();

        // Per-tick velocity up to ~0.4% of the space, acceleration an
        // order of magnitude below: over a ~50-instant lifetime objects
        // sweep 10–20% of the square — enough empty space for splitting
        // to pay off in the PPR-Tree, while the extra records it creates
        // still hurt the 3D R*-Tree (the paper's fig. 15 trade-off).
        let mut centers = Vec::with_capacity(life as usize);
        let mut pos = Point2::new(rng.random::<f64>(), rng.random::<f64>());
        let mut boundaries = Vec::with_capacity(cut_points.len());
        let mut seg_start = 0u32;
        for seg in 0..=cut_points.len() {
            let seg_end = cut_points.get(seg).copied().unwrap_or(life);
            if seg > 0 {
                boundaries.push(seg_start as usize);
            }
            let degree2 = rng.random_bool(0.5);
            let vx = rng.random_range(-self.max_velocity..self.max_velocity);
            let vy = rng.random_range(-self.max_velocity..self.max_velocity);
            let (ax, ay) = if degree2 {
                (
                    rng.random_range(-self.max_acceleration..self.max_acceleration),
                    rng.random_range(-self.max_acceleration..self.max_acceleration),
                )
            } else {
                (0.0, 0.0)
            };
            for tau in 0..(seg_end - seg_start) {
                let tf = f64::from(tau);
                centers.push(Point2::new(
                    pos.x + vx * tf + ax * tf * tf,
                    pos.y + vy * tf + ay * tf * tf,
                ));
            }
            // Continuity: the next segment starts where this one ends.
            let tf = f64::from(seg_end - seg_start);
            pos = Point2::new(
                pos.x + vx * tf + ax * tf * tf,
                pos.y + vy * tf + ay * tf * tf,
            );
            seg_start = seg_end;
        }
        debug_assert_eq!(centers.len(), life as usize);

        normalize_centers(&mut centers, w, h);
        let rects = centers.iter().map(|c| Rect2::centered(*c, w, h)).collect();
        RasterizedObject::with_boundaries(id, start, rects, boundaries)
    }
}

/// Normalize a center trajectory so every rectangle lies inside the unit
/// square ("all movements are normalized in the unit square", §V): the
/// centers are affinely mapped into `[half-extent, 1 − half-extent]²`
/// only when they stray outside; in-bounds trajectories are untouched.
fn normalize_centers(centers: &mut [Point2], w: f64, h: f64) {
    let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for c in centers.iter() {
        lo_x = lo_x.min(c.x);
        hi_x = hi_x.max(c.x);
        lo_y = lo_y.min(c.y);
        hi_y = hi_y.max(c.y);
    }
    let map_axis = |lo: f64, hi: f64, margin: f64| -> (f64, f64) {
        // Returns (scale, offset) mapping [lo, hi] into [margin, 1 - margin].
        let target_lo = margin;
        let target_hi = 1.0 - margin;
        if lo >= target_lo && hi <= target_hi {
            return (1.0, 0.0);
        }
        let span = (hi - lo).max(1e-12);
        let scale = ((target_hi - target_lo) / span).min(1.0);
        let offset =
            target_lo - lo * scale + ((target_hi - target_lo) - (hi - lo) * scale).max(0.0) / 2.0;
        (scale, offset)
    };
    let (sx, ox) = map_axis(lo_x, hi_x, w / 2.0);
    let (sy, oy) = map_axis(lo_y, hi_y, h / 2.0);
    if sx == 1.0 && ox == 0.0 && sy == 1.0 && oy == 0.0 {
        return;
    }
    for c in centers.iter_mut() {
        c.x = (c.x * sx + ox).clamp(w / 2.0, 1.0 - w / 2.0);
        c.y = (c.y * sy + oy).clamp(h / 2.0, 1.0 - h / 2.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize) -> RandomDatasetSpec {
        RandomDatasetSpec {
            seed: 99,
            ..RandomDatasetSpec::paper(n)
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spec(50).generate();
        let b = spec(50).generate();
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        let c = RandomDatasetSpec {
            seed: 100,
            ..spec(50)
        }
        .generate();
        assert!(
            a.iter().zip(&c).any(|(x, y)| x != y),
            "different seed, different data"
        );
    }

    #[test]
    fn respects_paper_parameter_ranges() {
        let objs = spec(300).generate();
        for o in &objs {
            let life = o.len() as u32;
            assert!((1..=100).contains(&life), "lifetime {life}");
            let end = o.start() + life;
            assert!(end <= TIME_EXTENT, "object exceeds the evolution");
            // every rect inside the unit square, extents in range
            for i in 0..o.len() {
                let r = o.rect(i);
                assert!(
                    Rect2::UNIT.contains_rect(&r),
                    "object {} leaves the space",
                    o.id()
                );
                assert!(r.width() >= 0.001 - 1e-9 && r.width() <= 0.01 + 1e-9);
                assert!(r.height() >= 0.001 - 1e-9 && r.height() <= 0.01 + 1e-9);
            }
            // boundaries are interior and fewer than 10
            assert!(o.boundaries().len() < 10);
        }
    }

    #[test]
    fn lifetimes_average_near_fifty() {
        let objs = spec(2000).generate();
        let avg: f64 = objs.iter().map(|o| o.len() as f64).sum::<f64>() / objs.len() as f64;
        assert!(
            (45.0..=56.0).contains(&avg),
            "avg lifetime {avg} far from 50"
        );
    }

    #[test]
    fn objects_actually_move() {
        let objs = spec(200).generate();
        let moving = objs
            .iter()
            .filter(|o| o.len() > 5)
            .filter(|o| {
                let whole = o.unsplit_volume();
                let per: f64 = (0..o.len()).map(|i| o.rect(i).area()).sum();
                whole > per * 1.5 // unsplit box much larger than the sum of instants
            })
            .count();
        assert!(moving > 100, "only {moving} objects show real movement");
    }

    #[test]
    fn ids_are_sequential() {
        let objs = spec(20).generate();
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(o.id(), i as u64);
        }
    }
}
