//! The skewed "trains on a railway system" datasets.

use crate::map::RailwayMap;
use crate::TIME_EXTENT;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_geom::{Time, TimeInterval};
use sti_trajectory::{MotionSegment, RasterizedObject, Trajectory};

/// Specification of a railway dataset, defaulted to the paper's §V
/// parameters: trains make up to 10 stops, travel for at most 36 hours at
/// 60–75 mph, never return to their origin without stopping somewhere
/// else in between, and follow straight-line tracks as piecewise linear
/// trajectories. One time instant represents one hour.
#[derive(Debug, Clone)]
pub struct RailwayDatasetSpec {
    /// Number of trains (paper: 10k / 30k / 50k / 80k).
    pub num_trains: usize,
    /// Evolution length in instants (hours).
    pub time_extent: Time,
    /// Maximum number of stops (route legs).
    pub max_stops: usize,
    /// Maximum total travel time in hours.
    pub max_hours: u32,
    /// Speed bounds in miles per hour (inclusive).
    pub speed: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl RailwayDatasetSpec {
    /// The paper's configuration for `n` trains.
    pub fn paper(n: usize) -> Self {
        Self {
            num_trains: n,
            time_extent: TIME_EXTENT,
            max_stops: 10,
            max_hours: 36,
            speed: (60.0, 75.0),
            seed: 0x5eed_0002,
        }
    }

    /// Generate the trains as full trajectories (piecewise linear,
    /// zero-extent moving points). Ids are `0..num_trains`.
    pub fn generate(&self) -> Vec<Trajectory> {
        let map = RailwayMap::us_rail();
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.num_trains)
            .map(|id| self.generate_train(id as u64, &map, &mut rng))
            .collect()
    }

    /// Generate and rasterize (the form the splitting algorithms take).
    pub fn generate_rasterized(&self) -> Vec<RasterizedObject> {
        self.generate().iter().map(Trajectory::rasterize).collect()
    }

    fn generate_train(&self, id: u64, map: &RailwayMap, rng: &mut StdRng) -> Trajectory {
        let speed = rng.random_range(self.speed.0..=self.speed.1);
        let legs_wanted = rng.random_range(1..=self.max_stops);

        // Random walk on the railway graph. Forbid the immediate
        // back-and-forth A→B→A ("no train may go back to the city where
        // it originated without stopping somewhere else in-between").
        let origin = rng.random_range(0..map.cities().len());
        let mut route = vec![origin];
        let mut hours_total = 0u32;
        let mut leg_hours: Vec<u32> = Vec::new();
        while route.len() <= legs_wanted {
            // stilint::allow(no_panic, "route starts as vec![origin] and only grows")
            let here = *route.last().expect("nonempty");
            let prev = if route.len() >= 2 {
                Some(route[route.len() - 2])
            } else {
                None
            };
            let options: Vec<(usize, usize)> = map
                .neighbors(here)
                .iter()
                .copied()
                .filter(|&(n, _)| Some(n) != prev)
                .collect();
            let Some(&(next, track)) = pick(rng, &options) else {
                break;
            };
            let hours = (map.tracks()[track].miles / speed).ceil().max(1.0) as u32;
            if hours_total + hours > self.max_hours {
                break;
            }
            hours_total += hours;
            leg_hours.push(hours);
            route.push(next);
        }
        if leg_hours.is_empty() {
            // Dead-ended immediately (cannot happen on a connected map
            // with ≥2 neighbors, but stay total): park the train for one
            // hour at its origin.
            leg_hours.push(1);
            route.push(
                map.neighbors(origin)
                    .first()
                    .map(|&(n, _)| n)
                    .unwrap_or(origin),
            );
            hours_total = 1;
        }

        let start: Time = rng.random_range(0..=(self.time_extent - hours_total));
        let mut segments = Vec::with_capacity(leg_hours.len());
        let mut t = start;
        for (leg, &hours) in leg_hours.iter().enumerate() {
            let a = map.cities()[route[leg]].pos;
            let b = map.cities()[route[leg + 1]].pos;
            segments.push(MotionSegment::linear_between(
                TimeInterval::new(t, t + hours),
                a,
                b,
                0.0,
                0.0,
            ));
            t += hours;
        }
        Trajectory::new(id, segments)
    }
}

fn pick<'a, T>(rng: &mut StdRng, options: &'a [T]) -> Option<&'a T> {
    if options.is_empty() {
        None
    } else {
        Some(&options[rng.random_range(0..options.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_geom::Rect2;

    fn spec(n: usize) -> RailwayDatasetSpec {
        RailwayDatasetSpec {
            seed: 7,
            ..RailwayDatasetSpec::paper(n)
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spec(40).generate();
        let b = spec(40).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn respects_paper_constraints() {
        let trains = spec(400).generate();
        let map = RailwayMap::us_rail();
        for tr in &trains {
            let dur = tr.duration() as u32;
            assert!(dur <= 36, "train {} travels {dur} hours", tr.id);
            assert!(tr.lifetime().end <= TIME_EXTENT);
            assert!(tr.segments().len() <= 10, "too many legs");
            // Every segment endpoint is a city position.
            for s in tr.segments() {
                let a = s.rect_at(s.interval.start).expect("inside").center();
                let on_city = map
                    .cities()
                    .iter()
                    .any(|c| (c.pos.x - a.x).abs() < 1e-9 && (c.pos.y - a.y).abs() < 1e-9);
                assert!(on_city, "segment does not start at a city");
            }
        }
    }

    #[test]
    fn no_immediate_backtrack() {
        let trains = spec(300).generate();
        let map = RailwayMap::us_rail();
        let city_at = |p: sti_geom::Point2| {
            map.cities()
                .iter()
                .position(|c| (c.pos.x - p.x).abs() < 1e-9 && (c.pos.y - p.y).abs() < 1e-9)
                .expect("a city")
        };
        for tr in &trains {
            let mut cities = Vec::new();
            for s in tr.segments() {
                cities.push(city_at(
                    s.rect_at(s.interval.start).expect("inside").center(),
                ));
            }
            // cities[i] is the start of leg i; check no A→B→A.
            for w in cities.windows(3) {
                assert_ne!(w[0], w[2], "train {} backtracks immediately", tr.id);
            }
        }
    }

    #[test]
    fn average_lifetime_matches_table_one() {
        // Table I reports ≈18 instants average lifetime for railway data.
        let trains = spec(2000).generate();
        let avg: f64 =
            trains.iter().map(|t| t.duration() as f64).sum::<f64>() / trains.len() as f64;
        assert!(
            (10.0..=28.0).contains(&avg),
            "avg lifetime {avg} far from 18"
        );
    }

    #[test]
    fn rasterized_points_stay_in_unit_square() {
        for o in spec(100).generate_rasterized() {
            for i in 0..o.len() {
                assert!(Rect2::UNIT.contains_rect(&o.rect(i)));
            }
        }
    }

    #[test]
    fn skewed_not_uniform() {
        // Trains cluster on the two coasts: a mid-country box far from
        // any track should see almost no traffic.
        let objs = spec(1000).generate_rasterized();
        let empty_box = Rect2::from_bounds(0.45, 0.05, 0.55, 0.25); // south of the Denver–KC belt
        let hits = objs
            .iter()
            .filter(|o| (0..o.len()).any(|i| o.rect(i).intersects(&empty_box)))
            .count();
        assert!(
            hits < 50,
            "{hits} trains crossed a box that should be quiet"
        );
    }
}
