//! Per-dataset statistics: the rows of Table I.

use sti_trajectory::RasterizedObject;

/// The statistics the paper reports per dataset in Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of objects.
    pub total_objects: usize,
    /// Average number of alive objects per time instant
    /// (Σ lifetimes / evolution length).
    pub objects_per_instant: f64,
    /// Total motion segments across all objects (each object contributes
    /// `boundaries + 1`).
    pub total_segments: usize,
    /// Average object lifetime in instants.
    pub avg_lifetime: f64,
    /// Smallest and largest rectangle side observed, as fractions of the
    /// space (0 for point datasets).
    pub extent_range: (f64, f64),
}

impl DatasetStats {
    /// Compute the statistics over a rasterized dataset.
    pub fn compute(objects: &[RasterizedObject], time_extent: u32) -> Self {
        assert!(!objects.is_empty(), "empty dataset");
        let total_lifetime: u64 = objects.iter().map(|o| o.len() as u64).sum();
        let total_segments: usize = objects.iter().map(|o| o.boundaries().len() + 1).sum();
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for o in objects {
            for i in 0..o.len() {
                let r = o.rect(i);
                lo = lo.min(r.width().min(r.height()));
                hi = hi.max(r.width().max(r.height()));
            }
        }
        Self {
            total_objects: objects.len(),
            objects_per_instant: total_lifetime as f64 / f64::from(time_extent),
            total_segments,
            avg_lifetime: total_lifetime as f64 / objects.len() as f64,
            extent_range: (lo, hi),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Total Objects              {}", self.total_objects)?;
        writeln!(
            f,
            "Objects Per Instant (Avg.) {:.3}",
            self.objects_per_instant
        )?;
        writeln!(f, "Total Segments             {}", self.total_segments)?;
        writeln!(f, "Object Lifetime (Avg.)     {:.1}", self.avg_lifetime)?;
        write!(
            f,
            "Object Extent (%)          {:.2}%-{:.2}%",
            self.extent_range.0 * 100.0,
            self.extent_range.1 * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RailwayDatasetSpec, RandomDatasetSpec, TIME_EXTENT};

    #[test]
    fn random_dataset_matches_table_one_shape() {
        let objs = RandomDatasetSpec::paper(1000).generate();
        let s = DatasetStats::compute(&objs, TIME_EXTENT);
        assert_eq!(s.total_objects, 1000);
        // ≈ N · 50 / 1000 alive per instant.
        assert!(
            (35.0..=70.0).contains(&s.objects_per_instant),
            "{}",
            s.objects_per_instant
        );
        assert!((40.0..=60.0).contains(&s.avg_lifetime));
        // Extents within the paper's 0.1%–1% band.
        assert!(s.extent_range.0 >= 0.001 - 1e-9);
        assert!(s.extent_range.1 <= 0.01 + 1e-9);
        // Segments: between 1 and 10 per object.
        assert!(s.total_segments >= 1000 && s.total_segments <= 10_000);
    }

    #[test]
    fn railway_dataset_matches_table_one_shape() {
        let objs = RailwayDatasetSpec::paper(1000).generate_rasterized();
        let s = DatasetStats::compute(&objs, TIME_EXTENT);
        // Table I: avg lifetime ≈ 18, ≈ 2.8 segments per train.
        assert!(
            (10.0..=28.0).contains(&s.avg_lifetime),
            "{}",
            s.avg_lifetime
        );
        assert!(s.total_segments >= 1500, "{}", s.total_segments);
        assert_eq!(s.extent_range.0, 0.0, "trains are points");
    }

    #[test]
    fn display_has_all_rows() {
        let objs = RandomDatasetSpec::paper(10).generate();
        let text = DatasetStats::compute(&objs, TIME_EXTENT).to_string();
        for needle in [
            "Total Objects",
            "Objects Per Instant",
            "Total Segments",
            "Lifetime",
            "Extent",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
