//! The railway map: 22 cities and 51 tracks approximating California and
//! New York (paper §V), with a few in-between states and cross-country
//! connections.
//!
//! City positions come from real approximate coordinates projected to a
//! miles-based plane (distances "approximated to match reality"); the
//! same positions are independently rescaled into the unit square for
//! indexing, while leg *durations* are computed from the physical mile
//! distances.

use sti_geom::Point2;

/// A city on the railway map.
#[derive(Debug, Clone, Copy)]
pub struct City {
    /// Human-readable name.
    pub name: &'static str,
    /// Position in the unit square (index space).
    pub pos: Point2,
    /// Position in the miles plane (for physical distances).
    pub miles: (f64, f64),
}

/// A straight railway track between two cities.
#[derive(Debug, Clone, Copy)]
pub struct Track {
    /// City indices.
    pub a: usize,
    /// City indices.
    pub b: usize,
    /// Physical length in miles.
    pub miles: f64,
}

/// The complete railway map with adjacency lists.
#[derive(Debug, Clone)]
pub struct RailwayMap {
    cities: Vec<City>,
    tracks: Vec<Track>,
    adjacency: Vec<Vec<(usize, usize)>>, // city -> (neighbor city, track idx)
}

/// (name, longitude, latitude) of the 22 cities: 9 Californian, 8 New
/// Yorker, 5 in-between.
const CITY_COORDS: [(&str, f64, f64); 22] = [
    // California
    ("Los Angeles", -118.24, 34.05),
    ("San Diego", -117.16, 32.72),
    ("San Jose", -121.89, 37.34),
    ("San Francisco", -122.42, 37.77),
    ("Sacramento", -121.49, 38.58),
    ("Fresno", -119.79, 36.75),
    ("Bakersfield", -119.02, 35.37),
    ("Oakland", -122.27, 37.80),
    ("Long Beach", -118.19, 33.77),
    // New York
    ("New York City", -74.01, 40.71),
    ("Buffalo", -78.88, 42.89),
    ("Rochester", -77.61, 43.16),
    ("Syracuse", -76.15, 43.05),
    ("Albany", -73.76, 42.65),
    ("Utica", -75.23, 43.10),
    ("Binghamton", -75.91, 42.10),
    ("Yonkers", -73.90, 40.93),
    // In between
    ("Denver", -104.99, 39.74),
    ("Chicago", -87.63, 41.88),
    ("Kansas City", -94.58, 39.10),
    ("Salt Lake City", -111.89, 40.76),
    ("Cleveland", -81.69, 41.50),
];

/// The 51 tracks by city index: 16 intra-California, 14 intra-New-York,
/// 21 connecting across the country.
const TRACKS: [(usize, usize); 51] = [
    // California (16)
    (0, 1),
    (0, 8),
    (0, 6),
    (6, 5),
    (5, 2),
    (2, 3),
    (3, 7),
    (7, 4),
    (4, 3),
    (2, 7),
    (0, 5),
    (4, 5),
    (1, 8),
    (6, 2),
    (0, 3),
    (1, 6),
    // New York (14)
    (9, 16),
    (16, 13),
    (13, 14),
    (14, 12),
    (12, 11),
    (11, 10),
    (9, 13),
    (9, 15),
    (15, 12),
    (13, 15),
    (13, 12),
    (10, 12),
    (9, 12),
    (11, 15),
    // Cross country (21)
    (4, 20),
    (3, 20),
    (0, 20),
    (20, 17),
    (17, 19),
    (19, 18),
    (18, 21),
    (21, 10),
    (21, 9),
    (18, 10),
    (17, 18),
    (0, 17),
    (5, 20),
    (19, 21),
    (18, 9),
    (4, 17),
    (18, 12),
    (21, 15),
    (17, 21),
    (20, 19),
    (20, 18),
];

impl RailwayMap {
    /// Build the standard 22-city / 51-track map.
    pub fn us_rail() -> Self {
        // Flat projection: 1° of longitude ≈ 54.6 mi at these latitudes,
        // 1° of latitude ≈ 69 mi.
        let miles_of = |lon: f64, lat: f64| ((lon + 125.0) * 54.6, (lat - 30.0) * 69.0);

        let raw: Vec<(&'static str, (f64, f64))> = CITY_COORDS
            .iter()
            .map(|&(name, lon, lat)| (name, miles_of(lon, lat)))
            .collect();

        // Rescale each axis independently into [0.02, 0.98].
        let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, (x, y)) in &raw {
            lo_x = lo_x.min(x);
            hi_x = hi_x.max(x);
            lo_y = lo_y.min(y);
            hi_y = hi_y.max(y);
        }
        let unit = |v: f64, lo: f64, hi: f64| 0.02 + 0.96 * (v - lo) / (hi - lo);

        let cities: Vec<City> = raw
            .into_iter()
            .map(|(name, (x, y))| City {
                name,
                pos: Point2::new(unit(x, lo_x, hi_x), unit(y, lo_y, hi_y)),
                miles: (x, y),
            })
            .collect();

        let tracks: Vec<Track> = TRACKS
            .iter()
            .map(|&(a, b)| {
                assert_ne!(a, b, "degenerate track");
                let (ax, ay) = cities[a].miles;
                let (bx, by) = cities[b].miles;
                Track {
                    a,
                    b,
                    miles: ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt(),
                }
            })
            .collect();

        let mut adjacency = vec![Vec::new(); cities.len()];
        for (ti, t) in tracks.iter().enumerate() {
            adjacency[t.a].push((t.b, ti));
            adjacency[t.b].push((t.a, ti));
        }

        Self {
            cities,
            tracks,
            adjacency,
        }
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// All tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Cities reachable from `city` by one track: `(neighbor, track)`
    /// index pairs.
    pub fn neighbors(&self, city: usize) -> &[(usize, usize)] {
        &self.adjacency[city]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_cardinalities() {
        let m = RailwayMap::us_rail();
        assert_eq!(m.cities().len(), 22);
        assert_eq!(m.tracks().len(), 51);
    }

    #[test]
    fn no_duplicate_tracks() {
        let m = RailwayMap::us_rail();
        let mut seen = HashSet::new();
        for t in m.tracks() {
            let key = (t.a.min(t.b), t.a.max(t.b));
            assert!(seen.insert(key), "duplicate track {key:?}");
        }
    }

    #[test]
    fn positions_inside_unit_square() {
        let m = RailwayMap::us_rail();
        for c in m.cities() {
            assert!((0.0..=1.0).contains(&c.pos.x), "{} x out of range", c.name);
            assert!((0.0..=1.0).contains(&c.pos.y), "{} y out of range", c.name);
        }
    }

    #[test]
    fn graph_is_connected() {
        let m = RailwayMap::us_rail();
        let mut visited = vec![false; m.cities().len()];
        let mut stack = vec![0usize];
        visited[0] = true;
        while let Some(c) = stack.pop() {
            for &(n, _) in m.neighbors(c) {
                if !visited[n] {
                    visited[n] = true;
                    stack.push(n);
                }
            }
        }
        assert!(
            visited.iter().all(|&v| v),
            "railway graph must be connected"
        );
    }

    #[test]
    fn distances_match_reality_roughly() {
        let m = RailwayMap::us_rail();
        let find = |name: &str| {
            m.cities()
                .iter()
                .position(|c| c.name == name)
                .expect("city exists")
        };
        let dist = |a: &str, b: &str| {
            let (ax, ay) = m.cities()[find(a)].miles;
            let (bx, by) = m.cities()[find(b)].miles;
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        };
        // LA–SF ≈ 350 mi straight line; NYC–Buffalo ≈ 290 mi;
        // LA–NYC ≈ 2450 mi.
        let la_sf = dist("Los Angeles", "San Francisco");
        assert!((280.0..=420.0).contains(&la_sf), "LA-SF {la_sf}");
        let nyc_buf = dist("New York City", "Buffalo");
        assert!((230.0..=350.0).contains(&nyc_buf), "NYC-Buffalo {nyc_buf}");
        let la_nyc = dist("Los Angeles", "New York City");
        assert!((2200.0..=2700.0).contains(&la_nyc), "LA-NYC {la_nyc}");
    }

    #[test]
    fn every_city_has_a_track() {
        let m = RailwayMap::us_rail();
        for (i, c) in m.cities().iter().enumerate() {
            assert!(!m.neighbors(i).is_empty(), "{} is isolated", c.name);
        }
    }
}
