//! Evolving regions: the introduction's "satellite and earth change
//! data (evolution of forest boundaries)" motivation, and fig. 6's
//! object that "keeps constant extent along the x-axis and changes
//! extent along the y-axis".
//!
//! Regions drift slowly while their extents grow and shrink through
//! quadratic pulses — the only generator in the workspace that exercises
//! non-constant `w(t)` / `h(t)` polynomials end to end.

use crate::TIME_EXTENT;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sti_geom::{Time, TimeInterval};
use sti_trajectory::{MotionSegment, Polynomial, RasterizedObject, Trajectory};

/// Specification of an evolving-regions dataset.
#[derive(Debug, Clone)]
pub struct RegionDatasetSpec {
    /// Number of regions.
    pub num_regions: usize,
    /// Evolution length in instants.
    pub time_extent: Time,
    /// Lifetime bounds in instants (inclusive).
    pub lifetime: (u32, u32),
    /// Base side extent bounds (inclusive, fraction of the space).
    pub base_extent: (f64, f64),
    /// Largest relative growth of an extent pulse (1.0 = can double).
    pub max_growth: f64,
    /// Drift speed bound per instant.
    pub max_drift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RegionDatasetSpec {
    /// A reasonable default configuration for `n` regions.
    pub fn standard(n: usize) -> Self {
        Self {
            num_regions: n,
            time_extent: TIME_EXTENT,
            lifetime: (30, 100),
            base_extent: (0.01, 0.05),
            max_growth: 1.0,
            max_drift: 0.001,
            seed: 0x5eed_0004,
        }
    }

    /// Generate the regions as full trajectories (2–4 motion segments,
    /// each pulsing one or both extents quadratically).
    pub fn generate(&self) -> Vec<Trajectory> {
        assert!(self.lifetime.0 >= 4 && self.lifetime.0 <= self.lifetime.1);
        assert!(self.lifetime.1 < self.time_extent);
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.num_regions)
            .map(|id| self.generate_region(id as u64, &mut rng))
            .collect()
    }

    /// Generate and rasterize.
    pub fn generate_rasterized(&self) -> Vec<RasterizedObject> {
        self.generate().iter().map(Trajectory::rasterize).collect()
    }

    fn generate_region(&self, id: u64, rng: &mut StdRng) -> Trajectory {
        let life = rng.random_range(self.lifetime.0..=self.lifetime.1);
        let start: Time = rng.random_range(0..=(self.time_extent - life));
        let w0 = rng.random_range(self.base_extent.0..=self.base_extent.1);
        let h0 = rng.random_range(self.base_extent.0..=self.base_extent.1);
        // Keep the fully grown region inside the square.
        let grown = (w0.max(h0)) * (1.0 + self.max_growth);
        let cx = rng.random_range(grown..=(1.0 - grown));
        let cy = rng.random_range(grown..=(1.0 - grown));

        let nseg = rng.random_range(2..=4u32).min(life / 2);
        let mut cuts: Vec<u32> = (1..nseg).map(|i| i * life / nseg).collect();
        cuts.dedup();

        let mut segments = Vec::new();
        let mut seg_start = 0u32;
        let mut pos = (cx, cy);
        let mut extents = (w0, h0);
        for (i, &cut) in cuts.iter().chain(std::iter::once(&life)).enumerate() {
            let dur = f64::from(cut - seg_start);
            let vx = rng.random_range(-self.max_drift..=self.max_drift);
            let vy = rng.random_range(-self.max_drift..=self.max_drift);
            // A quadratic pulse per axis: extent(τ) = e0 + b·τ + c·τ²,
            // returning near its start by the end of the segment (growth
            // then shrink) — the fig. 6 shape. On even segments only the
            // y extent pulses; on odd, both.
            let pulse = |rng: &mut StdRng, e0: f64, dur: f64| {
                let peak = rng.random_range(0.0..=self.max_growth) * e0;
                // b·τ + c·τ² with max at τ = dur/2 reaching `peak`.
                let b = 4.0 * peak / dur;
                let c = -4.0 * peak / (dur * dur);
                Polynomial::quadratic(e0, b, c)
            };
            let w_poly = if i % 2 == 0 {
                Polynomial::constant(extents.0)
            } else {
                pulse(rng, extents.0, dur)
            };
            let h_poly = pulse(rng, extents.1, dur);
            segments.push(MotionSegment {
                interval: TimeInterval::new(start + seg_start, start + cut),
                x: Polynomial::linear(pos.0, vx),
                y: Polynomial::linear(pos.1, vy),
                w: w_poly.clone(),
                h: h_poly.clone(),
            });
            pos = (pos.0 + vx * dur, pos.1 + vy * dur);
            extents = (w_poly.eval(dur).max(1e-4), h_poly.eval(dur).max(1e-4));
            seg_start = cut;
        }
        Trajectory::new(id, segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_geom::Rect2;

    #[test]
    fn regions_stay_in_the_unit_square() {
        for o in RegionDatasetSpec::standard(150).generate_rasterized() {
            for i in 0..o.len() {
                assert!(
                    Rect2::UNIT.contains_rect(&o.rect(i)),
                    "region {} escapes",
                    o.id()
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = RegionDatasetSpec::standard(40).generate();
        let b = RegionDatasetSpec::standard(40).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn extents_actually_change_over_time() {
        let objs = RegionDatasetSpec::standard(100).generate_rasterized();
        let changing = objs
            .iter()
            .filter(|o| {
                let first = o.rect(0);
                (0..o.len())
                    .any(|i| (o.rect(i).height() - first.height()).abs() > first.height() * 0.2)
            })
            .count();
        assert!(changing > 50, "only {changing} regions pulse their extents");
    }

    #[test]
    fn fig6_shape_constant_x_changing_y_exists() {
        // Even-indexed segments keep w constant while h pulses — fig. 6.
        let trajs = RegionDatasetSpec::standard(50).generate();
        let mut found = false;
        for tr in &trajs {
            let seg = &tr.segments()[0];
            if seg.w.degree() == 0 && seg.h.degree() == 2 {
                found = true;
                // Verify the rasterized shape: width constant, height not.
                let life = seg.interval;
                let a = seg.rect_at(life.start).expect("inside");
                let mid = seg
                    .rect_at(life.start + life.len() as u32 / 2)
                    .expect("inside");
                assert!((a.width() - mid.width()).abs() < 1e-12);
            }
        }
        assert!(found, "no fig.-6-style segment generated");
    }

    #[test]
    fn splitting_helps_pulsing_regions() {
        // A region that doubles then shrinks wastes volume in one MBR.
        let spec = RegionDatasetSpec {
            max_growth: 1.0,
            ..RegionDatasetSpec::standard(80)
        };
        let objs = spec.generate_rasterized();
        let helped = objs
            .iter()
            .filter(|o| o.len() >= 8)
            .filter(|o| o.volume_for_cuts(&[o.len() / 2]) < o.unsplit_volume() * 0.95)
            .count();
        assert!(helped > 20, "only {helped} regions benefit from a split");
    }
}
