//! A compact binary file format for rasterized datasets, so generated
//! workloads can be saved once and reused across runs and tools.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "STDAT1\0\0" · object_count: u32 ·
//! per object: id u64 · start u32 · instants u32 · boundary_count u32 ·
//!             boundaries (u32 each) · rects (4 × f64 each)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use sti_geom::Rect2;
use sti_trajectory::RasterizedObject;

/// Magic prefix identifying dataset files.
pub const DATASET_MAGIC: &[u8; 8] = b"STDAT1\0\0";

/// Write a rasterized dataset to `path`.
pub fn save_dataset(path: &Path, objects: &[RasterizedObject]) -> io::Result<()> {
    let mut w = DatasetWriter::create(path)?;
    for o in objects {
        w.append(o)?;
    }
    w.finish()
}

/// Streaming dataset writer: [`DatasetWriter::append`] objects one at a
/// time, then [`DatasetWriter::finish`] patches the object count into
/// the header. The big tier generates millions of objects straight to
/// disk through this instead of materializing them.
#[derive(Debug)]
pub struct DatasetWriter {
    w: BufWriter<File>,
    count: u32,
}

impl DatasetWriter {
    /// Create (or truncate) a dataset file at `path`. The header's
    /// object count is a placeholder until [`DatasetWriter::finish`].
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(DATASET_MAGIC)?;
        w.write_all(&0u32.to_le_bytes())?;
        Ok(Self { w, count: 0 })
    }

    /// Append one object.
    pub fn append(&mut self, o: &RasterizedObject) -> io::Result<()> {
        if self.count == u32::MAX {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "dataset file format caps object count at u32::MAX",
            ));
        }
        let w = &mut self.w;
        w.write_all(&o.id().to_le_bytes())?;
        w.write_all(&o.start().to_le_bytes())?;
        w.write_all(&field_u32(o.len(), "instant count")?.to_le_bytes())?;
        let bounds = o.boundaries();
        w.write_all(&field_u32(bounds.len(), "boundary count")?.to_le_bytes())?;
        for &b in bounds {
            w.write_all(&field_u32(b, "boundary offset")?.to_le_bytes())?;
        }
        for i in 0..o.len() {
            let r = o.rect(i);
            for v in [r.lo.x, r.lo.y, r.hi.x, r.hi.y] {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        self.count += 1;
        Ok(())
    }

    /// Flush and patch the final object count into the header.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.flush()?;
        let f = self.w.get_mut();
        f.seek(SeekFrom::Start(DATASET_MAGIC.len() as u64))?;
        f.write_all(&self.count.to_le_bytes())?;
        f.flush()
    }
}

/// Encode a length/offset field, rejecting values the `u32` file format
/// cannot represent instead of truncating them.
fn field_u32(n: usize, what: &str) -> io::Result<u32> {
    u32::try_from(n).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what} too large for dataset file format: {n}"),
        )
    })
}

/// Read a dataset previously written by [`save_dataset`].
pub fn load_dataset(path: &Path) -> io::Result<Vec<RasterizedObject>> {
    DatasetReader::open(path)?.collect()
}

/// Streaming dataset reader: iterates objects without holding the whole
/// dataset in memory. [`DatasetReader::remaining`] reports how many
/// objects the header promises are still unread.
#[derive(Debug)]
pub struct DatasetReader {
    r: BufReader<File>,
    remaining: u32,
}

impl DatasetReader {
    /// Open a dataset file and validate its header.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != DATASET_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an STDAT dataset file",
            ));
        }
        let remaining = read_u32(&mut r)?;
        Ok(Self { r, remaining })
    }

    /// Objects not yet yielded (from the file header).
    pub fn remaining(&self) -> usize {
        self.remaining as usize
    }

    fn read_object(&mut self) -> io::Result<RasterizedObject> {
        let bad = |m: &'static str| io::Error::new(io::ErrorKind::InvalidData, m);
        let r = &mut self.r;
        let id = read_u64(r)?;
        let start = read_u32(r)?;
        let instants = read_u32(r)? as usize;
        if instants == 0 || instants > 1 << 24 {
            return Err(bad("implausible instant count"));
        }
        let bcount = read_u32(r)? as usize;
        if bcount >= instants {
            return Err(bad("more boundaries than instants"));
        }
        let mut boundaries = Vec::with_capacity(bcount);
        for _ in 0..bcount {
            boundaries.push(read_u32(r)? as usize);
        }
        let mut rects = Vec::with_capacity(instants);
        for _ in 0..instants {
            let lx = read_f64(r)?;
            let ly = read_f64(r)?;
            let hx = read_f64(r)?;
            let hy = read_f64(r)?;
            let finite = [lx, ly, hx, hy].iter().all(|v| v.is_finite());
            if !(finite && lx <= hx && ly <= hy) {
                return Err(bad("corrupt rectangle"));
            }
            rects.push(Rect2::from_bounds(lx, ly, hx, hy));
        }
        // `with_boundaries` validates ordering; map its panic to an error
        // by pre-checking.
        if boundaries.windows(2).any(|w| w[0] >= w[1])
            || boundaries.iter().any(|&b| b == 0 || b >= instants)
        {
            return Err(bad("corrupt boundaries"));
        }
        Ok(RasterizedObject::with_boundaries(
            id, start, rects, boundaries,
        ))
    }
}

impl Iterator for DatasetReader {
    type Item = io::Result<RasterizedObject>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.read_object())
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RailwayDatasetSpec, RandomDatasetSpec};

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sti-dataset-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_random_dataset() {
        let objs = RandomDatasetSpec::paper(60).generate();
        let path = temp("random");
        save_dataset(&path, &objs).expect("save");
        let back = load_dataset(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, objs);
    }

    #[test]
    fn round_trip_railway_with_boundaries() {
        let objs = RailwayDatasetSpec::paper(40).generate_rasterized();
        let path = temp("railway");
        save_dataset(&path, &objs).expect("save");
        let back = load_dataset(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, objs);
        // boundaries survive (the piecewise baseline depends on them)
        assert!(back.iter().any(|o| !o.boundaries().is_empty()));
    }

    #[test]
    fn streaming_writer_and_reader_match_batch_path() {
        let objs = RandomDatasetSpec::paper(25).generate();
        let path = temp("stream");
        let mut w = DatasetWriter::create(&path).expect("create");
        for o in &objs {
            w.append(o).expect("append");
        }
        w.finish().expect("finish");
        let mut r = DatasetReader::open(&path).expect("open");
        assert_eq!(r.remaining(), objs.len());
        let mut back = Vec::new();
        for item in &mut r {
            back.push(item.expect("object"));
        }
        assert_eq!(r.remaining(), 0);
        std::fs::remove_file(&path).ok();
        assert_eq!(back, objs);
    }

    #[test]
    fn big_tier_spec_streams_identically_to_generate() {
        let spec = RandomDatasetSpec::big(40);
        let streamed: Vec<_> = spec.iter().collect();
        assert_eq!(streamed, spec.generate());
        // Big tier means churn: short lifetimes.
        assert!(streamed.iter().all(|o| o.len() <= 10));
    }

    #[test]
    fn rejects_garbage() {
        let path = temp("garbage");
        std::fs::write(&path, b"not a dataset at all").expect("write");
        assert!(load_dataset(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_finite_coordinates() {
        // lo=(0,-inf), hi=(+inf,1) satisfies the ordering checks; every
        // coordinate must be finiteness-checked individually.
        let objs = RandomDatasetSpec::paper(3).generate();
        let path = temp("inf");
        save_dataset(&path, &objs).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        // First rect of the first object starts after the per-object
        // header: magic(8)+count(4)+id(8)+start(4)+instants(4)+bcount(4)
        // + boundaries (bcount × 4).
        let bcount = u32::from_le_bytes(bytes[24..28].try_into().unwrap()) as usize;
        let off = 28 + bcount * 4;
        bytes[off + 8..off + 16].copy_from_slice(&f64::NEG_INFINITY.to_le_bytes()); // ly
        bytes[off + 16..off + 24].copy_from_slice(&f64::INFINITY.to_le_bytes()); // hx
        std::fs::write(&path, &bytes).expect("write");
        assert!(
            load_dataset(&path).is_err(),
            "non-finite rect must be rejected"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let objs = RandomDatasetSpec::paper(10).generate();
        let path = temp("trunc");
        save_dataset(&path, &objs).expect("save");
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        assert!(load_dataset(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
