//! Workload generators reproducing the paper's experimental datasets
//! (§V, Tables I and II).
//!
//! * [`RandomDatasetSpec`] — the *uniform* datasets: moving rectangles
//!   with piecewise polynomial motion (degree 1–2), random lifetimes in
//!   1..=100 instants over a 1000-instant evolution, extents 0.1%–1% of
//!   the unit square per side.
//! * [`RailwayDatasetSpec`] — the *skewed* datasets: trains (moving
//!   points) on a railway map of 22 cities and 51 tracks approximating
//!   California and New York, speeds 60–75 mph, up to 10 stops and 36
//!   hours of travel.
//! * [`QuerySetSpec`] — the four snapshot and two range query sets of
//!   Table II (1000 queries each).
//! * [`DatasetStats`] — the per-dataset statistics reported in Table I.
//!
//! All generators are deterministic given their seed.

pub mod io;
pub mod map;
pub mod orbits;
pub mod queries;
pub mod railway;
pub mod random;
pub mod regions;
pub mod stats;

pub use io::{load_dataset, save_dataset, DatasetReader, DatasetWriter};
pub use map::{City, RailwayMap, Track};
pub use orbits::OrbitDatasetSpec;
pub use queries::{Query, QuerySetSpec};
pub use railway::RailwayDatasetSpec;
pub use random::RandomDatasetSpec;
pub use regions::RegionDatasetSpec;
pub use stats::DatasetStats;

/// The paper's evolution length: time runs over instants `0..1000`.
pub const TIME_EXTENT: u32 = 1000;
